#include "stc/support/table.h"

#include "stc/support/contracts.h"

namespace stc::support {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
    STC_EXPECTS(!header_.empty());
    align_.assign(header_.size(), Align::Right);
    align_[0] = Align::Left;
}

void TextTable::add_row(std::vector<std::string> row) {
    STC_EXPECTS(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

void TextTable::add_footer(std::vector<std::string> row) {
    STC_EXPECTS(row.size() == header_.size());
    footers_.push_back(std::move(row));
}

void TextTable::set_align(std::size_t column, Align align) {
    STC_EXPECTS(column < align_.size());
    align_[column] = align;
}

void TextTable::render_rule(std::ostream& os, const std::vector<std::size_t>& widths) {
    os << '+';
    for (std::size_t w : widths) {
        for (std::size_t i = 0; i < w + 2; ++i) os << '-';
        os << '+';
    }
    os << '\n';
}

void TextTable::render_row(std::ostream& os, const std::vector<std::string>& row,
                           const std::vector<std::size_t>& widths) const {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
        const std::size_t pad = widths[c] - row[c].size();
        os << ' ';
        if (align_[c] == Align::Right) os << std::string(pad, ' ');
        os << row[c];
        if (align_[c] == Align::Left) os << std::string(pad, ' ');
        os << " |";
    }
    os << '\n';
}

void TextTable::render(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (row[c].size() > widths[c]) widths[c] = row[c].size();
        }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);
    for (const auto& r : footers_) widen(r);

    render_rule(os, widths);
    render_row(os, header_, widths);
    render_rule(os, widths);
    for (const auto& r : rows_) render_row(os, r, widths);
    if (!footers_.empty()) {
        render_rule(os, widths);
        for (const auto& r : footers_) render_row(os, r, widths);
    }
    render_rule(os, widths);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) os_ << ',';
        os_ << escape(cells[i]);
    }
    os_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += "\"\"";
        else out += c;
    }
    out += '"';
    return out;
}

}  // namespace stc::support
