#include "stc/support/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace stc::support {

std::string trim(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
    return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
    return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
    if (from.empty()) return s;
    std::size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
        s.replace(pos, from.size(), to);
        pos += to.size();
    }
    return s;
}

std::string cpp_string_literal(std::string_view s) {
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\x%02x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

std::string percent(double ratio) {
    if (std::isnan(ratio)) return "n/a";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%", ratio * 100.0);
    return buf;
}

}  // namespace stc::support
