// Plain-text table rendering in the style of the paper's Tables 1-3.
//
// Benches use this to print per-method x per-operator mutation results
// with aligned columns, separator rules, and a footer block (#mutants,
// #killed, #equivalent, Score).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace stc::support {

/// Column alignment within a rendered table.
enum class Align { Left, Right };

/// A simple monospace table: header row, body rows, optional footer rows
/// separated from the body by a rule.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    /// Append a body row; must have the same arity as the header.
    void add_row(std::vector<std::string> row);

    /// Append a footer row (rendered below a separator rule).
    void add_footer(std::vector<std::string> row);

    /// Set alignment for one column (default: first column Left, rest Right).
    void set_align(std::size_t column, Align align);

    /// Render with box-drawing rules to the stream.
    void render(std::ostream& os) const;

    [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }
    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

private:
    void render_row(std::ostream& os, const std::vector<std::string>& row,
                    const std::vector<std::size_t>& widths) const;
    static void render_rule(std::ostream& os, const std::vector<std::size_t>& widths);

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::vector<std::string>> footers_;
    std::vector<Align> align_;
};

/// CSV rendering of the same data (for post-processing the bench output).
class CsvWriter {
public:
    explicit CsvWriter(std::ostream& os) : os_(os) {}

    void row(const std::vector<std::string>& cells);

private:
    static std::string escape(const std::string& cell);
    std::ostream& os_;
};

}  // namespace stc::support
