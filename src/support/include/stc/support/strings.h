// Small string utilities used across the framework (parsing, code
// generation, report formatting).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace stc::support {

/// Remove leading and trailing whitespace.
[[nodiscard]] std::string trim(std::string_view s);

/// Split on a single character; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// True if s begins with prefix.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// True if s ends with suffix.
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Replace every occurrence of `from` with `to`.
[[nodiscard]] std::string replace_all(std::string s, std::string_view from,
                                      std::string_view to);

/// Escape a string for inclusion in generated C++ source ("..." literal).
[[nodiscard]] std::string cpp_string_literal(std::string_view s);

/// Format a double the way the paper's tables do: one decimal for
/// percentages (e.g. "95.7%"); trailing zeros trimmed otherwise.
[[nodiscard]] std::string percent(double ratio);

}  // namespace stc::support
