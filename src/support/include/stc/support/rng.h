// Deterministic random number generation.
//
// All randomness in Concat (random parameter-value selection, §3.4.1 of
// the paper) flows through a seeded Pcg32 so that every test-generation
// run and every benchmark table is bit-reproducible from its seed.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>

namespace stc::support {

/// PCG-XSH-RR 64/32 — small, fast, statistically solid PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Pcg32 {
public:
    using result_type = std::uint32_t;

    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept {
        state_ = 0;
        inc_ = (stream << 1u) | 1u;
        next();
        state_ += seed;
        next();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept { return next(); }

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept {
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        if (span == 0) {  // full 64-bit span
            return static_cast<std::int64_t>(next64());
        }
        return lo + static_cast<std::int64_t>(next64() % span);
    }

    /// Uniform real in [lo, hi).
    double uniform_real(double lo, double hi) noexcept {
        // 53 random bits -> [0,1)
        const auto bits = next64() >> 11u;
        const double unit = static_cast<double>(bits) * 0x1.0p-53;
        return lo + unit * (hi - lo);
    }

    /// Uniform index in [0, n).  Contract: n > 0 — asserted in debug
    /// builds; in release, n == 0 returns 0 without advancing the
    /// stream instead of executing a modulo-by-zero (the SIGFPE class
    /// behind `rng.index(size - 1)` on a one-element container).  For
    /// n > 0 the draw is unchanged, so seeded sequences are stable.
    std::size_t index(std::size_t n) noexcept {
        assert(n > 0 && "Pcg32::index requires a non-empty range");
        if (n == 0) return 0;
        return static_cast<std::size_t>(next64() % n);
    }

    /// Bernoulli trial with probability p of true.
    bool chance(double p) noexcept { return uniform_real(0.0, 1.0) < p; }

private:
    result_type next() noexcept {
        const std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        const auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        const auto rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
    }

    std::uint64_t next64() noexcept {
        const std::uint64_t hi = next();
        return (hi << 32u) | next();
    }

    std::uint64_t state_;
    std::uint64_t inc_;
};

}  // namespace stc::support
