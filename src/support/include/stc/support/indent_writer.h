// Indentation-aware text emitter used by stc::codegen to produce the
// driver source files of the paper's Figures 6 and 7.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace stc::support {

/// Accumulates lines of text with automatic indentation management.
class IndentWriter {
public:
    explicit IndentWriter(int spaces_per_level = 4)
        : spaces_per_level_(spaces_per_level) {}

    /// Emit one line at the current indentation. An empty argument emits a
    /// blank line (no trailing spaces).
    void line(std::string_view text = {}) {
        if (!text.empty()) {
            out_ << std::string(static_cast<std::size_t>(level_) *
                                    static_cast<std::size_t>(spaces_per_level_),
                                ' ')
                 << text;
        }
        out_ << '\n';
    }

    /// Emit a line then indent subsequent lines (e.g. "...{").
    void open(std::string_view text) {
        line(text);
        ++level_;
    }

    /// Outdent then emit a closing line (e.g. "}").
    void close(std::string_view text) {
        if (level_ > 0) --level_;
        line(text);
    }

    void indent() { ++level_; }
    void outdent() {
        if (level_ > 0) --level_;
    }

    [[nodiscard]] std::string str() const { return out_.str(); }
    [[nodiscard]] int level() const noexcept { return level_; }

private:
    std::ostringstream out_;
    int spaces_per_level_;
    int level_ = 0;
};

}  // namespace stc::support
