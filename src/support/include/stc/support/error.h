// Error hierarchy shared by all Concat modules.
//
// Framework misuse and model inconsistencies are reported as exceptions
// derived from stc::Error.  Test verdicts are never exceptions: the test
// runner (stc::driver) converts every throw raised by a component under
// test into a verdict, mirroring the try/catch structure of the drivers
// the paper's Concat tool generates (Fig. 6).
#pragma once

#include <stdexcept>
#include <string>

namespace stc {

/// Base class for all errors raised by the Concat framework itself.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a t-spec or TFM fails semantic validation.
class SpecError : public Error {
public:
    explicit SpecError(const std::string& what) : Error("spec error: " + what) {}
};

/// Raised when the t-spec text cannot be parsed.
class ParseError : public Error {
public:
    ParseError(const std::string& what, int line, int column)
        : Error("parse error at " + std::to_string(line) + ":" +
                std::to_string(column) + ": " + what),
          line_(line),
          column_(column) {}

    [[nodiscard]] int line() const noexcept { return line_; }
    [[nodiscard]] int column() const noexcept { return column_; }

private:
    int line_;
    int column_;
};

/// Raised when reflection lookup fails (unknown class/method/arity).
class ReflectError : public Error {
public:
    explicit ReflectError(const std::string& what) : Error("reflect error: " + what) {}
};

/// Raised on framework-internal contract violations (bugs in Concat, not
/// in the component under test).
class ContractError : public Error {
public:
    explicit ContractError(const std::string& what) : Error("contract violation: " + what) {}
};

/// Marker base for conditions that in the paper's experiments crashed the
/// whole test process (e.g. a mutated pointer corrupting the list).  Our
/// substrates detect such corruption (pool-validated node dereferences)
/// and throw a CrashSignal subclass instead, so one in-process harness can
/// survive thousands of mutants while the mutation engine still counts
/// the event as "the program crashed" — the paper's kill condition (i).
class CrashSignal : public Error {
public:
    explicit CrashSignal(const std::string& what) : Error("crash: " + what) {}
};

}  // namespace stc
