// Lightweight Expects/Ensures contracts for framework-internal invariants
// (C++ Core Guidelines I.6/I.8 style).  These guard Concat's own code.
//
// They are distinct from the component-level assertion macros in
// stc/bit/assertions.h, which implement the paper's ClassInvariant /
// PreCondition / PostCondition oracle and throw AssertionViolation.
#pragma once

#include <string>

#include "stc/support/error.h"

namespace stc::support {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
    throw ContractError(std::string(kind) + " failed: " + expr + " at " + file +
                        ":" + std::to_string(line));
}

}  // namespace stc::support

#define STC_EXPECTS(expr)                                                     \
    do {                                                                      \
        if (!(expr))                                                          \
            ::stc::support::contract_failure("Expects", #expr, __FILE__,      \
                                             __LINE__);                       \
    } while (false)

#define STC_ENSURES(expr)                                                     \
    do {                                                                      \
        if (!(expr))                                                          \
            ::stc::support::contract_failure("Ensures", #expr, __FILE__,      \
                                             __LINE__);                       \
    } while (false)
