#include <atomic>
#include <sstream>

#include "stc/bit/assertions.h"
#include "stc/bit/built_in_test.h"

namespace stc::bit {

thread_local int TestMode::depth_ = 0;

std::string BuiltInTest::report() const {
    std::ostringstream os;
    Reporter(os);
    return os.str();
}

const char* to_string(AssertionKind kind) noexcept {
    switch (kind) {
        case AssertionKind::Invariant: return "Invariant";
        case AssertionKind::Precondition: return "Pre-condition";
        case AssertionKind::Postcondition: return "Post-condition";
    }
    return "?";
}

AssertionViolation::AssertionViolation(AssertionKind kind, std::string expression,
                                       std::string file, int line)
    : Error(std::string(to_string(kind)) + " is violated! (" + expression + " at " +
            file + ":" + std::to_string(line) + ")"),
      kind_(kind),
      expression_(std::move(expression)),
      file_(std::move(file)),
      line_(line) {}

QuiescenceViolation::QuiescenceViolation(std::string action, std::string detail)
    : Error("Illegal quiescence! (" + action + " was due: " + detail + ")"),
      action_(std::move(action)),
      detail_(std::move(detail)) {}

namespace {
// Process-wide totals across all threads; relaxed ordering is enough
// because these are statistics, not synchronization.
std::atomic<std::uint64_t> g_total_checked{0};
std::atomic<std::uint64_t> g_total_violated{0};
}  // namespace

AssertionStats& AssertionStats::instance() noexcept {
    static thread_local AssertionStats stats;
    return stats;
}

AssertionStats::Counters AssertionStats::process_totals() noexcept {
    return Counters{g_total_checked.load(std::memory_order_relaxed),
                    g_total_violated.load(std::memory_order_relaxed)};
}

void AssertionStats::record_check(AssertionKind kind) noexcept {
    ++by_kind_[static_cast<std::size_t>(kind)].checked;
    g_total_checked.fetch_add(1, std::memory_order_relaxed);
}

void AssertionStats::record_violation(AssertionKind kind) noexcept {
    ++by_kind_[static_cast<std::size_t>(kind)].violated;
    g_total_violated.fetch_add(1, std::memory_order_relaxed);
}

void AssertionStats::reset() noexcept {
    const int keep = suppress_depth_;
    *this = AssertionStats{};
    suppress_depth_ = keep;
}

AssertionStats::Counters AssertionStats::counters(AssertionKind kind) const noexcept {
    return by_kind_[static_cast<std::size_t>(kind)];
}

std::uint64_t AssertionStats::total_checked() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : by_kind_) total += c.checked;
    return total;
}

std::uint64_t AssertionStats::total_violated() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : by_kind_) total += c.violated;
    return total;
}

namespace detail {

bool assertions_active() noexcept {
    return TestMode::enabled() && !AssertionStats::instance().suppressed();
}

void check(AssertionKind kind, bool ok, const char* expression, const char* file,
           int line) {
    auto& stats = AssertionStats::instance();
    stats.record_check(kind);
    if (!ok) {
        stats.record_violation(kind);
        throw AssertionViolation(kind, expression, file, line);
    }
}

}  // namespace detail

}  // namespace stc::bit
