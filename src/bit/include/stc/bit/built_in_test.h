// Built-in test (BIT) capabilities — paper §3.3, Fig. 4.
//
// A self-testable class inherits BuiltInTest, giving the test driver a
// uniform interface independent of the target class interface:
//   - InvariantTest(): evaluates the class invariant (called by the
//     generated driver before and after every method call, Fig. 6);
//   - Reporter(): stores the object's internal state into the test log.
//
// BIT access control: the capabilities work only when the component is
// compiled in test mode.  We model the paper's compiler directive with
// STC_BIT_DISABLED (compile-out) plus a runtime gate (TestMode), so a
// single binary can demonstrate both production and test behaviour.
#pragma once

#include <ostream>
#include <string>

namespace stc::bit {

/// Runtime gate for BIT services — prevents misuse of BIT outside a test
/// session.  Scoped on/off via TestModeGuard.
///
/// Thread-safety contract: the gate depth is *thread_local*, so test
/// mode is entered and left per thread.  Every concurrent driver (e.g.
/// a campaign worker, src/campaign) opens its own TestModeGuard — the
/// runner does this per test case — and threads that never entered test
/// mode keep BIT disabled no matter what other threads are doing.
class TestMode {
public:
    /// True when a test session is active.
    [[nodiscard]] static bool enabled() noexcept { return depth_ > 0; }

private:
    friend class TestModeGuard;
    static thread_local int depth_;
};

/// RAII activation of test mode (nestable).
class TestModeGuard {
public:
    TestModeGuard() noexcept { ++TestMode::depth_; }
    ~TestModeGuard() { --TestMode::depth_; }

    TestModeGuard(const TestModeGuard&) = delete;
    TestModeGuard& operator=(const TestModeGuard&) = delete;
};

/// Abstract BIT interface (the paper's BuiltInTest superclass, Fig. 4).
/// The component under test inherits and redefines these capabilities.
class BuiltInTest {
public:
    virtual ~BuiltInTest() = default;

    /// Evaluate the class invariant; throws AssertionViolation (via the
    /// STC_CLASS_INVARIANT macro) when it does not hold.  A no-op unless
    /// test mode is active.
    virtual void InvariantTest() const = 0;

    /// Write a snapshot of the object's internal state to `os`.  Used by
    /// the generated driver after each test case and on failure, and as
    /// the observable output compared by the golden-output oracle.
    ///
    /// Thread-safety contract: implementations must be logically const —
    /// read only `this` and write only `os`.  Concurrent drivers call
    /// Reporter on *distinct* objects from different threads (each test
    /// case owns its CUT), so an implementation that mutates shared
    /// state (caches, globals, static buffers) breaks parallel
    /// campaigns; one that observes only its own object needs no
    /// locking.
    virtual void Reporter(std::ostream& os) const = 0;

    /// Convenience rendering of Reporter output as a string.
    [[nodiscard]] std::string report() const;
};

}  // namespace stc::bit
