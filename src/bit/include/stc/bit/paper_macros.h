// Opt-in aliases with the exact macro names of the paper's Fig. 5
// ("Concat's macro library").  The primary API uses the STC_-prefixed
// names to stay collision-free in larger programs; include this header
// in component code that wants to read like the paper:
//
//   ClassInvariant(count_ >= 0);
//   PreCondition(!IsEmpty());
//   PostCondition(balance_ >= 0);
//
// Semantics are identical to the STC_ macros: the predicate is evaluated
// only in test mode, and a false predicate throws AssertionViolation
// ("<kind> is violated!", as in Fig. 5).
#pragma once

#include "stc/bit/assertions.h"

#ifdef ClassInvariant
#error "ClassInvariant is already defined; cannot provide the Fig. 5 alias"
#endif

#define ClassInvariant(exp) STC_CLASS_INVARIANT(exp)
#define PreCondition(exp) STC_PRECONDITION(exp)
#define PostCondition(exp) STC_POSTCONDITION(exp)
