// Concat's assertion macro library — paper Fig. 5.
//
// The paper implements ClassInvariant / PreCondition / PostCondition as
// macros that throw when the user-supplied predicate is false; they form
// the *partial oracle* of the generated test drivers (§2.2, §3.3).  This
// version adds:
//   - a typed exception (AssertionViolation) carrying the kind, the
//     violated expression and the source location;
//   - global assertion statistics (checked / violated counts) consumed
//     by the mutation benches to attribute kills to the assertion
//     oracle, reproducing the paper's "59 of 652 kills were due to
//     assertion violation" accounting;
//   - gating on test mode and on the STC_BIT_DISABLED compile directive
//     (the paper's BIT access control).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "stc/bit/built_in_test.h"
#include "stc/support/error.h"

namespace stc::bit {

/// Which kind of contract was violated.
enum class AssertionKind { Invariant, Precondition, Postcondition };

[[nodiscard]] const char* to_string(AssertionKind kind) noexcept;

/// Thrown by the assertion macros when a predicate is false in test mode.
/// The generated driver catches it and records the failing test case and
/// the method being executed (Fig. 6).
class AssertionViolation : public Error {
public:
    AssertionViolation(AssertionKind kind, std::string expression, std::string file,
                       int line);

    [[nodiscard]] AssertionKind assertion_kind() const noexcept { return kind_; }
    [[nodiscard]] const std::string& expression() const noexcept { return expression_; }
    [[nodiscard]] const std::string& file() const noexcept { return file_; }
    [[nodiscard]] int line() const noexcept { return line_; }

private:
    AssertionKind kind_;
    std::string expression_;
    std::string file_;
    int line_;
};

/// Thrown when an output obligation is silently absorbed: a call that
/// the assembly's product TFM requires to produce an observable output
/// completed without emitting one.  This is the ioco notion of *illegal
/// quiescence* (a state may only be silent when the specification allows
/// quiescence there); assembly facades raise it from their built-in test
/// via STC_MUST_EMIT.  Deliberately not an AssertionViolation: the
/// oracle ladder ranks the two channels separately.
class QuiescenceViolation : public Error {
public:
    QuiescenceViolation(std::string action, std::string detail);

    /// The observable action that was due (e.g. "Ledger.Record").
    [[nodiscard]] const std::string& action() const noexcept { return action_; }
    /// Why the obligation existed (e.g. "deposit must book a ledger entry").
    [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

private:
    std::string action_;
    std::string detail_;
};

/// Per-thread assertion counters, reset per test session.
///
/// Thread-safety contract (load-bearing for the campaign scheduler,
/// src/campaign): `instance()` returns a *thread_local* object, so each
/// concurrent driver thread counts, suppresses, and resets its own
/// assertions with no synchronization and no cross-talk — a mutation
/// campaign worker's assertion violations never leak into another
/// worker's accounting.  For whole-process accounting across concurrent
/// drivers (the "59 of 652 kills were due to assertion violation"
/// number of a parallel campaign), `process_totals()` exposes monotonic
/// process-wide totals maintained with relaxed atomics; it is never
/// reset by per-thread `reset()`.
class AssertionStats {
public:
    struct Counters {
        std::uint64_t checked = 0;
        std::uint64_t violated = 0;
    };

    static AssertionStats& instance() noexcept;

    /// Snapshot of the process-wide totals, aggregated over every
    /// thread that ever checked an assertion.  Monotonic: unaffected by
    /// reset() (subtract two snapshots to meter an interval).
    [[nodiscard]] static Counters process_totals() noexcept;

    void record_check(AssertionKind kind) noexcept;
    void record_violation(AssertionKind kind) noexcept;
    void reset() noexcept;

    [[nodiscard]] Counters counters(AssertionKind kind) const noexcept;
    [[nodiscard]] std::uint64_t total_checked() const noexcept;
    [[nodiscard]] std::uint64_t total_violated() const noexcept;

    /// True when assertion checking is currently suppressed (used by the
    /// oracle ablation bench to run with the assertion oracle off).
    [[nodiscard]] bool suppressed() const noexcept { return suppress_depth_ > 0; }

private:
    friend class AssertionSuppressGuard;
    std::array<Counters, 3> by_kind_{};
    int suppress_depth_ = 0;
};

/// RAII suppression of assertion checking (ablation studies).
class AssertionSuppressGuard {
public:
    AssertionSuppressGuard() noexcept { ++AssertionStats::instance().suppress_depth_; }
    ~AssertionSuppressGuard() { --AssertionStats::instance().suppress_depth_; }

    AssertionSuppressGuard(const AssertionSuppressGuard&) = delete;
    AssertionSuppressGuard& operator=(const AssertionSuppressGuard&) = delete;
};

namespace detail {
/// Implements the macro bodies; returns true when the predicate should
/// actually be evaluated (test mode on, not suppressed, BIT compiled in).
[[nodiscard]] bool assertions_active() noexcept;
void check(AssertionKind kind, bool ok, const char* expression, const char* file,
           int line);
}  // namespace detail

}  // namespace stc::bit

// The paper's Fig. 5 macros.  `exp` is the user-provided predicate.
#ifndef STC_BIT_DISABLED
#define STC_BIT_ASSERT_IMPL(kind, exp)                                        \
    do {                                                                      \
        if (::stc::bit::detail::assertions_active()) {                        \
            ::stc::bit::detail::check(kind, static_cast<bool>(exp), #exp,     \
                                      __FILE__, __LINE__);                    \
        }                                                                     \
    } while (false)
#else
#define STC_BIT_ASSERT_IMPL(kind, exp) \
    do {                               \
    } while (false)
#endif

// Output obligation (ioco illegal quiescence): `emitted` must be true
// after the enclosing method ran, else the component stayed silent where
// the assembly specification demands an observable output.  Gated the
// same way as the Fig. 5 macros: only in test mode, compiled out under
// STC_BIT_DISABLED.
#ifndef STC_BIT_DISABLED
#define STC_MUST_EMIT(action, emitted, obligation)                          \
    do {                                                                    \
        if (::stc::bit::detail::assertions_active() &&                      \
            !static_cast<bool>(emitted)) {                                  \
            throw ::stc::bit::QuiescenceViolation(action, obligation);      \
        }                                                                   \
    } while (false)
#else
#define STC_MUST_EMIT(action, emitted, obligation) \
    do {                                           \
    } while (false)
#endif

#define STC_CLASS_INVARIANT(exp) \
    STC_BIT_ASSERT_IMPL(::stc::bit::AssertionKind::Invariant, exp)
#define STC_PRECONDITION(exp) \
    STC_BIT_ASSERT_IMPL(::stc::bit::AssertionKind::Precondition, exp)
#define STC_POSTCONDITION(exp) \
    STC_BIT_ASSERT_IMPL(::stc::bit::AssertionKind::Postcondition, exp)
