// Typed registration helpers: turn member-function pointers into the
// untyped invoker thunks of ClassBinding.
//
// Usage (component producer side):
//
//   auto binding = stc::reflect::Binder<Product>("Product")
//       .ctor<>()                                  // Product()
//       .ctor<int, const char*, float, Provider*>()
//       .method("UpdateQty", &Product::UpdateQty)
//       .method("RemoveProduct", &Product::RemoveProduct)
//       .take();
//
// Argument conversion: Int -> integral, Real/Int -> floating point,
// String -> std::string / const char* / char*, Pointer/Object -> T*.
// Return conversion is the inverse; void maps to an empty Value.
#pragma once

#include <concepts>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>

#include "stc/reflect/class_binding.h"

namespace stc::reflect {

namespace detail {

/// Per-parameter conversion: Holder keeps storage alive for the call
/// (e.g. std::string backing a char* parameter).
template <typename A>
struct ArgTraits;

template <std::integral A>
struct ArgTraits<A> {
    using Holder = A;
    static Holder make(const Value& v) { return static_cast<A>(v.as_int()); }
    static A get(Holder& h) { return h; }
};

template <std::floating_point A>
struct ArgTraits<A> {
    using Holder = A;
    static Holder make(const Value& v) { return static_cast<A>(v.as_number()); }
    static A get(Holder& h) { return h; }
};

template <>
struct ArgTraits<std::string> {
    using Holder = std::string;
    static Holder make(const Value& v) { return v.as_string(); }
    static std::string get(Holder& h) { return h; }
};

template <>
struct ArgTraits<const char*> {
    using Holder = std::string;
    static Holder make(const Value& v) { return v.as_string(); }
    static const char* get(Holder& h) { return h.c_str(); }
};

template <>
struct ArgTraits<char*> {
    using Holder = std::string;
    static Holder make(const Value& v) { return v.as_string(); }
    static char* get(Holder& h) { return h.data(); }
};

template <typename P>
struct ArgTraits<P*> {
    using Holder = P*;
    static Holder make(const Value& v) { return static_cast<P*>(v.as_object().ptr); }
    static P* get(Holder& h) { return h; }
};

/// Return-value conversion.
inline Value to_value() { return Value{}; }

template <typename R>
Value to_value(R&& r) {
    using D = std::decay_t<R>;
    if constexpr (std::is_same_v<D, bool>) {
        return Value::make_int(r ? 1 : 0);
    } else if constexpr (std::is_integral_v<D>) {
        return Value::make_int(static_cast<std::int64_t>(r));
    } else if constexpr (std::is_floating_point_v<D>) {
        return Value::make_real(static_cast<double>(r));
    } else if constexpr (std::is_same_v<D, std::string> ||
                         std::is_same_v<D, const char*> || std::is_same_v<D, char*>) {
        return Value::make_string(std::string(r));
    } else if constexpr (std::is_pointer_v<D>) {
        return Value::make_pointer(const_cast<void*>(static_cast<const void*>(r)));
    } else {
        static_assert(std::is_pointer_v<D>,
                      "unsupported return type for reflection binding");
        return Value{};
    }
}

template <typename... As, std::size_t... I>
auto make_holders(const Args& args, std::index_sequence<I...>) {
    return std::tuple<typename ArgTraits<std::decay_t<As>>::Holder...>{
        ArgTraits<std::decay_t<As>>::make(args[I])...};
}

}  // namespace detail

/// Fluent typed binder for class T.
template <typename T>
class Binder {
public:
    explicit Binder(std::string name) : binding_(std::move(name)) {
        binding_.set_destructor([](void* p) { delete static_cast<T*>(p); });
        if constexpr (std::is_base_of_v<bit::BuiltInTest, T>) {
            binding_.set_bit_caster([](void* p) -> bit::BuiltInTest* {
                return static_cast<T*>(p);
            });
        }
    }

    /// Register a constructor taking As... .
    template <typename... As>
    Binder& ctor() {
        binding_.add_constructor(sizeof...(As), [](const Args& args) -> void* {
            if (args.size() != sizeof...(As)) {
                throw ReflectError("constructor arity mismatch");
            }
            auto holders =
                detail::make_holders<As...>(args, std::index_sequence_for<As...>{});
            return std::apply(
                [](auto&... hs) -> void* {
                    return new T(detail::ArgTraits<std::decay_t<As>>::get(hs)...);
                },
                holders);
        });
        return *this;
    }

    /// Register a (possibly overloaded, possibly inherited) member
    /// function under `name`.  Overloads cover const and noexcept
    /// qualifications; `B` may be any base of T (inherited methods are
    /// bound as the derived class's — exactly the reuse situation of
    /// §3.4.2).
    template <typename R, typename B, typename... As>
        requires std::derived_from<T, B>
    Binder& method(const std::string& name, R (B::*fn)(As...)) {
        return method_impl<R, As...>(
            name, [fn](T* obj, As... as) -> R { return (obj->*fn)(as...); });
    }

    template <typename R, typename B, typename... As>
        requires std::derived_from<T, B>
    Binder& method(const std::string& name, R (B::*fn)(As...) const) {
        return method_impl<R, As...>(
            name, [fn](T* obj, As... as) -> R { return (obj->*fn)(as...); });
    }

    template <typename R, typename B, typename... As>
        requires std::derived_from<T, B>
    Binder& method(const std::string& name, R (B::*fn)(As...) noexcept) {
        return method_impl<R, As...>(
            name, [fn](T* obj, As... as) -> R { return (obj->*fn)(as...); });
    }

    template <typename R, typename B, typename... As>
        requires std::derived_from<T, B>
    Binder& method(const std::string& name, R (B::*fn)(As...) const noexcept) {
        return method_impl<R, As...>(
            name, [fn](T* obj, As... as) -> R { return (obj->*fn)(as...); });
    }

    /// Register a hand-written invoker.  This is how a tester "completes"
    /// methods whose parameters cannot be generated (e.g. a POSITION into
    /// the live list: the wrapper derives it from an index argument) —
    /// the programmatic equivalent of the paper's manual completion of
    /// structured parameters (§3.4.1).
    Binder& custom(const std::string& name, std::size_t arity,
                   std::function<Value(T&, const Args&)> fn) {
        binding_.add_method(name, arity,
                            [fn = std::move(fn)](void* obj, const Args& args) -> Value {
                                return fn(*static_cast<T*>(obj), args);
                            });
        return *this;
    }

    /// Register the set/reset capability (§3.3): `fn(object, state)`
    /// puts the object into the named predefined internal state.
    Binder& state_setter(std::function<void(T&, const std::string&)> fn) {
        binding_.set_state_setter(
            [fn = std::move(fn)](void* obj, const std::string& state) {
                fn(*static_cast<T*>(obj), state);
            });
        return *this;
    }

    /// Register the behavioural-copy capability: `fn(source)` returns a
    /// heap-allocated copy destroyable by the bound destructor.  Enables
    /// campaign prefix memoization (ClassBinding::Cloner).
    Binder& cloner(std::function<T*(const T&)> fn) {
        binding_.set_cloner([fn = std::move(fn)](const void* obj) -> void* {
            return fn(*static_cast<const T*>(obj));
        });
        return *this;
    }

    /// Consume the accumulated binding.
    [[nodiscard]] ClassBinding take() { return std::move(binding_); }

private:
    template <typename R, typename... As, typename F>
    Binder& method_impl(const std::string& name, F f) {
        binding_.add_method(name, sizeof...(As),
                            [f = std::move(f)](void* obj, const Args& args) -> Value {
                                return call_free<R, As...>(f, static_cast<T*>(obj),
                                                           args);
                            });
        return *this;
    }

    template <typename R, typename... As, typename F>
    static Value call_free(F&& f, T* obj, const Args& args) {
        if (args.size() != sizeof...(As)) {
            throw ReflectError("method arity mismatch");
        }
        auto holders =
            detail::make_holders<As...>(args, std::index_sequence_for<As...>{});
        if constexpr (std::is_void_v<R>) {
            std::apply(
                [&](auto&... hs) {
                    f(obj, detail::ArgTraits<std::decay_t<As>>::get(hs)...);
                },
                holders);
            return Value{};
        } else {
            return detail::to_value(std::apply(
                [&](auto&... hs) -> R {
                    return f(obj, detail::ArgTraits<std::decay_t<As>>::get(hs)...);
                },
                holders));
        }
    }

    ClassBinding binding_;
};

}  // namespace stc::reflect
