// Reflection substitute.
//
// The paper's Concat tool generates C++ *source* drivers because the
// language has no reflection.  This module provides the complementary
// runtime path: a component producer registers invoker thunks for each
// constructor/method named in the t-spec, and the driver executes
// generated test cases in-process through them.  (The source-generating
// path of the paper lives in stc::codegen.)
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "stc/bit/built_in_test.h"
#include "stc/domain/value.h"
#include "stc/support/error.h"

namespace stc::reflect {

using domain::Value;
using Args = std::vector<Value>;

/// Untyped call surface of one class: constructors by arity, methods by
/// (name, arity), a destructor, and a cast to the BIT interface.
class ClassBinding {
public:
    using Invoker = std::function<Value(void*, const Args&)>;
    using Factory = std::function<void*(const Args&)>;
    using Deleter = std::function<void(void*)>;
    using BitCaster = std::function<bit::BuiltInTest*(void*)>;
    /// The set/reset capability of §3.3: put an object into a named
    /// predefined internal state, independent of its current state.
    using StateSetter = std::function<void(void*, const std::string&)>;
    /// Behavioural copy: build a fresh instance whose *observable* state
    /// (reports, invariants, responses to any further call sequence)
    /// matches the source object's.  Raw addresses may differ — the
    /// driver never renders them.  Optional capability: it enables the
    /// campaign prefix-memoization tier (stc/driver/runner.h
    /// capture_case/run_case_from); classes without one simply run every
    /// case from its constructor.
    using Cloner = std::function<void*(const void*)>;

    ClassBinding() = default;
    explicit ClassBinding(std::string name) : name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    void add_constructor(std::size_t arity, Factory factory);
    void add_method(const std::string& name, std::size_t arity, Invoker invoker);
    void set_destructor(Deleter deleter);
    void set_bit_caster(BitCaster caster);
    void set_state_setter(StateSetter setter);
    void set_cloner(Cloner cloner);

    [[nodiscard]] bool has_constructor(std::size_t arity) const;
    [[nodiscard]] bool has_method(const std::string& name, std::size_t arity) const;

    /// Create an instance using the constructor whose arity matches
    /// args.size().  Throws ReflectError when none is registered.
    [[nodiscard]] void* construct(const Args& args) const;

    /// Invoke a method by name/arity.  Throws ReflectError when unknown.
    Value invoke(void* object, const std::string& method, const Args& args) const;

    /// Destroy an instance created by construct().
    void destroy(void* object) const;

    /// View the object through the BIT interface; null when the class did
    /// not register a caster (i.e. is not self-testable).
    [[nodiscard]] bit::BuiltInTest* as_bit(void* object) const;

    /// Apply a named predefined state (set/reset capability).  Throws
    /// ReflectError when the class registered no state setter; the
    /// setter itself should throw for unknown state names.
    void apply_state(void* object, const std::string& state) const;
    [[nodiscard]] bool has_state_setter() const noexcept {
        return static_cast<bool>(state_setter_);
    }

    /// Behavioural copy of `object` (see Cloner).  Throws ReflectError
    /// when the class registered no cloner.
    [[nodiscard]] void* clone(const void* object) const;
    [[nodiscard]] bool has_cloner() const noexcept {
        return static_cast<bool>(cloner_);
    }

    /// Registered method (name, arity) pairs, for introspection tests.
    [[nodiscard]] std::vector<std::pair<std::string, std::size_t>> methods() const;

private:
    std::string name_;
    std::map<std::size_t, Factory> constructors_;
    std::map<std::pair<std::string, std::size_t>, Invoker> methods_;
    Deleter deleter_;
    BitCaster bit_caster_;
    StateSetter state_setter_;
    Cloner cloner_;
};

/// Name -> binding registry handed to the driver.  An explicit object
/// (not a global): each test session owns its registry.
class Registry {
public:
    /// Register a binding; replaces any previous binding of the same name.
    void add(ClassBinding binding);

    [[nodiscard]] const ClassBinding* find(const std::string& name) const;

    /// Throwing lookup.
    [[nodiscard]] const ClassBinding& at(const std::string& name) const;

    [[nodiscard]] std::size_t size() const noexcept { return bindings_.size(); }

private:
    std::map<std::string, ClassBinding> bindings_;
};

}  // namespace stc::reflect
