#include "stc/reflect/class_binding.h"

namespace stc::reflect {

void ClassBinding::add_constructor(std::size_t arity, Factory factory) {
    constructors_[arity] = std::move(factory);
}

void ClassBinding::add_method(const std::string& name, std::size_t arity,
                              Invoker invoker) {
    methods_[{name, arity}] = std::move(invoker);
}

void ClassBinding::set_destructor(Deleter deleter) { deleter_ = std::move(deleter); }

void ClassBinding::set_bit_caster(BitCaster caster) { bit_caster_ = std::move(caster); }

void ClassBinding::set_state_setter(StateSetter setter) {
    state_setter_ = std::move(setter);
}

void ClassBinding::set_cloner(Cloner cloner) { cloner_ = std::move(cloner); }

void* ClassBinding::clone(const void* object) const {
    if (!cloner_) {
        throw ReflectError("class '" + name_ + "' has no cloner bound");
    }
    return cloner_(object);
}

void ClassBinding::apply_state(void* object, const std::string& state) const {
    if (!state_setter_) {
        throw ReflectError("class '" + name_ + "' has no set/reset capability");
    }
    state_setter_(object, state);
}

bool ClassBinding::has_constructor(std::size_t arity) const {
    return constructors_.count(arity) != 0;
}

bool ClassBinding::has_method(const std::string& name, std::size_t arity) const {
    return methods_.count({name, arity}) != 0;
}

void* ClassBinding::construct(const Args& args) const {
    const auto it = constructors_.find(args.size());
    if (it == constructors_.end()) {
        throw ReflectError("class '" + name_ + "' has no constructor of arity " +
                           std::to_string(args.size()));
    }
    return it->second(args);
}

Value ClassBinding::invoke(void* object, const std::string& method,
                           const Args& args) const {
    const auto it = methods_.find({method, args.size()});
    if (it == methods_.end()) {
        throw ReflectError("class '" + name_ + "' has no method " + method + "/" +
                           std::to_string(args.size()));
    }
    return it->second(object, args);
}

void ClassBinding::destroy(void* object) const {
    if (!deleter_) throw ReflectError("class '" + name_ + "' has no destructor bound");
    deleter_(object);
}

bit::BuiltInTest* ClassBinding::as_bit(void* object) const {
    if (!bit_caster_) return nullptr;
    return bit_caster_(object);
}

std::vector<std::pair<std::string, std::size_t>> ClassBinding::methods() const {
    std::vector<std::pair<std::string, std::size_t>> out;
    out.reserve(methods_.size());
    for (const auto& [key, _] : methods_) out.push_back(key);
    return out;
}

void Registry::add(ClassBinding binding) {
    const std::string name = binding.name();
    bindings_.insert_or_assign(name, std::move(binding));
}

const ClassBinding* Registry::find(const std::string& name) const {
    const auto it = bindings_.find(name);
    return it == bindings_.end() ? nullptr : &it->second;
}

const ClassBinding& Registry::at(const std::string& name) const {
    const ClassBinding* b = find(name);
    if (b == nullptr) throw ReflectError("no binding registered for class '" + name + "'");
    return *b;
}

}  // namespace stc::reflect
