// Killer synthesis by bounded reachability over the product of the
// component's TFM and its lockstep reference model.
//
// A campaign survivor is a mutant the generated suite executed but
// could not distinguish from the original.  The paper resolves such
// survivors by manual analysis; stc::kill automates the attempt: treat
// the TFM as a transition system, pair each abstract state with the
// reference model's abstract_state() projection, mark the mutant's
// operator site as *must-traverse*, and search breadth-first for a
// transaction that (a) reaches the site and (b) thereafter reaches a
// state-divergent observation.  Divergence is judged by the same
// differential oracle the campaign uses (oracle::classify_suite_
// differential over a golden/mutated pair), so a candidate is only ever
// reported after it has been EXECUTED against the real mutant and
// actually killed it — the search proposes, execution disposes.
//
// Two phases per value round:
//   1. strict TFM — candidates are transactions of the declared test
//      model (Graph::method_sequence semantics), so any killer found is
//      a sequence the generated suite could in principle have drawn;
//   2. widened spec alphabet — candidates may chain ANY non-constructor
//      methods of the t-spec interface in any order (the synthetic
//      specification_graph()).  This is the "model-check the
//      specification, not the test model" escalation: some mutants are
//      equivalent within the TFM language yet distinguishable by a
//      legal C++ client (e.g. CObList RemoveTail after RemoveHead).
//      Killers found here are flagged `widened`.
//
// Determinism: BFS expands nodes in graph insertion order, argument
// values are synthesized once per (mutant, round) from a seed derived
// with campaign::derive_item_seed, and the budget is counted in queue
// pushes — so two same-seed runs produce byte-identical outcomes
// regardless of wall clock or worker count.
#pragma once

#include <cstdint>
#include <string>

#include "stc/driver/generator.h"
#include "stc/driver/runner.h"
#include "stc/mutation/mutant.h"
#include "stc/obs/context.h"
#include "stc/oracle/oracle.h"
#include "stc/reflect/class_binding.h"
#include "stc/tfm/graph.h"
#include "stc/tspec/model.h"

namespace stc::kill {

/// Terminal state of one mutant's search.
enum class SearchStatus {
    Verified,         ///< a candidate executed against the mutant and killed it
    SiteUnreachable,  ///< no explored transaction ever consulted the site
    SearchExhausted,  ///< every reachable product state explored, no kill —
                      ///< the strongest equivalence evidence this tool produces
    BudgetExhausted,  ///< stopped at --budget-states / --max-depth, inconclusive
};

[[nodiscard]] const char* to_string(SearchStatus status) noexcept;

struct SearchOptions {
    std::uint64_t seed = 20010701;
    /// Product states the search may enqueue, across all rounds and both
    /// phases (counted on push, so the bound is exact and schedule-free).
    std::size_t budget_states = 4096;
    /// Longest explored path, in TFM nodes after birth.
    std::size_t max_depth = 12;
    /// Enable the phase-2 spec-alphabet widening.
    bool widen = true;
    /// Argument-value assignments tried per mutant: round r re-derives
    /// every method's arguments from a fresh per-round seed, so killers
    /// needing particular values get value_rounds chances.
    std::size_t value_rounds = 2;
    /// Execution environment for candidate runs.  `runner.model` (when
    /// set) both feeds the product-state abstraction and arms the
    /// differential oracle; promote_divergence is forced off internally.
    driver::RunnerOptions runner{};
    oracle::OracleConfig oracle{};
    obs::Context obs{};
};

struct SearchStats {
    std::size_t states_expanded = 0;     ///< queue pushes consumed from budget
    std::size_t candidates_executed = 0; ///< golden/mutated evaluation pairs
    std::size_t arming_checks = 0;       ///< clean coverage probes of the site
    std::size_t armed_states = 0;        ///< states that had traversed the site
    std::size_t rounds = 0;              ///< value rounds actually entered
};

struct SearchOutcome {
    SearchStatus status = SearchStatus::SiteUnreachable;
    /// Valid iff status == Verified: the executable test case that
    /// killed the mutant (unshrunk — callers minimize via stc::fuzz).
    driver::TestCase killer;
    oracle::KillReason reason = oracle::KillReason::None;
    /// The base oracle alone would have missed it (differential leg).
    bool model_only = false;
    /// Killer lives in the widened spec alphabet, not the TFM language.
    bool widened = false;
    SearchStats stats;
};

/// Bounded BFS for one component.  Construction precomputes both phase
/// graphs; find_killer is const and touches no shared mutable state, so
/// one instance may serve concurrent per-mutant searches.
class ProductSearch {
public:
    ProductSearch(const tspec::ComponentSpec& spec,
                  const reflect::Registry& registry,
                  const driver::CompletionRegistry* completions,
                  SearchOptions options);

    [[nodiscard]] SearchOutcome find_killer(const mutation::Mutant& mutant) const;

    /// The widened phase's synthetic graph: one birth node per
    /// constructor, one node per non-constructor/destructor method, one
    /// death node per destructor, with every ordering allowed.  Exposed
    /// so the shrinker can validate widened killers against the same
    /// language the search drew them from.
    [[nodiscard]] static tfm::Graph specification_graph(
        const tspec::ComponentSpec& spec);

private:
    const tspec::ComponentSpec& spec_;
    const reflect::Registry& registry_;
    const driver::CompletionRegistry* completions_;
    SearchOptions options_;
    tfm::Graph tfm_;
    tfm::Graph widened_;
    std::vector<std::optional<tfm::NodeIndex>> tfm_hops_;
    std::vector<std::optional<tfm::NodeIndex>> widened_hops_;
};

}  // namespace stc::kill
