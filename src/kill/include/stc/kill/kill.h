// The kill pass: raise a finished campaign's mutation score by
// synthesizing killers for its surviving mutants.
//
// Input is a campaign result store (stc::campaign, docs/FORMATS.md §6):
// every record with fate `alive` is a mutant the generated suite
// executed but could not distinguish.  For each one, ProductSearch
// (search.h) hunts for a transaction that traverses the mutated site
// and then diverges observably; a candidate only counts after it has
// been executed against the real mutant and killed it.  Verified
// killers are ddmin-shrunk with stc::fuzz's shrinker (the predicate
// demands the SAME kill classification, not just any failure),
// content-hashed into the regression corpus, and folded back into the
// store records (fate killed, synthesized flag) so `concat campaign
// --resume` and `concat stats` reflect the raised score.
//
// Determinism: per-mutant searches are independent and internally
// sequential; --jobs only distributes mutants across threads, results
// are slotted by survivor index, and telemetry is emitted post-hoc in
// that order — so report, telemetry, corpus files, and the rewritten
// store are byte-identical for any job count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "stc/campaign/result_store.h"
#include "stc/campaign/telemetry.h"
#include "stc/driver/generator.h"
#include "stc/fuzz/shrink.h"
#include "stc/kill/search.h"
#include "stc/mutation/mutant.h"

namespace stc::kill {

/// Component under synthesis.  All pointers are non-owning and must
/// outlive the call; `completions` may be null.
struct KillContext {
    const tspec::ComponentSpec* spec = nullptr;
    const reflect::Registry* registry = nullptr;
    const driver::CompletionRegistry* completions = nullptr;
    /// The campaign's mutant universe, in enumeration order.  Survivor
    /// records are matched against it by Mutant::id().
    const std::vector<mutation::Mutant>* mutants = nullptr;
};

struct KillOptions {
    std::uint64_t seed = 20010701;
    SearchOptions search;
    /// Worker threads across survivors (1 = sequential; output is
    /// byte-identical either way).
    std::size_t jobs = 1;
    /// Corpus directory for verified killers ("" = do not persist).
    std::string corpus_dir;
    /// Shrink budget per verified killer, in predicate evaluations.
    std::size_t max_shrink_steps = 256;
    /// Kill telemetry (kill-run-start/kill-start/kill-candidate/
    /// kill-verified/kill-gave-up/kill-run-end, docs/FORMATS.md §14).
    campaign::TelemetrySink telemetry;
    obs::Context obs;
};

/// Result for one surviving mutant.
struct KillItem {
    std::size_t record_index = 0;  ///< index into the store's records
    std::string mutant_id;
    SearchStatus status = SearchStatus::SiteUnreachable;
    oracle::KillReason reason = oracle::KillReason::None;  ///< when Verified
    bool model_only = false;
    bool widened = false;
    std::size_t candidate_calls = 0;  ///< killer length before shrinking
    driver::TestCase killer;          ///< shrunk; valid iff Verified
    fuzz::ShrinkResult shrink;        ///< valid iff Verified
    std::string corpus_file;          ///< basename ("" = not persisted)
    SearchStats stats;
};

struct KillRun {
    std::vector<KillItem> items;  ///< survivors, in store (file) order
    std::size_t survivors = 0;
    std::size_t verified = 0;
    // Score bookkeeping over the whole store (not just survivors):
    std::size_t total = 0;
    std::size_t equivalent = 0;
    std::size_t killed_before = 0;
    std::size_t killed_after = 0;

    /// The campaign score before/after synthesis:
    /// killed / (total - equivalent), 1.0 when the denominator is 0.
    [[nodiscard]] double score_before() const noexcept;
    [[nodiscard]] double score_after() const noexcept;
};

/// Run the kill pass over `records` (a store's records in file order,
/// campaign::peek_store).  Verified kills update the matching records
/// in place — fate `killed`, reason, model_only, synthesized=true —
/// and the caller persists them with campaign::rewrite_store.  Throws
/// stc::Error when a survivor's mutant id is not in the context's
/// mutant universe (the store belongs to a different campaign; the
/// fingerprint check should have caught it).
[[nodiscard]] KillRun kill_survivors(const KillContext& context,
                                     std::vector<campaign::ItemRecord>& records,
                                     const KillOptions& options);

/// Deterministic human-readable report (no wall-clock content).
void render_kill_report(std::ostream& os, const KillRun& run,
                        const std::string& class_name,
                        const KillOptions& options);

}  // namespace stc::kill
