#include "stc/kill/search.h"

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "stc/campaign/seed.h"
#include "stc/mutation/controller.h"
#include "stc/mutation/coverage.h"
#include "stc/support/rng.h"

namespace stc::kill {

const char* to_string(SearchStatus status) noexcept {
    switch (status) {
        case SearchStatus::Verified: return "verified";
        case SearchStatus::SiteUnreachable: return "site-unreachable";
        case SearchStatus::SearchExhausted: return "search-exhausted";
        case SearchStatus::BudgetExhausted: return "budget-exhausted";
    }
    return "?";
}

namespace {

/// Canonical argument assignment for one (mutant, round): every method
/// gets ONE positive call (and, when the domain admits an out-of-domain
/// value, one negative call) synthesized up front from a seed derived
/// with campaign::derive_item_seed.  Identical arguments for identical
/// methods collapse product states that differ only in value noise,
/// which is what makes the model-state dedupe effective.
struct CallTables {
    std::map<std::string, driver::MethodCall> positive;
    std::map<std::string, driver::MethodCall> negative;
    std::set<std::string> incomplete;  ///< method ids with a placeholder arg
};

CallTables build_tables(const tspec::ComponentSpec& spec,
                        const driver::CompletionRegistry* completions,
                        std::uint64_t seed, const std::string& mutant_id,
                        std::size_t round) {
    support::Pcg32 rng(campaign::derive_item_seed(
        seed, mutant_id, "kill-values-r" + std::to_string(round)));
    CallTables tables;
    for (const tspec::MethodSpec& method : spec.methods) {
        bool needs = false;
        tables.positive[method.id] =
            driver::synthesize_call(method, rng, round, completions,
                                    driver::ValuePolicy::Random, &needs);
        if (needs) tables.incomplete.insert(method.id);
    }
    for (const tspec::MethodSpec& method : spec.methods) {
        if (method.is_constructor() || method.is_destructor()) continue;
        if (!driver::DriverGenerator::can_reject(method)) continue;
        bool needs = false;
        tables.negative[method.id] = driver::synthesize_call(
            method, rng, round, completions, driver::ValuePolicy::Random,
            &needs, /*expect_rejection=*/true);
        if (needs) tables.incomplete.insert(method.id);
    }
    return tables;
}

/// One product state of the bounded search: a TFM node paired with the
/// reference model's abstract-state projection of the body executed so
/// far.  `armed` records that the mutant's site has provably been
/// traversed; armed states are never deduplicated (the model projection
/// cannot see the mutant's latent corruption, so two armed states with
/// equal projections are NOT interchangeable).
struct SearchState {
    tfm::NodeIndex node = 0;
    std::vector<tfm::NodeIndex> path;
    std::vector<driver::MethodCall> calls;
    bool armed = false;
    bool incomplete = false;
    std::size_t depth = 0;
    std::string model_key;
};

struct Ctx {
    const tspec::ComponentSpec& spec;
    const reflect::Registry& registry;
    const SearchOptions& options;
    const mutation::Mutant& mutant;
    const CallTables& tables;
    const std::string& mutated_id;  ///< t-spec id of the mutated method
    std::size_t* budget_used;
    std::size_t* case_counter;
    SearchStats* stats;
    bool* any_armed;
};

std::vector<driver::MethodCall> node_group(const tfm::Node& node,
                                           const CallTables& tables,
                                           bool* incomplete) {
    std::vector<driver::MethodCall> out;
    out.reserve(node.method_ids.size());
    for (const std::string& entry : node.method_ids) {
        const std::string id = tspec::strip_negative_marker(entry);
        if (tables.incomplete.count(id) != 0) *incomplete = true;
        if (tspec::is_negative_call(entry)) {
            const auto it = tables.negative.find(id);
            if (it != tables.negative.end()) {
                out.push_back(it->second);
                continue;
            }
            // No out-of-domain value exists: fall through to the
            // positive call so the group width still matches the node.
        }
        const auto it = tables.positive.find(id);
        if (it != tables.positive.end()) out.push_back(it->second);
    }
    return out;
}

bool group_contains(const tfm::Node& node, const std::string& mutated_id) {
    for (const std::string& entry : node.method_ids) {
        if (tspec::strip_negative_marker(entry) == mutated_id) return true;
    }
    return false;
}

/// Product-state abstraction of `calls` (constructor first, no
/// destructor): replay through a fresh lockstep model.  Rejected calls
/// leave the model untouched (the component must absorb them); an
/// unmodeled call yields a sticky marker that simply never collides
/// with a healthy projection.  Without a model the abstraction degrades
/// to the path depth — still sound (dedupe only collapses states the
/// abstraction cannot distinguish), just coarser.
std::string model_key_of(const driver::ModelBinding* model,
                         const std::vector<driver::MethodCall>& calls,
                         std::size_t depth) {
    if (model == nullptr || !model->valid()) {
        return "depth=" + std::to_string(depth);
    }
    const std::unique_ptr<driver::LockstepModel> replay = model->factory();
    if (!replay || calls.empty() || !calls.front().is_constructor ||
        !replay->construct(calls.front().arguments)) {
        return "<unmodeled>";
    }
    for (std::size_t i = 1; i < calls.size(); ++i) {
        if (calls[i].expect_rejection) continue;
        if (!replay->apply(calls[i]).modeled) return "<unmodeled>";
    }
    return replay->abstract_state();
}

/// Extend `state`'s body into a complete executable transaction by
/// steering to a death node along shortest hops (deterministic:
/// Graph::next_hop_to_death).  nullopt when no death is reachable.
std::optional<driver::TestCase> build_candidate(
    const Ctx& ctx, const tfm::Graph& graph,
    const std::vector<std::optional<tfm::NodeIndex>>& hops,
    const SearchState& state) {
    std::vector<tfm::NodeIndex> path = state.path;
    std::vector<driver::MethodCall> calls = state.calls;
    bool incomplete = state.incomplete;
    tfm::NodeIndex node = state.node;
    while (!graph.is_death(node)) {
        const std::optional<tfm::NodeIndex> hop = hops[node];
        if (!hop) return std::nullopt;
        node = *hop;
        path.push_back(node);
        const std::vector<driver::MethodCall> group =
            node_group(graph.node(node), ctx.tables, &incomplete);
        calls.insert(calls.end(), group.begin(), group.end());
    }
    driver::TestCase tc;
    tc.id = "K" + std::to_string((*ctx.case_counter)++);
    tc.transaction.path = std::move(path);
    tc.transaction_text = graph.describe(tc.transaction);
    tc.calls = std::move(calls);
    tc.needs_completion = incomplete;
    return tc;
}

struct Eval {
    bool covered = false;   ///< clean run consulted the mutant's site
    bool clean_ok = false;  ///< golden leg passed (usable baseline)
    bool verified = false;
    oracle::KillReason reason = oracle::KillReason::None;
    bool model_only = false;
    driver::TestCase candidate;
};

/// The execution gate: steer the state to death, run the candidate
/// CLEAN under a coverage recorder (arming evidence + golden baseline),
/// and — when the site is or was traversed — run it against the REAL
/// mutant and classify differentially.  A candidate is only ever
/// `verified` after this second execution killed the actual mutant.
Eval evaluate(const Ctx& ctx, const tfm::Graph& graph,
              const std::vector<std::optional<tfm::NodeIndex>>& hops,
              const SearchState& state, bool already_armed) {
    Eval ev;
    const std::optional<driver::TestCase> candidate =
        build_candidate(ctx, graph, hops, state);
    if (!candidate) return ev;
    ev.candidate = *candidate;

    driver::TestSuite suite;
    suite.class_name = ctx.spec.class_name;
    suite.seed = ctx.options.seed;
    suite.cases.push_back(ev.candidate);

    driver::RunnerOptions ro = ctx.options.runner;
    ro.promote_divergence = false;
    ro.log_path.clear();
    ro.observer = nullptr;

    if (!already_armed) ++ctx.stats->arming_checks;
    const mutation::CoveredRun clean =
        mutation::run_with_coverage(ctx.registry, ro, suite);
    ev.covered = clean.index.covers(ev.candidate.id, ctx.mutant);
    ev.clean_ok = true;
    for (const driver::TestResult& r : clean.result.results) {
        if (!r.passed()) ev.clean_ok = false;
    }
    if (!ev.clean_ok || (!already_armed && !ev.covered)) return ev;

    ++ctx.stats->candidates_executed;
    const oracle::GoldenRecord golden = oracle::GoldenRecord::from(clean.result);
    driver::SuiteResult mutated;
    {
        const driver::TestRunner runner(ctx.registry, ro);
        const mutation::MutantActivation activation(ctx.mutant);
        mutated = runner.run(suite);
    }
    const oracle::DifferentialKill diff = oracle::classify_suite_differential(
        golden, mutated, ctx.options.oracle, {}, ctx.options.obs);
    if (diff.with_model != oracle::KillReason::None) {
        ev.verified = true;
        ev.reason = diff.with_model;
        ev.model_only = diff.model_only();
    }
    return ev;
}

enum class PhaseEnd { Drained, Budget, Verified };

/// Bounded BFS over one phase graph.  Deterministic: birth nodes and
/// successors expand in graph insertion order, the budget is counted on
/// push, and no wall-clock or scheduling state is consulted.
PhaseEnd run_phase(const Ctx& ctx, const tfm::Graph& graph,
                   const std::vector<std::optional<tfm::NodeIndex>>& hops,
                   bool widened_phase, SearchOutcome* out) {
    const obs::SpanScope phase_span(
        ctx.options.obs.tracer, "kill-phase",
        widened_phase ? "widened" : "tfm");
    const driver::ModelBinding* model = ctx.options.runner.model;

    const auto record_kill = [&](const Eval& ev) {
        out->status = SearchStatus::Verified;
        out->killer = ev.candidate;
        out->reason = ev.reason;
        out->model_only = ev.model_only;
        out->widened = widened_phase;
    };

    std::deque<SearchState> queue;
    std::set<std::string> seen;  // unarmed states only: "node|model-key"
    const auto push = [&](SearchState state) -> bool {
        if (*ctx.budget_used >= ctx.options.budget_states) return false;
        ++*ctx.budget_used;
        ++ctx.stats->states_expanded;
        queue.push_back(std::move(state));
        return true;
    };

    for (const tfm::NodeIndex birth : graph.birth_nodes()) {
        SearchState state;
        state.node = birth;
        state.path = {birth};
        state.calls = node_group(graph.node(birth), ctx.tables, &state.incomplete);
        state.depth = 0;
        if (group_contains(graph.node(birth), ctx.mutated_id)) {
            const Eval ev = evaluate(ctx, graph, hops, state, false);
            if (ev.verified) {
                record_kill(ev);
                return PhaseEnd::Verified;
            }
            state.armed = ev.covered && ev.clean_ok;
            if (state.armed) {
                ++ctx.stats->armed_states;
                *ctx.any_armed = true;
            }
        }
        if (!state.armed) {
            state.model_key = model_key_of(model, state.calls, state.depth);
            if (!seen.insert(std::to_string(state.node) + "|" + state.model_key)
                     .second) {
                continue;
            }
        }
        if (graph.is_death(birth)) continue;  // degenerate: nothing to expand
        if (!push(std::move(state))) return PhaseEnd::Budget;
    }

    while (!queue.empty()) {
        const SearchState current = std::move(queue.front());
        queue.pop_front();
        if (current.depth >= ctx.options.max_depth) continue;
        for (const tfm::NodeIndex next : graph.successors(current.node)) {
            SearchState child;
            child.node = next;
            child.path = current.path;
            child.path.push_back(next);
            child.calls = current.calls;
            child.incomplete = current.incomplete;
            const std::vector<driver::MethodCall> group =
                node_group(graph.node(next), ctx.tables, &child.incomplete);
            child.calls.insert(child.calls.end(), group.begin(), group.end());
            child.depth = current.depth + 1;
            child.armed = current.armed;

            const bool contains =
                group_contains(graph.node(next), ctx.mutated_id);
            if (!child.armed && contains) {
                // Arming is decided by execution, not by name: the call
                // must actually consult the mutated site (a total
                // wrapper no-op, e.g. RemoveHead on empty, never arms).
                const Eval ev = evaluate(ctx, graph, hops, child, false);
                if (ev.verified) {
                    record_kill(ev);
                    return PhaseEnd::Verified;
                }
                child.armed = ev.covered && ev.clean_ok;
                if (child.armed) {
                    ++ctx.stats->armed_states;
                    *ctx.any_armed = true;
                }
            } else if (child.armed) {
                const Eval ev = evaluate(ctx, graph, hops, child, true);
                if (ev.verified) {
                    record_kill(ev);
                    return PhaseEnd::Verified;
                }
            }

            if (graph.is_death(next)) continue;  // candidate already judged
            if (!child.armed) {
                child.model_key = model_key_of(model, child.calls, child.depth);
                if (!seen.insert(std::to_string(child.node) + "|" +
                                 child.model_key)
                         .second) {
                    continue;
                }
            }
            if (!push(std::move(child))) return PhaseEnd::Budget;
        }
    }
    return PhaseEnd::Drained;
}

}  // namespace

ProductSearch::ProductSearch(const tspec::ComponentSpec& spec,
                             const reflect::Registry& registry,
                             const driver::CompletionRegistry* completions,
                             SearchOptions options)
    : spec_(spec),
      registry_(registry),
      completions_(completions),
      options_(std::move(options)),
      tfm_(spec.build_tfm()),
      widened_(specification_graph(spec)),
      tfm_hops_(tfm_.next_hop_to_death()),
      widened_hops_(widened_.next_hop_to_death()) {}

tfm::Graph ProductSearch::specification_graph(const tspec::ComponentSpec& spec) {
    tfm::Graph graph;
    std::vector<tfm::NodeIndex> births;
    std::vector<tfm::NodeIndex> workers;
    std::vector<tfm::NodeIndex> deaths;
    for (const tspec::MethodSpec& method : spec.methods) {
        if (method.is_constructor()) {
            births.push_back(
                graph.add_node({"b:" + method.id, true, {method.id}}));
        } else if (method.is_destructor()) {
            deaths.push_back(
                graph.add_node({"d:" + method.id, false, {method.id}}));
        } else {
            workers.push_back(
                graph.add_node({"w:" + method.id, false, {method.id}}));
        }
    }
    for (const tfm::NodeIndex b : births) {
        for (const tfm::NodeIndex w : workers) graph.add_edge(b, w);
        for (const tfm::NodeIndex d : deaths) graph.add_edge(b, d);
    }
    for (const tfm::NodeIndex w : workers) {
        for (const tfm::NodeIndex v : workers) graph.add_edge(w, v);
        for (const tfm::NodeIndex d : deaths) graph.add_edge(w, d);
    }
    return graph;
}

SearchOutcome ProductSearch::find_killer(const mutation::Mutant& mutant) const {
    const obs::SpanScope search_span(options_.obs.tracer, "kill-search",
                                     mutant.id());
    SearchOutcome out;
    out.status = SearchStatus::SiteUnreachable;

    const tspec::MethodSpec* mutated =
        spec_.find_method_by_name(mutant.method->method_name());
    if (mutated == nullptr) return out;  // site outside the t-spec interface

    std::size_t budget_used = 0;
    std::size_t case_counter = 0;
    bool any_armed = false;
    bool budget_hit = false;
    const std::string mutant_id = mutant.id();

    for (std::size_t round = 0; round < options_.value_rounds; ++round) {
        ++out.stats.rounds;
        const CallTables tables = build_tables(spec_, completions_,
                                               options_.seed, mutant_id, round);
        const Ctx ctx{spec_,        registry_,     options_,
                      mutant,       tables,        mutated->id,
                      &budget_used, &case_counter, &out.stats,
                      &any_armed};

        PhaseEnd end = run_phase(ctx, tfm_, tfm_hops_, false, &out);
        if (end == PhaseEnd::Verified) break;
        if (end == PhaseEnd::Budget) {
            budget_hit = true;
            break;
        }
        if (options_.widen) {
            end = run_phase(ctx, widened_, widened_hops_, true, &out);
            if (end == PhaseEnd::Verified) break;
            if (end == PhaseEnd::Budget) {
                budget_hit = true;
                break;
            }
        }
    }

    if (out.status != SearchStatus::Verified) {
        out.status = budget_hit    ? SearchStatus::BudgetExhausted
                     : any_armed   ? SearchStatus::SearchExhausted
                                   : SearchStatus::SiteUnreachable;
    }
    options_.obs.metrics.add(std::string("kill.search.") +
                             to_string(out.status));
    return out;
}

}  // namespace stc::kill
