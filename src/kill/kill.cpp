#include "stc/kill/kill.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <ostream>
#include <thread>
#include <utility>

#include "stc/campaign/seed.h"
#include "stc/fuzz/corpus.h"
#include "stc/fuzz/fuzzer.h"
#include "stc/mutation/controller.h"
#include "stc/support/error.h"
#include "stc/support/strings.h"

namespace stc::kill {

namespace {

double score_of(std::size_t killed, std::size_t total,
                std::size_t equivalent) noexcept {
    const std::size_t denom = total - equivalent;
    if (denom == 0) return 1.0;
    return static_cast<double>(killed) / static_cast<double>(denom);
}

std::string basename_of(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

driver::TestSuite single_case_suite(const std::string& class_name,
                                    std::uint64_t seed,
                                    const driver::TestCase& tc) {
    driver::TestSuite suite;
    suite.class_name = class_name;
    suite.seed = seed;
    suite.cases.push_back(tc);
    return suite;
}

/// Shrink a verified killer while preserving its exact classification:
/// a candidate still counts only when the clean leg passes AND the
/// mutated leg is killed for the SAME reason (a killer must not drift
/// from, say, an assertion kill to an output diff while shrinking —
/// the corpus records the reason).
fuzz::ShrinkResult shrink_killer(const KillContext& context,
                                 const KillOptions& options,
                                 const tfm::Graph& graph,
                                 const mutation::Mutant& mutant,
                                 const driver::TestCase& killer,
                                 oracle::KillReason reason) {
    driver::RunnerOptions ro = options.search.runner;
    ro.promote_divergence = false;
    ro.log_path.clear();
    ro.observer = nullptr;
    const driver::TestRunner runner(*context.registry, ro);
    const std::string& class_name = context.spec->class_name;

    const fuzz::Predicate still_kills = [&](const driver::TestCase& tc) {
        const driver::TestSuite suite =
            single_case_suite(class_name, options.seed, tc);
        const driver::SuiteResult clean = runner.run(suite);
        for (const driver::TestResult& r : clean.results) {
            if (!r.passed()) return false;
        }
        const oracle::GoldenRecord golden = oracle::GoldenRecord::from(clean);
        driver::SuiteResult mutated;
        {
            const mutation::MutantActivation activation(mutant);
            mutated = runner.run(suite);
        }
        const oracle::DifferentialKill diff = oracle::classify_suite_differential(
            golden, mutated, options.search.oracle, {}, options.obs);
        return diff.with_model == reason;
    };

    fuzz::ShrinkOptions shrink_options;
    shrink_options.max_steps = options.max_shrink_steps;
    shrink_options.obs = options.obs;
    return fuzz::shrink_case(*context.spec, graph, killer, still_kills,
                             shrink_options);
}

/// Persist the shrunk killer into the regression corpus.  The recorded
/// verdict is whatever the replay environment observes (mutant active,
/// divergence promoted), and persist_entry refuses entries whose
/// serialized form does not replay — so a checked-in killer is a real
/// regression test, not a transcript.  Returns the corpus basename, or
/// "" when the kill is not corpus-replayable (e.g. pure output-diff
/// kills, which pass in isolation).
std::string persist_killer(const KillContext& context,
                           const KillOptions& options,
                           const mutation::Mutant& mutant,
                           const KillItem& item) {
    const reflect::ClassBinding* binding =
        context.registry->find(context.spec->class_name);
    if (binding == nullptr) return "";

    driver::RunnerOptions ro = options.search.runner;
    ro.promote_divergence = true;  // divergence kills must fail on replay
    ro.log_path.clear();
    ro.observer = nullptr;
    const driver::TestRunner runner(*context.registry, ro);
    const fuzz::CaseRunner case_runner = [&](const driver::TestCase& tc) {
        const mutation::MutantActivation activation(mutant);
        return runner.run_case(*binding, tc);
    };

    const driver::TestResult observed = case_runner(item.killer);
    if (observed.passed()) return "";

    fuzz::CorpusEntry entry;
    entry.suite.class_name = context.spec->class_name;
    entry.suite.cases.push_back(item.killer);
    entry.verdict = observed.verdict;
    entry.failed_method = observed.failed_method;
    entry.mutant_id = item.mutant_id;
    entry.kill_reason = oracle::to_string(item.reason);
    const std::uint64_t entry_seed =
        campaign::derive_item_seed(options.seed, item.mutant_id, "kill-corpus");
    const fuzz::PersistOutcome persisted = fuzz::persist_entry(
        options.corpus_dir, entry, context.completions, case_runner, entry_seed);
    return persisted.reproducible ? basename_of(persisted.path) : "";
}

}  // namespace

double KillRun::score_before() const noexcept {
    return score_of(killed_before, total, equivalent);
}

double KillRun::score_after() const noexcept {
    return score_of(killed_after, total, equivalent);
}

KillRun kill_survivors(const KillContext& context,
                       std::vector<campaign::ItemRecord>& records,
                       const KillOptions& options) {
    if (context.spec == nullptr || context.registry == nullptr ||
        context.mutants == nullptr) {
        throw ContractError("kill_survivors needs spec, registry and mutants");
    }
    const obs::SpanScope run_span(options.obs.tracer, "phase", "kill-run");

    KillRun run;
    std::vector<std::size_t> survivor_indices;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const std::string& fate = records[i].fate;
        if (fate == "killed") ++run.killed_before;
        if (fate == "equivalent") ++run.equivalent;
        if (fate == "alive") survivor_indices.push_back(i);
    }
    run.total = records.size();
    run.survivors = survivor_indices.size();
    run.killed_after = run.killed_before;

    std::map<std::string, const mutation::Mutant*> by_id;
    for (const mutation::Mutant& mutant : *context.mutants) {
        by_id.emplace(mutant.id(), &mutant);
    }
    for (const std::size_t i : survivor_indices) {
        if (by_id.find(records[i].mutant_id) == by_id.end()) {
            throw Error("result store names an unknown mutant: " +
                        records[i].mutant_id);
        }
    }

    campaign::TelemetrySink telemetry = options.telemetry;
    {
        obs::JsonObject event;
        event.set("event", "kill-run-start")
            .set("class", context.spec->class_name)
            .set("survivors", static_cast<std::uint64_t>(run.survivors))
            .set("budget_states",
                 static_cast<std::uint64_t>(options.search.budget_states))
            .set("max_depth", static_cast<std::uint64_t>(options.search.max_depth))
            .set("seed", options.seed);
        telemetry.emit(std::move(event));
    }

    const ProductSearch search(*context.spec, *context.registry,
                               context.completions, options.search);
    const tfm::Graph tfm_graph = context.spec->build_tfm();
    const tfm::Graph widened_graph =
        ProductSearch::specification_graph(*context.spec);

    // One survivor end-to-end (search -> shrink -> persist); internally
    // sequential and seed-deterministic, so item results are a pure
    // function of (survivor, options) and --jobs cannot perturb them.
    const auto process = [&](std::size_t record_index) -> KillItem {
        KillItem item;
        item.record_index = record_index;
        item.mutant_id = records[record_index].mutant_id;
        const mutation::Mutant& mutant = *by_id.at(item.mutant_id);

        const SearchOutcome outcome = search.find_killer(mutant);
        item.status = outcome.status;
        item.stats = outcome.stats;
        item.widened = outcome.widened;
        if (outcome.status != SearchStatus::Verified) return item;

        item.reason = outcome.reason;
        item.model_only = outcome.model_only;
        item.candidate_calls = outcome.killer.calls.size();
        item.shrink = shrink_killer(context, options,
                                    outcome.widened ? widened_graph : tfm_graph,
                                    mutant, outcome.killer, outcome.reason);
        item.killer = item.shrink.minimized;
        if (!options.corpus_dir.empty()) {
            item.corpus_file = persist_killer(context, options, mutant, item);
        }
        return item;
    };

    std::vector<KillItem> items(survivor_indices.size());
    const std::size_t jobs =
        std::max<std::size_t>(1, std::min(options.jobs, items.size()));
    if (jobs <= 1) {
        for (std::size_t i = 0; i < survivor_indices.size(); ++i) {
            items[i] = process(survivor_indices[i]);
        }
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> workers;
        workers.reserve(jobs);
        for (std::size_t w = 0; w < jobs; ++w) {
            workers.emplace_back([&] {
                for (std::size_t i = next.fetch_add(1); i < items.size();
                     i = next.fetch_add(1)) {
                    items[i] = process(survivor_indices[i]);
                }
            });
        }
        for (std::thread& worker : workers) worker.join();
    }

    // Fold results back in survivor order: record updates and telemetry
    // are emitted here, post-hoc, so the stream never depends on which
    // worker finished first.
    for (KillItem& item : items) {
        {
            obs::JsonObject event;
            event.set("event", "kill-start").set("mutant", item.mutant_id);
            telemetry.emit(std::move(event));
        }
        if (item.status == SearchStatus::Verified) {
            obs::JsonObject candidate;
            candidate.set("event", "kill-candidate")
                .set("mutant", item.mutant_id)
                .set("calls", static_cast<std::uint64_t>(item.candidate_calls))
                .set("states",
                     static_cast<std::uint64_t>(item.stats.states_expanded))
                .set("widened", item.widened);
            telemetry.emit(std::move(candidate));

            obs::JsonObject verified;
            verified.set("event", "kill-verified")
                .set("mutant", item.mutant_id)
                .set("reason", oracle::to_string(item.reason))
                .set("calls",
                     static_cast<std::uint64_t>(item.killer.calls.size()))
                .set("shrink_steps",
                     static_cast<std::uint64_t>(item.shrink.steps));
            if (item.model_only) verified.set("model_only", true);
            if (!item.corpus_file.empty()) verified.set("corpus", item.corpus_file);
            telemetry.emit(std::move(verified));

            campaign::ItemRecord& record = records[item.record_index];
            record.fate = "killed";
            record.reason = oracle::to_string(item.reason);
            record.model_only = item.model_only;
            record.synthesized = true;
            ++run.killed_after;
            ++run.verified;
            options.obs.metrics.add("kill.verified");
        } else {
            obs::JsonObject gave_up;
            gave_up.set("event", "kill-gave-up")
                .set("mutant", item.mutant_id)
                .set("status", to_string(item.status))
                .set("states",
                     static_cast<std::uint64_t>(item.stats.states_expanded))
                .set("armed",
                     static_cast<std::uint64_t>(item.stats.armed_states));
            telemetry.emit(std::move(gave_up));
            options.obs.metrics.add("kill.gave_up");
        }
    }
    run.items = std::move(items);

    {
        obs::JsonObject event;
        event.set("event", "kill-run-end")
            .set("verified", static_cast<std::uint64_t>(run.verified))
            .set("killed_before", static_cast<std::uint64_t>(run.killed_before))
            .set("killed_after", static_cast<std::uint64_t>(run.killed_after))
            .set("score_before", support::percent(run.score_before()))
            .set("score_after", support::percent(run.score_after()));
        telemetry.emit(std::move(event));
    }
    return run;
}

void render_kill_report(std::ostream& os, const KillRun& run,
                        const std::string& class_name,
                        const KillOptions& options) {
    os << "kill: " << class_name << ", " << run.survivors << " survivor(s), seed "
       << options.seed << ", budget " << options.search.budget_states
       << " state(s), depth " << options.search.max_depth << "\n\n";
    for (const KillItem& item : run.items) {
        os << item.mutant_id << "  ";
        if (item.status == SearchStatus::Verified) {
            os << "killed  [" << oracle::to_string(item.reason) << "]";
            if (item.model_only) os << "  (model-only)";
            if (item.widened) os << "  (widened)";
            os << "  killer: " << item.killer.calls.size() << " call(s)";
            if (!item.corpus_file.empty()) os << "  corpus: " << item.corpus_file;
        } else {
            os << "gave-up  [" << to_string(item.status) << "]";
        }
        os << "\n";
    }
    if (!run.items.empty()) os << "\n";
    os << "raised by synthesis: " << run.verified << "\n"
       << "score: " << support::percent(run.score_before()) << " -> "
       << support::percent(run.score_after()) << "  (" << run.killed_after << "/"
       << run.total << " killed, " << run.equivalent
       << " presumed equivalent)\n";
}

}  // namespace stc::kill
