#include "stc/interclass/system_spec.h"

#include <set>

#include "stc/support/error.h"

namespace stc::interclass {

const RoleSpec* SystemSpec::find_role(const std::string& role) const {
    for (const auto& r : roles) {
        if (r.role == role) return &r;
    }
    return nullptr;
}

const tspec::ComponentSpec* SystemSpec::spec_of(const std::string& class_name) const {
    const auto it = class_specs.find(class_name);
    return it == class_specs.end() ? nullptr : &it->second;
}

const SystemNodeSpec* SystemSpec::find_node(const std::string& id) const {
    for (const auto& n : nodes) {
        if (n.id == id) return &n;
    }
    return nullptr;
}

std::string SystemSpec::role_providing(const std::string& class_name) const {
    for (const auto& r : roles) {
        if (r.class_name == class_name) return r.role;
    }
    return "";
}

std::vector<tspec::SpecDiagnostic> SystemSpec::validate() const {
    std::vector<tspec::SpecDiagnostic> out;
    if (component_name.empty()) out.push_back({"System", "component name is empty"});
    if (roles.empty()) out.push_back({"System", "no roles declared"});

    std::set<std::string> role_names;
    for (const auto& r : roles) {
        if (!role_names.insert(r.role).second) {
            out.push_back({r.role, "duplicate role name"});
        }
        const tspec::ComponentSpec* spec = spec_of(r.class_name);
        if (spec == nullptr) {
            out.push_back({r.role, "no embedded t-spec for class " + r.class_name});
            continue;
        }
        const tspec::MethodSpec* ctor = spec->find_method(r.constructor_id);
        if (ctor == nullptr || !ctor->is_constructor()) {
            out.push_back({r.role, "constructor id '" + r.constructor_id +
                                       "' is not a constructor of " + r.class_name});
        }
    }

    std::set<std::string> node_ids;
    bool has_start = false;
    for (const auto& n : nodes) {
        if (!node_ids.insert(n.id).second) out.push_back({n.id, "duplicate node id"});
        has_start = has_start || n.is_start;
        for (const auto& call : n.calls) {
            const RoleSpec* r = find_role(call.role);
            if (r == nullptr) {
                out.push_back({n.id, "call on unknown role '" + call.role + "'"});
                continue;
            }
            const tspec::ComponentSpec* spec = spec_of(r->class_name);
            if (spec == nullptr) continue;  // already reported above
            const tspec::MethodSpec* m = spec->find_method(call.method_id);
            if (m == nullptr) {
                out.push_back({n.id, "role '" + call.role + "' has no method id " +
                                         call.method_id});
            } else if (m->is_constructor() || m->is_destructor()) {
                out.push_back({n.id,
                               "system nodes must not call constructors/destructors "
                               "(role lifetimes are managed by the harness)"});
            }
        }
    }
    if (!nodes.empty() && !has_start) {
        out.push_back({"System", "no starting node declared"});
    }

    for (const auto& e : edges) {
        if (node_ids.count(e.from) == 0) out.push_back({e.from, "edge from unknown node"});
        if (node_ids.count(e.to) == 0) out.push_back({e.to, "edge to unknown node"});
    }
    return out;
}

void SystemSpec::ensure_valid() const {
    const auto problems = validate();
    if (problems.empty()) return;
    std::string msg = "system spec '" + component_name + "' is invalid:";
    for (const auto& p : problems) msg += "\n  [" + p.where + "] " + p.message;
    throw SpecError(msg);
}

tfm::Graph SystemSpec::build_tfm() const {
    ensure_valid();
    tfm::Graph g;
    for (const auto& n : nodes) {
        std::vector<std::string> method_ids;
        method_ids.reserve(n.calls.size());
        for (const auto& call : n.calls) {
            method_ids.push_back(call.role + "." + call.method_id);
        }
        g.add_node(tfm::Node{n.id, n.is_start, std::move(method_ids)});
    }
    for (const auto& e : edges) g.add_edge(e.from, e.to);
    return g;
}

SystemSpecBuilder::SystemSpecBuilder(std::string component_name) {
    spec_.component_name = std::move(component_name);
}

SystemSpecBuilder& SystemSpecBuilder::role(std::string role, std::string class_name,
                                           std::string constructor_id) {
    spec_.roles.push_back(
        RoleSpec{std::move(role), std::move(class_name), std::move(constructor_id)});
    return *this;
}

SystemSpecBuilder& SystemSpecBuilder::class_spec(tspec::ComponentSpec spec) {
    const std::string name = spec.class_name;
    spec_.class_specs.emplace(name, std::move(spec));
    return *this;
}

SystemSpecBuilder& SystemSpecBuilder::node(std::string id, bool is_start,
                                           std::vector<SystemCall> calls) {
    spec_.nodes.push_back(SystemNodeSpec{std::move(id), is_start, std::move(calls)});
    return *this;
}

SystemSpecBuilder& SystemSpecBuilder::edge(std::string from, std::string to) {
    spec_.edges.push_back(SystemEdgeSpec{std::move(from), std::move(to)});
    return *this;
}

SystemSpec SystemSpecBuilder::build() const {
    SystemSpec out = spec_;
    out.ensure_valid();
    return out;
}

SystemSpec SystemSpecBuilder::build_unchecked() const { return spec_; }

}  // namespace stc::interclass
