#include "stc/interclass/system_io.h"

#include <istream>
#include <ostream>

#include "stc/driver/wire_format.h"
#include "stc/support/error.h"
#include "stc/support/strings.h"

namespace stc::interclass {

namespace {

using driver::wire::decode;
using driver::wire::decode_value;
using driver::wire::encode;
using driver::wire::encode_value;

constexpr const char* kMagic = "concat-system-suite 1";

std::string encode_arg(const SystemArg& arg) {
    // Role references travel as "@role"; plain values use the typed
    // encoding (whose first character is never '@').
    if (arg.is_role_ref()) return "@" + encode(arg.role_ref);
    return encode_value(arg.value);
}

SystemArg decode_arg(const std::string& field, int lineno) {
    SystemArg out;
    if (!field.empty() && field.front() == '@') {
        out.role_ref = decode(field.substr(1));
        return out;
    }
    out.value = decode_value(field, lineno);
    return out;
}

void write_call(std::ostream& os, const char* tag, const SystemMethodCall& call) {
    os << tag << " " << encode(call.role) << "|" << call.method_id << "|"
       << encode(call.method_name);
    for (const auto& arg : call.arguments) os << "|" << encode_arg(arg);
    os << "\n";
}

SystemMethodCall read_call(const std::string& payload, int lineno) {
    const auto fields = support::split(payload, '|');
    if (fields.size() < 3) {
        throw Error("system suite line " + std::to_string(lineno) +
                    ": call needs at least 3 fields");
    }
    SystemMethodCall call;
    call.role = decode(fields[0]);
    call.method_id = fields[1];
    call.method_name = decode(fields[2]);
    for (std::size_t i = 3; i < fields.size(); ++i) {
        call.arguments.push_back(decode_arg(fields[i], lineno));
    }
    return call;
}

}  // namespace

void save_system_suite(std::ostream& os, const SystemTestSuite& suite) {
    os << kMagic << "\n";
    os << "component " << suite.component_name << "\n";
    os << "seed " << suite.seed << "\n";
    os << "model " << suite.model_nodes << " " << suite.model_links << " "
       << suite.transactions_enumerated << "\n";
    for (const SystemTestCase& tc : suite.cases) {
        os << "case " << tc.id << "|" << encode(tc.transaction_text) << "|";
        for (std::size_t i = 0; i < tc.transaction.path.size(); ++i) {
            if (i != 0) os << ",";
            os << tc.transaction.path[i];
        }
        os << "|" << (tc.needs_completion ? 1 : 0) << "\n";
        for (const auto& call : tc.setup) write_call(os, "setup", call);
        for (const auto& call : tc.body) write_call(os, "callx", call);
        os << "end\n";
    }
}

SystemTestSuite load_system_suite(std::istream& is) {
    SystemTestSuite suite;
    std::string line;
    int lineno = 0;

    auto next_line = [&]() -> bool {
        while (std::getline(is, line)) {
            ++lineno;
            if (!support::trim(line).empty()) return true;
        }
        return false;
    };
    auto fail = [&](const std::string& message) -> void {
        throw Error("system suite line " + std::to_string(lineno) + ": " + message);
    };

    if (!next_line() || line != kMagic) {
        throw Error("not a concat-system-suite file (bad magic)");
    }

    SystemTestCase* current = nullptr;
    while (next_line()) {
        if (support::starts_with(line, "component ")) {
            suite.component_name = line.substr(10);
        } else if (support::starts_with(line, "seed ")) {
            suite.seed = std::stoull(line.substr(5));
        } else if (support::starts_with(line, "model ")) {
            const auto fields = support::split(line.substr(6), ' ');
            if (fields.size() != 3) fail("model line needs 3 fields");
            suite.model_nodes = std::stoull(fields[0]);
            suite.model_links = std::stoull(fields[1]);
            suite.transactions_enumerated = std::stoull(fields[2]);
        } else if (support::starts_with(line, "case ")) {
            const auto fields = support::split(line.substr(5), '|');
            if (fields.size() != 4) fail("case line needs 4 fields");
            SystemTestCase tc;
            tc.id = fields[0];
            tc.transaction_text = decode(fields[1]);
            if (!fields[2].empty()) {
                for (const auto& index : support::split(fields[2], ',')) {
                    tc.transaction.path.push_back(std::stoull(index));
                }
            }
            tc.needs_completion = fields[3] == "1";
            suite.cases.push_back(std::move(tc));
            current = &suite.cases.back();
        } else if (support::starts_with(line, "setup ")) {
            if (current == nullptr) fail("setup outside a case");
            current->setup.push_back(read_call(line.substr(6), lineno));
        } else if (support::starts_with(line, "callx ")) {
            if (current == nullptr) fail("call outside a case");
            current->body.push_back(read_call(line.substr(6), lineno));
        } else if (line == "end") {
            current = nullptr;
        } else {
            fail("unrecognized record '" + line + "'");
        }
    }
    return suite;
}

}  // namespace stc::interclass
