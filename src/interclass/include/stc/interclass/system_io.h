// Persistence for interclass (system) test suites — the regression
// workflow of suite_io extended to multi-class components: role
// references serialize as "@role" and rebind to the live role objects on
// replay, so a frozen system suite reruns against a new release of the
// whole component.
#pragma once

#include <iosfwd>

#include "stc/interclass/system_driver.h"

namespace stc::interclass {

/// Write `suite` in the concat-system-suite text format.
void save_system_suite(std::ostream& os, const SystemTestSuite& suite);

/// Parse a suite previously written by save_system_suite.  Throws
/// stc::Error on malformed input.
[[nodiscard]] SystemTestSuite load_system_suite(std::istream& is);

}  // namespace stc::interclass
