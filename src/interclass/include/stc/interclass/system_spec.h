// Interclass testing — the paper's stated extension (§6): "we are also
// extending this approach for components having more than one class; so
// instead of method's interactions inside a class (intraclass testing),
// we focus on interactions between classes (interclass testing)."
//
// A multi-class component is described by a SystemSpec: a set of *roles*
// (named collaborating objects, each an instance of a self-testable
// class), and a system-level TFM whose nodes sequence method calls on
// those roles.  The TFM semantics carry over directly — §3.2 already
// notes the transaction-flow model "can be used for components having
// more than one object ... as it can show the sequencing of activities
// performed by several objects as well."
//
// Interclass interaction is expressed through parameters: a structured
// parameter whose class matches another role's class is bound to that
// role's live object (a role reference), so generated transactions
// exercise real cross-object calls.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "stc/tfm/graph.h"
#include "stc/tspec/model.h"

namespace stc::interclass {

/// One collaborating object of the component.
struct RoleSpec {
    std::string role;            ///< e.g. "wallet"
    std::string class_name;      ///< e.g. "Wallet"
    std::string constructor_id;  ///< method id of the constructor to use
};

/// One method invocation slot in a system TFM node: which role performs
/// which of its class's methods.
struct SystemCall {
    std::string role;
    std::string method_id;
};

struct SystemNodeSpec {
    std::string id;
    bool is_start = false;
    std::vector<SystemCall> calls;  ///< may be empty (e.g. a sink node)
};

struct SystemEdgeSpec {
    std::string from;
    std::string to;
};

/// The multi-class component specification.
class SystemSpec {
public:
    std::string component_name;
    std::vector<RoleSpec> roles;
    /// Embedded t-specs of the participating classes, keyed by class
    /// name.  Only the interface part is used (methods, domains); the
    /// test model lives at the system level.
    std::map<std::string, tspec::ComponentSpec> class_specs;
    std::vector<SystemNodeSpec> nodes;
    std::vector<SystemEdgeSpec> edges;

    [[nodiscard]] const RoleSpec* find_role(const std::string& role) const;
    [[nodiscard]] const tspec::ComponentSpec* spec_of(const std::string& class_name) const;
    [[nodiscard]] const SystemNodeSpec* find_node(const std::string& id) const;

    /// The first role whose class matches `class_name` ("" if none) —
    /// the binding rule for role-reference parameters.
    [[nodiscard]] std::string role_providing(const std::string& class_name) const;

    /// Semantic validation: roles resolve to class specs, constructor
    /// ids are constructors, node calls reference known roles/methods,
    /// edges reference known nodes, a start node exists.
    [[nodiscard]] std::vector<tspec::SpecDiagnostic> validate() const;
    void ensure_valid() const;

    /// System-level TFM.  Node method ids are encoded "role.method_id".
    [[nodiscard]] tfm::Graph build_tfm() const;
};

/// Fluent construction.
class SystemSpecBuilder {
public:
    explicit SystemSpecBuilder(std::string component_name);

    SystemSpecBuilder& role(std::string role, std::string class_name,
                            std::string constructor_id);
    SystemSpecBuilder& class_spec(tspec::ComponentSpec spec);
    SystemSpecBuilder& node(std::string id, bool is_start,
                            std::vector<SystemCall> calls);
    SystemSpecBuilder& edge(std::string from, std::string to);

    [[nodiscard]] SystemSpec build() const;             ///< validated
    [[nodiscard]] SystemSpec build_unchecked() const;

private:
    SystemSpec spec_;
};

}  // namespace stc::interclass
