// Generation and execution of interclass test suites.
//
// A system test case exercises one transaction of the system TFM: the
// harness constructs every role (in declaration order), applies the
// method calls along the path — checking each live role's class
// invariant around every call, per the Fig. 6 driver discipline — and
// destroys the roles in reverse order.  Structured parameters whose
// class matches another role are bound to that role's live object at
// execution time (role references); other structured parameters go
// through the tester's completions as usual.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stc/driver/generator.h"
#include "stc/driver/runner.h"
#include "stc/interclass/system_spec.h"
#include "stc/reflect/class_binding.h"

namespace stc::interclass {

/// One argument of a system call: either a concrete generated value or a
/// reference to a role's object (resolved at run time).
struct SystemArg {
    domain::Value value;
    std::string role_ref;  ///< non-empty: pass this role's object

    [[nodiscard]] bool is_role_ref() const noexcept { return !role_ref.empty(); }
    [[nodiscard]] std::string render() const;
};

struct SystemMethodCall {
    std::string role;
    std::string method_id;
    std::string method_name;
    std::vector<SystemArg> arguments;

    [[nodiscard]] std::string render() const;
};

struct SystemTestCase {
    std::string id;
    tfm::Transaction transaction;
    std::string transaction_text;
    /// Constructor call per role, in role-declaration order.
    std::vector<SystemMethodCall> setup;
    /// The transaction body.
    std::vector<SystemMethodCall> body;
    bool needs_completion = false;
};

struct SystemTestSuite {
    std::string component_name;
    std::uint64_t seed = 0;
    std::size_t model_nodes = 0;
    std::size_t model_links = 0;
    std::size_t transactions_enumerated = 0;
    std::vector<SystemTestCase> cases;

    [[nodiscard]] std::size_t size() const noexcept { return cases.size(); }
};

struct SystemGeneratorOptions {
    std::uint64_t seed = 20010701;
    tfm::EnumerationOptions enumeration;
    std::size_t cases_per_transaction = 1;
};

/// Generates system suites from a SystemSpec.
class SystemDriverGenerator {
public:
    explicit SystemDriverGenerator(SystemSpec spec,
                                   SystemGeneratorOptions options = {});

    SystemDriverGenerator& completions(const driver::CompletionRegistry* registry);

    [[nodiscard]] SystemTestSuite generate() const;

    [[nodiscard]] const SystemSpec& spec() const noexcept { return spec_; }

private:
    [[nodiscard]] SystemMethodCall synthesize(const RoleSpec& role,
                                              const tspec::MethodSpec& method,
                                              support::Pcg32& rng,
                                              bool* needs_completion) const;

    SystemSpec spec_;
    SystemGeneratorOptions options_;
    const driver::CompletionRegistry* completions_ = nullptr;
};

/// Executes system suites; verdict semantics match driver::TestRunner.
class SystemRunner {
public:
    SystemRunner(const reflect::Registry& registry, driver::RunnerOptions options = {});

    [[nodiscard]] driver::SuiteResult run(const SystemSpec& spec,
                                          const SystemTestSuite& suite) const;
    [[nodiscard]] driver::TestResult run_case(const SystemSpec& spec,
                                              const SystemTestCase& test_case) const;

private:
    const reflect::Registry& registry_;
    driver::RunnerOptions options_;
};

}  // namespace stc::interclass
