#include "stc/interclass/system_driver.h"

#include <map>
#include <sstream>

#include "stc/bit/assertions.h"
#include "stc/support/error.h"

namespace stc::interclass {

std::string SystemArg::render() const {
    if (is_role_ref()) return "@" + role_ref;
    return value.to_source();
}

std::string SystemMethodCall::render() const {
    std::string out = role + "." + method_name + "(";
    for (std::size_t i = 0; i < arguments.size(); ++i) {
        if (i != 0) out += ", ";
        out += arguments[i].render();
    }
    out += ")";
    return out;
}

SystemDriverGenerator::SystemDriverGenerator(SystemSpec spec,
                                             SystemGeneratorOptions options)
    : spec_(std::move(spec)), options_(options) {}

SystemDriverGenerator& SystemDriverGenerator::completions(
    const driver::CompletionRegistry* registry) {
    completions_ = registry;
    return *this;
}

SystemMethodCall SystemDriverGenerator::synthesize(const RoleSpec& role,
                                                   const tspec::MethodSpec& method,
                                                   support::Pcg32& rng,
                                                   bool* needs_completion) const {
    SystemMethodCall call;
    call.role = role.role;
    call.method_id = method.id;
    call.method_name = method.name;

    for (const tspec::TypedSlot& p : method.parameters) {
        SystemArg arg;
        if (p.domain) {
            arg.value = p.domain->sample(rng);
        } else {
            // Structured parameter: prefer a collaborating role of the
            // matching class (the interclass interaction), else the
            // tester's completion, else a pending placeholder.
            const std::string provider = spec_.role_providing(p.class_name);
            if (!provider.empty()) {
                arg.role_ref = provider;
            } else {
                const driver::CompletionRegistry::Completion* completion =
                    completions_ == nullptr ? nullptr
                                            : completions_->find(p.class_name);
                if (completion != nullptr && *completion) {
                    arg.value = (*completion)(rng);
                } else {
                    arg.value = domain::Value::make_pointer(nullptr, p.class_name);
                    *needs_completion = true;
                }
            }
        }
        call.arguments.push_back(std::move(arg));
    }
    return call;
}

SystemTestSuite SystemDriverGenerator::generate() const {
    spec_.ensure_valid();
    const tfm::Graph graph = spec_.build_tfm();

    SystemTestSuite suite;
    suite.component_name = spec_.component_name;
    suite.seed = options_.seed;
    suite.model_nodes = graph.node_count();
    suite.model_links = graph.edge_count();

    const auto transactions = graph.enumerate_transactions(options_.enumeration);
    suite.transactions_enumerated = transactions.size();

    support::Pcg32 rng(options_.seed);
    std::size_t next_id = 0;

    for (const tfm::Transaction& t : transactions) {
        for (std::size_t rep = 0; rep < options_.cases_per_transaction; ++rep) {
            SystemTestCase tc;
            tc.id = "STC" + std::to_string(next_id++);
            tc.transaction = t;
            tc.transaction_text = graph.describe(t);

            // Setup: one constructor call per role, declaration order.
            for (const RoleSpec& role : spec_.roles) {
                const tspec::ComponentSpec* cls = spec_.spec_of(role.class_name);
                const tspec::MethodSpec* ctor = cls->find_method(role.constructor_id);
                tc.setup.push_back(
                    synthesize(role, *ctor, rng, &tc.needs_completion));
            }

            // Body: the calls of the nodes along the path.
            for (tfm::NodeIndex node_index : t.path) {
                const SystemNodeSpec* node = spec_.find_node(graph.node(node_index).id);
                for (const SystemCall& sc : node->calls) {
                    const RoleSpec* role = spec_.find_role(sc.role);
                    const tspec::ComponentSpec* cls = spec_.spec_of(role->class_name);
                    const tspec::MethodSpec* method = cls->find_method(sc.method_id);
                    tc.body.push_back(
                        synthesize(*role, *method, rng, &tc.needs_completion));
                }
            }
            suite.cases.push_back(std::move(tc));
        }
    }
    return suite;
}

SystemRunner::SystemRunner(const reflect::Registry& registry,
                           driver::RunnerOptions options)
    : registry_(registry), options_(options) {}

namespace {

/// Live role objects for one test case; reverse-order teardown.
class RoleInstances {
public:
    explicit RoleInstances(const reflect::Registry& registry) : registry_(registry) {}

    ~RoleInstances() {
        for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
            try {
                registry_.at(it->second).destroy(objects_[it->first]);
            } catch (...) {
                // Best effort, as in the single-class runner.
            }
        }
    }

    RoleInstances(const RoleInstances&) = delete;
    RoleInstances& operator=(const RoleInstances&) = delete;

    void add(const std::string& role, const std::string& class_name, void* object) {
        objects_[role] = object;
        order_.emplace_back(role, class_name);
    }

    [[nodiscard]] void* object(const std::string& role) const {
        const auto it = objects_.find(role);
        if (it == objects_.end()) {
            throw ReflectError("no live object for role '" + role + "'");
        }
        return it->second;
    }

    /// Invariant of every live BIT role (Fig. 6 discipline, extended to
    /// all collaborators).
    void check_invariants(const reflect::Registry& registry) const {
        for (const auto& [role, class_name] : order_) {
            bit::BuiltInTest* view = registry.at(class_name).as_bit(objects_.at(role));
            if (view != nullptr) view->InvariantTest();
        }
    }

    /// Concatenated Reporter output of all roles.
    [[nodiscard]] std::string report(const reflect::Registry& registry) const {
        std::string out;
        for (const auto& [role, class_name] : order_) {
            bit::BuiltInTest* view = registry.at(class_name).as_bit(objects_.at(role));
            if (view == nullptr) continue;
            try {
                out += role + ": " + view->report() + "\n";
            } catch (...) {
                out += role + ": <Reporter failed>\n";
            }
        }
        return out;
    }

private:
    const reflect::Registry& registry_;
    std::map<std::string, void*> objects_;
    std::vector<std::pair<std::string, std::string>> order_;
};

reflect::Args resolve_args(const std::vector<SystemArg>& args,
                           const RoleInstances& roles) {
    reflect::Args out;
    out.reserve(args.size());
    for (const SystemArg& a : args) {
        if (a.is_role_ref()) {
            out.push_back(domain::Value::make_pointer(roles.object(a.role_ref),
                                                      a.role_ref));
        } else {
            out.push_back(a.value);
        }
    }
    return out;
}

}  // namespace

driver::TestResult SystemRunner::run_case(const SystemSpec& spec,
                                          const SystemTestCase& test_case) const {
    driver::TestResult result;
    result.case_id = test_case.id;

    const bit::TestModeGuard test_mode;
    std::ostringstream log;
    std::ostringstream observations;
    std::string state_report;
    std::string current_method = "<none>";

    auto record_failure = [&](driver::Verdict verdict, const std::string& message) {
        result.verdict = verdict;
        result.message = message;
        result.failed_method = current_method;
        log << "TestCase " << test_case.id << "\n"
            << message << "\n"
            << "Method called: " << current_method << "\n";
    };

    RoleInstances roles(registry_);
    try {
        // Setup: construct every role.
        for (std::size_t i = 0; i < test_case.setup.size(); ++i) {
            const SystemMethodCall& ctor = test_case.setup[i];
            const RoleSpec& role_spec = *spec.find_role(ctor.role);
            current_method = ctor.render();
            const reflect::ClassBinding& binding = registry_.at(role_spec.class_name);
            roles.add(ctor.role, role_spec.class_name,
                      binding.construct(resolve_args(ctor.arguments, roles)));
        }

        // Body.
        for (const SystemMethodCall& call : test_case.body) {
            const RoleSpec& role_spec = *spec.find_role(call.role);
            const reflect::ClassBinding& binding = registry_.at(role_spec.class_name);
            current_method = call.render();

            if (options_.check_invariants) roles.check_invariants(registry_);
            const domain::Value rv = binding.invoke(
                roles.object(call.role), call.method_name,
                resolve_args(call.arguments, roles));
            if (options_.check_invariants) roles.check_invariants(registry_);

            if (!rv.is_empty()) {
                observations << call.role << "." << call.method_name << " -> "
                             << (rv.kind() == domain::ValueKind::Pointer
                                     ? (rv.as_pointer() == nullptr ? "<null>"
                                                                   : "<object>")
                                     : rv.to_display())
                             << "\n";
            }
        }

        if (options_.capture_reports) state_report = roles.report(registry_);
        log << "TestCase " << test_case.id << " OK!\n";
    } catch (const bit::AssertionViolation& av) {
        result.assertion_kind = av.assertion_kind();
        record_failure(driver::Verdict::AssertionViolation, av.what());
        if (options_.capture_reports) state_report = roles.report(registry_);
    } catch (const CrashSignal& cs) {
        record_failure(driver::Verdict::Crash, cs.what());
    } catch (const ReflectError& re) {
        record_failure(driver::Verdict::SetupError, re.what());
    } catch (const std::exception& e) {
        record_failure(driver::Verdict::UncaughtException, e.what());
        if (options_.capture_reports) state_report = roles.report(registry_);
    }

    result.report = observations.str() + state_report;
    result.log = log.str();
    return result;
}

driver::SuiteResult SystemRunner::run(const SystemSpec& spec,
                                      const SystemTestSuite& suite) const {
    driver::SuiteResult out;
    out.results.reserve(suite.cases.size());
    std::ostringstream log;
    for (const SystemTestCase& tc : suite.cases) {
        driver::TestResult r = run_case(spec, tc);
        log << r.log;
        if (!r.report.empty()) log << r.report << "\n";
        log << "\n";
        out.results.push_back(std::move(r));
    }
    out.log = log.str();
    return out;
}

}  // namespace stc::interclass
