#include "stc/oracle/oracle.h"

namespace stc::oracle {

GoldenRecord GoldenRecord::from(const driver::SuiteResult& baseline) {
    GoldenRecord out;
    out.entries_.reserve(baseline.results.size());
    for (const auto& r : baseline.results) {
        out.entries_.push_back(GoldenEntry{r.case_id, r.verdict, r.report,
                                           r.message, r.model_divergence});
    }
    return out;
}

const GoldenEntry* GoldenRecord::find(const std::string& case_id) const {
    for (const auto& e : entries_) {
        if (e.case_id == case_id) return &e;
    }
    return nullptr;
}

bool GoldenRecord::all_passed() const noexcept {
    for (const auto& e : entries_) {
        if (e.verdict != driver::Verdict::Pass) return false;
    }
    return true;
}

const char* to_string(KillReason reason) noexcept {
    switch (reason) {
        case KillReason::None: return "alive";
        case KillReason::Crash: return "crash";
        case KillReason::Assertion: return "assertion";
        case KillReason::IllegalQuiescence: return "illegal-quiescence";
        case KillReason::ModelDivergence: return "model-divergence";
        case KillReason::OutputDiff: return "output-diff";
        case KillReason::ManualOracle: return "manual-oracle";
    }
    return "?";
}

std::optional<KillReason> kill_reason_from_string(std::string_view text) noexcept {
    for (const KillReason reason : kAllKillReasons) {
        if (text == to_string(reason)) return reason;
    }
    return std::nullopt;
}

KillReason classify(const GoldenEntry& golden, const driver::TestResult& observed,
                    const OracleConfig& config, const ManualPredicate& manual) {
    using driver::Verdict;

    // (i) the program crashed while running the test cases.
    if (config.use_crashes && observed.verdict == Verdict::Crash &&
        golden.verdict != Verdict::Crash) {
        return KillReason::Crash;
    }

    // (ii) an assertion violation that the original program did not raise.
    if (config.use_assertions && observed.verdict == Verdict::AssertionViolation &&
        golden.verdict != Verdict::AssertionViolation) {
        return KillReason::Assertion;
    }

    // (ii'') ioco illegal quiescence: an output obligation was silently
    // absorbed while the original emitted.  Like an assertion it fires
    // inside the (assembly-level) built-in test, but the signal is the
    // *absence* of an output, so it ranks just below a violated contract.
    if (config.use_quiescence &&
        observed.verdict == Verdict::IllegalQuiescence &&
        golden.verdict != Verdict::IllegalQuiescence) {
        return KillReason::IllegalQuiescence;
    }

    // (ii') the run diverged from the lockstep reference model while the
    // original conformed — the differential channel (stc::model).
    if (config.use_model && !observed.model_divergence.empty() &&
        golden.model_divergence.empty()) {
        return KillReason::ModelDivergence;
    }

    // (iii) the output of the finished program differs from the original's.
    if (config.use_output_diff) {
        if (observed.verdict != golden.verdict || observed.report != golden.report) {
            return KillReason::OutputDiff;
        }
    }

    // Complementary manually derived oracle over the observable state.
    if (manual && observed.verdict == Verdict::Pass &&
        !manual(observed.case_id, observed.report)) {
        return KillReason::ManualOracle;
    }

    return KillReason::None;
}

namespace {

/// Kill-reason precedence: Crash > Assertion > IllegalQuiescence >
/// ModelDivergence > OutputDiff > ManualOracle.  The differential
/// channel sits between the paper's conditions (ii) and (iii): stronger
/// than a bare output difference (it pinpoints the first wrong call),
/// weaker than an embedded assertion (which fires inside the component
/// itself).  Illegal quiescence sits directly below Assertion: it also
/// fires inside a built-in test, but detects a *missing* output rather
/// than a violated predicate.
int strength(KillReason r) noexcept {
    switch (r) {
        case KillReason::Crash: return 6;
        case KillReason::Assertion: return 5;
        case KillReason::IllegalQuiescence: return 4;
        case KillReason::ModelDivergence: return 3;
        case KillReason::OutputDiff: return 2;
        case KillReason::ManualOracle: return 1;
        case KillReason::None: return 0;
    }
    return 0;
}

}  // namespace

KillReason classify_suite(const GoldenRecord& golden,
                          const driver::SuiteResult& observed,
                          const OracleConfig& config, const ManualPredicate& manual,
                          const obs::Context& obs) {
    const obs::SpanScope span(obs.tracer, "oracle-compare", "classify-suite");
    KillReason best = KillReason::None;
    for (const auto& result : observed.results) {
        const GoldenEntry* entry = golden.find(result.case_id);
        if (entry == nullptr) continue;  // new case: nothing to compare against
        const KillReason r = classify(*entry, result, config, manual);
        if (strength(r) > strength(best)) best = r;
        if (best == KillReason::Crash) break;  // cannot get stronger
    }
    if (obs.metrics.enabled()) {
        obs.metrics.add("oracle.suite_compares");
        obs.metrics.add(std::string("oracle.kill.") + to_string(best));
    }
    return best;
}

DifferentialKill classify_suite_differential(const GoldenRecord& golden,
                                             const driver::SuiteResult& observed,
                                             const OracleConfig& config,
                                             const ManualPredicate& manual,
                                             const obs::Context& obs) {
    const obs::SpanScope span(obs.tracer, "oracle-compare",
                              "classify-suite-differential");
    OracleConfig without = config;
    without.use_model = false;

    DifferentialKill out;
    for (const auto& result : observed.results) {
        const GoldenEntry* entry = golden.find(result.case_id);
        if (entry == nullptr) continue;
        const KillReason with = classify(*entry, result, config, manual);
        const KillReason sans = classify(*entry, result, without, manual);
        if (strength(with) > strength(out.with_model)) out.with_model = with;
        if (strength(sans) > strength(out.without_model)) out.without_model = sans;
        if (out.with_model == KillReason::Crash &&
            out.without_model == KillReason::Crash) {
            break;  // neither leg can get stronger
        }
    }
    if (obs.metrics.enabled()) {
        obs.metrics.add("oracle.suite_compares");
        obs.metrics.add(std::string("oracle.kill.") + to_string(out.with_model));
        if (out.model_only()) obs.metrics.add("oracle.kill.model_only");
    }
    return out;
}

}  // namespace stc::oracle
