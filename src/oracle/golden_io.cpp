#include "stc/oracle/golden_io.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "stc/support/strings.h"

namespace stc::oracle {

namespace {

constexpr const char* kMagic = "concat-golden 1";

std::string encode(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '%' || c == '|' || c == '\n' || c == '\r') {
            char buf[8];
            std::snprintf(buf, sizeof buf, "%%%02x", static_cast<unsigned char>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string decode(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '%' && i + 2 < s.size()) {
            out += static_cast<char>(std::stoi(s.substr(i + 1, 2), nullptr, 16));
            i += 2;
        } else {
            out += s[i];
        }
    }
    return out;
}

driver::Verdict parse_verdict(const std::string& word, int lineno) {
    for (const driver::Verdict v : driver::kAllVerdicts) {
        if (word == to_string(v)) return v;
    }
    throw Error("golden line " + std::to_string(lineno) + ": unknown verdict '" +
                word + "'");
}

}  // namespace

void save_golden(std::ostream& os, const GoldenRecord& golden) {
    os << kMagic << "\n";
    for (const GoldenEntry& e : golden.entries()) {
        os << e.case_id << "|" << to_string(e.verdict) << "|" << encode(e.report)
           << "|" << encode(e.message) << "\n";
    }
}

GoldenRecord load_golden(std::istream& is) {
    std::string line;
    int lineno = 0;
    if (!std::getline(is, line) || line != kMagic) {
        throw Error("not a concat-golden file (bad magic)");
    }
    ++lineno;

    driver::SuiteResult synthetic;
    while (std::getline(is, line)) {
        ++lineno;
        if (support::trim(line).empty()) continue;
        const auto fields = support::split(line, '|');
        if (fields.size() != 4) {
            throw Error("golden line " + std::to_string(lineno) +
                        ": expected 4 '|' separated fields");
        }
        driver::TestResult r;
        r.case_id = fields[0];
        r.verdict = parse_verdict(fields[1], lineno);
        r.report = decode(fields[2]);
        r.message = decode(fields[3]);
        synthetic.results.push_back(std::move(r));
    }
    return GoldenRecord::from(synthetic);
}

std::string RegressionReport::summary() const {
    std::ostringstream os;
    os << "regression check: " << cases_compared << " case(s) compared, "
       << findings.size() << " divergence(s), " << cases_missing
       << " missing\n";
    for (const auto& f : findings) {
        os << "  " << f.case_id << ": " << to_string(f.reason) << " (expected "
           << to_string(f.expected) << ", observed " << to_string(f.observed) << ")";
        if (!f.detail.empty()) os << " — " << f.detail;
        os << "\n";
    }
    return os.str();
}

RegressionReport compare_against_golden(const GoldenRecord& golden,
                                        const driver::SuiteResult& observed,
                                        const OracleConfig& config) {
    RegressionReport out;
    for (const GoldenEntry& entry : golden.entries()) {
        const driver::TestResult* result = nullptr;
        for (const auto& r : observed.results) {
            if (r.case_id == entry.case_id) {
                result = &r;
                break;
            }
        }
        if (result == nullptr) {
            ++out.cases_missing;
            continue;
        }
        ++out.cases_compared;

        const KillReason reason = classify(entry, *result, config);
        if (reason == KillReason::None) continue;

        RegressionFinding finding;
        finding.case_id = entry.case_id;
        finding.reason = reason;
        finding.expected = entry.verdict;
        finding.observed = result->verdict;
        if (!result->failed_method.empty()) {
            finding.detail = "method: " + result->failed_method;
        } else if (result->report != entry.report) {
            finding.detail = "observable state differs";
        }
        out.findings.push_back(std::move(finding));
    }
    return out;
}

}  // namespace stc::oracle
