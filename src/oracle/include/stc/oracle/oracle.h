// Oracles — deciding whether an observed run differs from the expected
// behaviour.
//
// The paper uses assertions as a *partial* oracle, complemented by
// manually derived oracles and, for the mutation experiments (§4), a
// comparison of program outputs against the original program's outputs
// "validated by hand before experiments began".  We model the latter as
// a GoldenRecord captured from a baseline run; kill classification then
// mirrors the paper's three conditions:
//   (i)   the program crashed while running the test cases,
//   (ii)  an exception was raised due to assertion violation (and the
//         original program did not raise one), or
//   (iii) the output differs from the original program's output.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stc/driver/runner.h"
#include "stc/obs/context.h"

namespace stc::oracle {

/// Expected behaviour of one test case, captured from the original
/// (unmutated) component.
struct GoldenEntry {
    std::string case_id;
    driver::Verdict verdict = driver::Verdict::Pass;
    std::string report;   ///< Reporter output (observable object state)
    std::string message;  ///< failure message, if the baseline itself failed
    /// Reference-model divergence recorded by the baseline run, when a
    /// lockstep model was attached (normally empty: the unmutated
    /// component conforms).  Lets the differential channel require a
    /// divergence the original did NOT show, mirroring condition (ii).
    std::string model_divergence;
};

/// Baseline behaviour of a whole suite.
class GoldenRecord {
public:
    GoldenRecord() = default;

    /// Capture from a baseline SuiteResult.
    static GoldenRecord from(const driver::SuiteResult& baseline);

    [[nodiscard]] const GoldenEntry* find(const std::string& case_id) const;
    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
    [[nodiscard]] const std::vector<GoldenEntry>& entries() const noexcept {
        return entries_;
    }

    /// True when the baseline is clean (every case passed) — the paper's
    /// precondition for the mutation experiments.
    [[nodiscard]] bool all_passed() const noexcept;

private:
    std::vector<GoldenEntry> entries_;
};

/// Why a difference was detected (also: why a mutant was killed).
enum class KillReason {
    None,
    Crash,
    Assertion,
    IllegalQuiescence,  ///< ioco: an output obligation was silently absorbed
                        ///< (assembly-level quiescence BIT, stc::assembly)
    ModelDivergence,    ///< lockstep reference model disagreed (stc::model)
    OutputDiff,
    ManualOracle,
};

/// All kill reasons, for exhaustive iteration (round-trip tests,
/// reporters that must render zero-count rows rather than silently
/// dropping a kind).
inline constexpr KillReason kAllKillReasons[] = {
    KillReason::None,          KillReason::Crash,
    KillReason::Assertion,     KillReason::IllegalQuiescence,
    KillReason::ModelDivergence, KillReason::OutputDiff,
    KillReason::ManualOracle,
};

[[nodiscard]] const char* to_string(KillReason reason) noexcept;

/// Inverse of to_string; std::nullopt for unknown text (campaign
/// result-store rehydration).
[[nodiscard]] std::optional<KillReason> kill_reason_from_string(
    std::string_view text) noexcept;

/// Which detection channels are active.  The ablation bench toggles
/// these to reproduce the paper's observation that assertions alone are
/// not an effective oracle (they contributed 59 of 652 kills).
struct OracleConfig {
    bool use_crashes = true;
    bool use_assertions = true;
    /// ioco quiescence channel: an observed Verdict::IllegalQuiescence
    /// the baseline did not show kills with KillReason::IllegalQuiescence.
    /// Vacuous outside assembly-level testing (single-class components
    /// never raise the quiescence BIT).
    bool use_quiescence = true;
    bool use_output_diff = true;
    /// Differential channel: a run whose TestResult::model_divergence is
    /// non-empty while the golden baseline's is empty kills with
    /// KillReason::ModelDivergence.  On by default but vacuous unless a
    /// lockstep model was attached to the runner (without one the
    /// divergence strings are always empty).  Toggled off for the
    /// "without the model" leg of the oracle-strength comparison.
    bool use_model = true;
};

/// A manually derived oracle (paper §3.3: "manually derived oracles are
/// also used in complement"): inspects the observed report and returns
/// false when the state is wrong even though no assertion fired.
using ManualPredicate =
    std::function<bool(const std::string& case_id, const std::string& report)>;

/// Compare one observed result against its golden entry.
[[nodiscard]] KillReason classify(const GoldenEntry& golden,
                                  const driver::TestResult& observed,
                                  const OracleConfig& config = {},
                                  const ManualPredicate& manual = {});

/// Compare a whole suite run; returns the first (strongest) kill reason
/// across cases, in order Crash > Assertion > IllegalQuiescence >
/// ModelDivergence > OutputDiff > ManualOracle.
/// The observability context, when enabled, records an "oracle-compare"
/// span plus oracle.suite_compares / oracle.kill.<reason> counters.
[[nodiscard]] KillReason classify_suite(const GoldenRecord& golden,
                                        const driver::SuiteResult& observed,
                                        const OracleConfig& config = {},
                                        const ManualPredicate& manual = {},
                                        const obs::Context& obs = {});

/// One observed run, classified twice: once with the model channel and
/// once without it, over the SAME SuiteResult (classification is a pure
/// function of the observation, so no second execution is needed).
/// `model_only` is the oracle-strength signal of the paper-style
/// Table 2 comparison: the run was killed WITH the reference model but
/// would have survived the assertion/crash/output oracle alone.
struct DifferentialKill {
    KillReason with_model = KillReason::None;
    KillReason without_model = KillReason::None;

    [[nodiscard]] bool model_only() const noexcept {
        return with_model != KillReason::None &&
               without_model == KillReason::None;
    }
};

/// Classify `observed` with `config` as given (model channel per
/// config.use_model) and again with use_model forced off.
[[nodiscard]] DifferentialKill classify_suite_differential(
    const GoldenRecord& golden, const driver::SuiteResult& observed,
    const OracleConfig& config = {}, const ManualPredicate& manual = {},
    const obs::Context& obs = {});

}  // namespace stc::oracle
