// Golden-record persistence and the regression workflow.
//
// The paper's Table 3 scenario — "an application reuses components from
// a commercial library, and a new release of the library substitutes the
// old one" — is operationalized here: a consumer freezes the suite
// (stc::driver::save_suite) and the validated baseline behaviour
// (save_golden) of release N, then replays both against release N+1.
// Any divergence is reported per test case with its kill-style reason.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stc/oracle/oracle.h"

namespace stc::oracle {

/// Write a golden record in the line-oriented concat-golden format.
void save_golden(std::ostream& os, const GoldenRecord& golden);

/// Parse a record previously written by save_golden.  Throws stc::Error
/// on malformed input.
[[nodiscard]] GoldenRecord load_golden(std::istream& is);

/// One behavioural difference between the frozen baseline and a new run.
struct RegressionFinding {
    std::string case_id;
    KillReason reason = KillReason::None;   ///< what kind of divergence
    driver::Verdict expected = driver::Verdict::Pass;
    driver::Verdict observed = driver::Verdict::Pass;
    std::string detail;                     ///< failing method / report diff hint
};

/// Replay verdict for a whole suite against a frozen golden record.
struct RegressionReport {
    std::vector<RegressionFinding> findings;
    std::size_t cases_compared = 0;
    std::size_t cases_missing = 0;  ///< golden entries with no observed result

    [[nodiscard]] bool clean() const noexcept {
        return findings.empty() && cases_missing == 0;
    }
    [[nodiscard]] std::string summary() const;
};

/// Compare a rerun against the frozen baseline, case by case.
[[nodiscard]] RegressionReport compare_against_golden(
    const GoldenRecord& golden, const driver::SuiteResult& observed,
    const OracleConfig& config = {});

}  // namespace stc::oracle
