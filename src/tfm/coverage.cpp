#include "stc/tfm/coverage.h"

#include <set>
#include <utility>

namespace stc::tfm {

namespace {

using EdgeKey = std::pair<NodeIndex, NodeIndex>;

std::set<EdgeKey> edges_of(const Transaction& t) {
    std::set<EdgeKey> out;
    for (std::size_t i = 0; i + 1 < t.path.size(); ++i) {
        out.insert({t.path[i], t.path[i + 1]});
    }
    return out;
}

}  // namespace

CoverageReport measure_coverage(const Graph& g,
                                const std::vector<Transaction>& transactions) {
    std::set<NodeIndex> nodes;
    std::set<EdgeKey> edges;
    for (const Transaction& t : transactions) {
        nodes.insert(t.path.begin(), t.path.end());
        const auto te = edges_of(t);
        edges.insert(te.begin(), te.end());
    }

    std::set<EdgeKey> all_edges;
    for (const Edge& e : g.edges()) all_edges.insert({e.from, e.to});

    CoverageReport report;
    report.nodes_total = g.node_count();
    report.nodes_covered = nodes.size();
    report.edges_total = all_edges.size();
    report.edges_covered = edges.size();
    return report;
}

const char* to_string(Criterion c) noexcept {
    switch (c) {
        case Criterion::AllTransactions: return "all-transactions";
        case Criterion::AllNodes: return "all-nodes";
        case Criterion::AllEdges: return "all-links";
    }
    return "?";
}

std::vector<std::size_t> select_transactions(
    [[maybe_unused]] const Graph& g, const std::vector<Transaction>& transactions,
    Criterion c) {
    std::vector<std::size_t> out;
    if (c == Criterion::AllTransactions) {
        out.resize(transactions.size());
        for (std::size_t i = 0; i < out.size(); ++i) out[i] = i;
        return out;
    }

    // Greedy set cover over nodes or edges.  The universe is restricted to
    // items actually touched by some transaction, so the loop terminates
    // even when the graph has unreachable parts.
    if (c == Criterion::AllNodes) {
        std::set<NodeIndex> universe;
        std::vector<std::set<NodeIndex>> item_sets(transactions.size());
        for (std::size_t i = 0; i < transactions.size(); ++i) {
            item_sets[i].insert(transactions[i].path.begin(), transactions[i].path.end());
            universe.insert(item_sets[i].begin(), item_sets[i].end());
        }
        std::set<NodeIndex> covered;
        while (covered.size() < universe.size()) {
            std::size_t best = transactions.size();
            std::size_t best_gain = 0;
            for (std::size_t i = 0; i < transactions.size(); ++i) {
                std::size_t gain = 0;
                for (NodeIndex n : item_sets[i]) gain += covered.count(n) == 0 ? 1 : 0;
                if (gain > best_gain) {
                    best_gain = gain;
                    best = i;
                }
            }
            if (best == transactions.size()) break;
            covered.insert(item_sets[best].begin(), item_sets[best].end());
            out.push_back(best);
        }
        return out;
    }

    // AllEdges
    std::set<EdgeKey> universe;
    std::vector<std::set<EdgeKey>> item_sets(transactions.size());
    for (std::size_t i = 0; i < transactions.size(); ++i) {
        item_sets[i] = edges_of(transactions[i]);
        universe.insert(item_sets[i].begin(), item_sets[i].end());
    }
    std::set<EdgeKey> covered;
    while (covered.size() < universe.size()) {
        std::size_t best = transactions.size();
        std::size_t best_gain = 0;
        for (std::size_t i = 0; i < transactions.size(); ++i) {
            std::size_t gain = 0;
            for (const EdgeKey& e : item_sets[i]) gain += covered.count(e) == 0 ? 1 : 0;
            if (gain > best_gain) {
                best_gain = gain;
                best = i;
            }
        }
        if (best == transactions.size()) break;
        covered.insert(item_sets[best].begin(), item_sets[best].end());
        out.push_back(best);
    }
    return out;
    // Note: single-node transactions contribute no edges; a TFM whose only
    // transaction is birth==death is edge-covered vacuously.
}

}  // namespace stc::tfm
