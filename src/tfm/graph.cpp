#include "stc/tfm/graph.h"

#include <algorithm>
#include <deque>
#include <set>

#include "stc/support/contracts.h"
#include "stc/support/error.h"

namespace stc::tfm {

const char* to_string(DiagnosticKind kind) noexcept {
    switch (kind) {
        case DiagnosticKind::NoBirthNode: return "no-birth-node";
        case DiagnosticKind::NoDeathNode: return "no-death-node";
        case DiagnosticKind::UnreachableNode: return "unreachable-node";
        case DiagnosticKind::DeadEndMismatch: return "cannot-reach-death";
        case DiagnosticKind::DuplicateEdge: return "duplicate-edge";
        case DiagnosticKind::SelfLoopOnBirth: return "self-loop-on-birth";
    }
    return "?";
}

NodeIndex Graph::add_node(Node node) {
    if (node.id.empty()) throw SpecError("TFM node with empty id");
    if (find_node(node.id)) throw SpecError("duplicate TFM node id: " + node.id);
    nodes_.push_back(std::move(node));
    adjacency_.emplace_back();
    in_degree_.push_back(0);
    return nodes_.size() - 1;
}

void Graph::add_edge(const std::string& from_id, const std::string& to_id) {
    const auto from = find_node(from_id);
    const auto to = find_node(to_id);
    if (!from) throw SpecError("TFM edge from unknown node: " + from_id);
    if (!to) throw SpecError("TFM edge to unknown node: " + to_id);
    add_edge(*from, *to);
}

void Graph::add_edge(NodeIndex from, NodeIndex to) {
    STC_EXPECTS(from < nodes_.size() && to < nodes_.size());
    edges_.push_back(Edge{from, to});
    adjacency_[from].push_back(to);
    ++in_degree_[to];
}

const Node& Graph::node(NodeIndex i) const {
    STC_EXPECTS(i < nodes_.size());
    return nodes_[i];
}

std::optional<NodeIndex> Graph::find_node(const std::string& id) const {
    for (NodeIndex i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].id == id) return i;
    }
    return std::nullopt;
}

const std::vector<NodeIndex>& Graph::successors(NodeIndex i) const {
    STC_EXPECTS(i < adjacency_.size());
    return adjacency_[i];
}

std::size_t Graph::out_degree(NodeIndex i) const { return successors(i).size(); }

std::size_t Graph::in_degree(NodeIndex i) const {
    STC_EXPECTS(i < in_degree_.size());
    return in_degree_[i];
}

bool Graph::has_edge(NodeIndex from, NodeIndex to) const {
    const auto& next = successors(from);
    return std::find(next.begin(), next.end(), to) != next.end();
}

bool Graph::is_valid_transaction(const std::vector<NodeIndex>& path) const {
    if (path.empty()) return false;
    if (path.front() >= nodes_.size() || !nodes_[path.front()].is_birth) {
        return false;
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (path[i] >= nodes_.size() || path[i + 1] >= nodes_.size()) return false;
        if (!has_edge(path[i], path[i + 1])) return false;
    }
    return is_death(path.back());
}

std::vector<std::optional<NodeIndex>> Graph::next_hop_to_death() const {
    // Multi-source BFS from all death nodes over reversed edges; the
    // recorded hop is the *forward* successor that shrinks the distance.
    std::vector<std::vector<NodeIndex>> reverse(nodes_.size());
    for (const Edge& e : edges_) reverse[e.to].push_back(e.from);

    std::vector<std::optional<NodeIndex>> hop(nodes_.size());
    std::vector<bool> seen(nodes_.size(), false);
    std::deque<NodeIndex> work;
    for (NodeIndex d : death_nodes()) {
        seen[d] = true;
        work.push_back(d);
    }
    while (!work.empty()) {
        const NodeIndex n = work.front();
        work.pop_front();
        for (NodeIndex p : reverse[n]) {
            if (seen[p]) continue;
            seen[p] = true;
            hop[p] = n;
            work.push_back(p);
        }
    }
    return hop;
}

std::vector<NodeIndex> Graph::birth_nodes() const {
    std::vector<NodeIndex> out;
    for (NodeIndex i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i].is_birth) out.push_back(i);
    }
    return out;
}

std::vector<NodeIndex> Graph::death_nodes() const {
    std::vector<NodeIndex> out;
    for (NodeIndex i = 0; i < nodes_.size(); ++i) {
        if (is_death(i)) out.push_back(i);
    }
    return out;
}

std::vector<bool> Graph::reachable_from_birth() const {
    std::vector<bool> seen(nodes_.size(), false);
    std::deque<NodeIndex> work;
    for (NodeIndex b : birth_nodes()) {
        seen[b] = true;
        work.push_back(b);
    }
    while (!work.empty()) {
        const NodeIndex n = work.front();
        work.pop_front();
        for (NodeIndex s : adjacency_[n]) {
            if (!seen[s]) {
                seen[s] = true;
                work.push_back(s);
            }
        }
    }
    return seen;
}

std::vector<bool> Graph::can_reach_death() const {
    // Reverse adjacency walk from all death nodes.
    std::vector<std::vector<NodeIndex>> reverse(nodes_.size());
    for (const Edge& e : edges_) reverse[e.to].push_back(e.from);

    std::vector<bool> seen(nodes_.size(), false);
    std::deque<NodeIndex> work;
    for (NodeIndex d : death_nodes()) {
        seen[d] = true;
        work.push_back(d);
    }
    while (!work.empty()) {
        const NodeIndex n = work.front();
        work.pop_front();
        for (NodeIndex p : reverse[n]) {
            if (!seen[p]) {
                seen[p] = true;
                work.push_back(p);
            }
        }
    }
    return seen;
}

std::vector<Diagnostic> Graph::diagnose() const {
    std::vector<Diagnostic> out;
    if (birth_nodes().empty()) {
        out.push_back({DiagnosticKind::NoBirthNode, "",
                       "mark at least one node as a starting node"});
    }
    if (death_nodes().empty() && !nodes_.empty()) {
        out.push_back({DiagnosticKind::NoDeathNode, "",
                       "every node has outgoing edges; objects are never destroyed"});
    }

    const auto forward = reachable_from_birth();
    const auto backward = can_reach_death();
    for (NodeIndex i = 0; i < nodes_.size(); ++i) {
        if (!forward[i]) {
            out.push_back({DiagnosticKind::UnreachableNode, nodes_[i].id,
                           "not reachable from any birth node"});
        } else if (!backward[i]) {
            out.push_back({DiagnosticKind::DeadEndMismatch, nodes_[i].id,
                           "no death node reachable; transactions entering here "
                           "cannot complete"});
        }
        if (nodes_[i].is_birth) {
            for (NodeIndex s : adjacency_[i]) {
                if (s == i) {
                    out.push_back({DiagnosticKind::SelfLoopOnBirth, nodes_[i].id,
                                   "birth node loops to itself"});
                }
            }
        }
    }

    std::set<std::pair<NodeIndex, NodeIndex>> seen_edges;
    for (const Edge& e : edges_) {
        if (!seen_edges.insert({e.from, e.to}).second) {
            out.push_back({DiagnosticKind::DuplicateEdge, nodes_[e.from].id,
                           "edge to " + nodes_[e.to].id + " declared more than once"});
        }
    }
    return out;
}

std::vector<Transaction> Graph::enumerate_transactions(
    const EnumerationOptions& options) const {
    std::vector<Transaction> out;
    std::vector<std::size_t> visits(nodes_.size(), 0);
    std::vector<NodeIndex> path;

    // Iterative DFS with explicit successor cursors keeps deep TFMs from
    // overflowing the stack and yields deterministic insertion order.
    struct Frame {
        NodeIndex node;
        std::size_t next_successor;
    };
    std::vector<Frame> stack;

    auto push = [&](NodeIndex n) {
        stack.push_back({n, 0});
        path.push_back(n);
        ++visits[n];
    };
    auto pop = [&] {
        --visits[stack.back().node];
        path.pop_back();
        stack.pop_back();
    };

    for (NodeIndex birth : birth_nodes()) {
        if (out.size() >= options.max_transactions) break;
        push(birth);
        if (is_death(birth)) {
            out.push_back(Transaction{path});
        }
        while (!stack.empty()) {
            if (out.size() >= options.max_transactions) break;
            Frame& top = stack.back();
            const auto& succ = adjacency_[top.node];
            bool advanced = false;
            while (top.next_successor < succ.size()) {
                const NodeIndex next = succ[top.next_successor++];
                if (visits[next] >= options.max_node_visits) continue;
                if (path.size() >= options.max_path_length) continue;
                push(next);
                if (is_death(next)) out.push_back(Transaction{path});
                advanced = true;
                break;
            }
            if (!advanced) pop();
        }
        // Stack fully unwound for this birth node; visits[] is all zero again.
    }
    return out;
}

std::vector<std::string> Graph::method_sequence(const Transaction& t) const {
    std::vector<std::string> out;
    for (NodeIndex i : t.path) {
        const Node& n = node(i);
        out.insert(out.end(), n.method_ids.begin(), n.method_ids.end());
    }
    return out;
}

std::string Graph::describe(const Transaction& t) const {
    std::string out;
    for (std::size_t i = 0; i < t.path.size(); ++i) {
        if (i != 0) out += " -> ";
        out += node(t.path[i]).id;
    }
    return out;
}

std::string Graph::to_dot(const Transaction* highlight) const {
    std::set<std::pair<NodeIndex, NodeIndex>> hot;
    std::set<NodeIndex> hot_nodes;
    if (highlight != nullptr) {
        for (std::size_t i = 0; i + 1 < highlight->path.size(); ++i) {
            hot.insert({highlight->path[i], highlight->path[i + 1]});
        }
        hot_nodes.insert(highlight->path.begin(), highlight->path.end());
    }

    std::string out = "digraph tfm {\n  rankdir=LR;\n";
    for (NodeIndex i = 0; i < nodes_.size(); ++i) {
        const Node& n = nodes_[i];
        out += "  " + n.id + " [label=\"" + n.id;
        for (const auto& m : n.method_ids) out += "\\n" + m;
        out += "\"";
        if (n.is_birth) out += ", shape=doublecircle";
        else if (is_death(i)) out += ", shape=doubleoctagon";
        if (hot_nodes.count(i) != 0) out += ", style=bold, color=red";
        out += "];\n";
    }
    for (const Edge& e : edges_) {
        out += "  " + nodes_[e.from].id + " -> " + nodes_[e.to].id;
        if (hot.count({e.from, e.to}) != 0) out += " [color=red, penwidth=2]";
        out += ";\n";
    }
    out += "}\n";
    return out;
}

}  // namespace stc::tfm
