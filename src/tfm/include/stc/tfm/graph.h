// Transaction Flow Model (TFM).
//
// The paper (§3.2) adopts Beizer's transaction-flow model, adapted by
// Siegel for class-level unit testing: a directed graph whose nodes are
// public features (groups of methods) and whose paths from an object's
// birth (a constructor node) to its death (a node with no outgoing
// edges, typically the destructor) are the *transactions* — the
// allowable method sequences from creation to destruction.  The
// transaction-coverage criterion (§3.4.1) requires exercising each
// individual transaction at least once.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace stc::tfm {

/// Index of a node within a Graph.
using NodeIndex = std::size_t;

/// A TFM node: a named group of one or more public methods of the
/// component.  A node is a *birth* node when transactions may start there
/// (it contains a constructor).
struct Node {
    std::string id;                       ///< t-spec node identifier, e.g. "n1".
    bool is_birth = false;                ///< Starting node? (Fig. 3)
    std::vector<std::string> method_ids;  ///< t-spec method ids grouped here.
};

/// A directed link: task `from` may be immediately followed by task `to`.
struct Edge {
    NodeIndex from;
    NodeIndex to;

    friend bool operator==(const Edge&, const Edge&) = default;
};

/// One transaction: a path through the TFM from a birth node to a death
/// node, i.e. one allowable life of an object.
struct Transaction {
    std::vector<NodeIndex> path;

    friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// Bounds for transaction enumeration.  Cyclic TFMs have infinitely many
/// paths; the enumerator unrolls cycles up to `max_node_visits` visits of
/// the same node per path (1 = simple paths only, 2 = one loop
/// iteration, ...), and stops after `max_transactions` paths.
struct EnumerationOptions {
    std::size_t max_node_visits = 2;
    std::size_t max_transactions = 100000;
    std::size_t max_path_length = 256;
};

/// Structural problems detected by Graph::diagnose().
enum class DiagnosticKind {
    NoBirthNode,        ///< no node is marked as a starting node
    NoDeathNode,        ///< every node has outgoing edges: objects never die
    UnreachableNode,    ///< node not reachable from any birth node
    DeadEndMismatch,    ///< node cannot reach any death node (transactions trap)
    DuplicateEdge,      ///< the same link declared twice
    SelfLoopOnBirth,    ///< birth node loops to itself before first task
};

[[nodiscard]] const char* to_string(DiagnosticKind kind) noexcept;

struct Diagnostic {
    DiagnosticKind kind;
    std::string node_id;  ///< offending node ("" for graph-wide issues)
    std::string detail;
};

/// The TFM directed graph.
class Graph {
public:
    /// Add a node; returns its index. Node ids must be unique.
    NodeIndex add_node(Node node);

    /// Add a directed edge between existing nodes (by id).
    void add_edge(const std::string& from_id, const std::string& to_id);
    void add_edge(NodeIndex from, NodeIndex to);

    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

    [[nodiscard]] const Node& node(NodeIndex i) const;
    [[nodiscard]] std::optional<NodeIndex> find_node(const std::string& id) const;

    [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }
    [[nodiscard]] const std::vector<NodeIndex>& successors(NodeIndex i) const;
    [[nodiscard]] std::size_t out_degree(NodeIndex i) const;
    [[nodiscard]] std::size_t in_degree(NodeIndex i) const;

    /// Whether the directed link from -> to exists.
    [[nodiscard]] bool has_edge(NodeIndex from, NodeIndex to) const;

    /// True when `path` is a structurally valid transaction of this
    /// graph: starts at a birth node, ends at a death node, and every
    /// consecutive pair is a declared link.  The fuzz mutators and the
    /// delta-debugging shrinker accept only candidates that pass this.
    [[nodiscard]] bool is_valid_transaction(
        const std::vector<NodeIndex>& path) const;

    /// For every node: the successor on a shortest path to some death
    /// node (std::nullopt for death nodes themselves and for nodes that
    /// cannot reach death).  Deterministic: BFS in node/edge insertion
    /// order.  Used to steer bounded random walks to termination.
    [[nodiscard]] std::vector<std::optional<NodeIndex>> next_hop_to_death() const;

    /// Birth nodes: marked is_birth. Death nodes: out-degree zero.
    [[nodiscard]] std::vector<NodeIndex> birth_nodes() const;
    [[nodiscard]] std::vector<NodeIndex> death_nodes() const;
    [[nodiscard]] bool is_death(NodeIndex i) const { return out_degree(i) == 0; }

    /// Nodes reachable from any birth node (forward closure).
    [[nodiscard]] std::vector<bool> reachable_from_birth() const;
    /// Nodes from which some death node is reachable (backward closure).
    [[nodiscard]] std::vector<bool> can_reach_death() const;

    /// Structural validation; returns all problems found (empty = sound).
    [[nodiscard]] std::vector<Diagnostic> diagnose() const;

    /// Enumerate transactions (birth -> death paths) under the bounds.
    /// Deterministic order: DFS over nodes/edges in insertion order.
    [[nodiscard]] std::vector<Transaction> enumerate_transactions(
        const EnumerationOptions& options = {}) const;

    /// Flatten a transaction into the method-id sequence it exercises.
    [[nodiscard]] std::vector<std::string> method_sequence(const Transaction& t) const;

    /// Human-readable path, e.g. "n1 -> n4 -> n7".
    [[nodiscard]] std::string describe(const Transaction& t) const;

    /// Graphviz DOT rendering; `highlight` optionally marks one
    /// transaction's path (the paper's Fig. 2 highlights the use-case
    /// scenario path).
    [[nodiscard]] std::string to_dot(const Transaction* highlight = nullptr) const;

private:
    std::vector<Node> nodes_;
    std::vector<Edge> edges_;
    std::vector<std::vector<NodeIndex>> adjacency_;
    std::vector<std::size_t> in_degree_;
};

}  // namespace stc::tfm
