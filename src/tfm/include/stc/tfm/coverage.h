// Coverage criteria over a TFM.
//
// The paper's Driver Generator implements *transaction coverage*: every
// enumerated transaction is exercised at least once (§3.4.1, "the weakest
// criterion among the ones presented in [Beizer, c.6.4.2]" — weakest among
// the transaction-flow criteria, yet subsuming node and link coverage).
// For the ablation study we also provide the two weaker graph criteria —
// all-nodes and all-links — realized as greedily chosen transaction
// subsets, so their fault-revealing power can be compared.
#pragma once

#include <cstddef>
#include <vector>

#include "stc/tfm/graph.h"

namespace stc::tfm {

/// Fraction of nodes / edges of `g` touched by the given transactions.
struct CoverageReport {
    std::size_t nodes_covered = 0;
    std::size_t nodes_total = 0;
    std::size_t edges_covered = 0;
    std::size_t edges_total = 0;

    [[nodiscard]] double node_ratio() const noexcept {
        return nodes_total == 0 ? 1.0
                                : static_cast<double>(nodes_covered) /
                                      static_cast<double>(nodes_total);
    }
    [[nodiscard]] double edge_ratio() const noexcept {
        return edges_total == 0 ? 1.0
                                : static_cast<double>(edges_covered) /
                                      static_cast<double>(edges_total);
    }
};

[[nodiscard]] CoverageReport measure_coverage(
    const Graph& g, const std::vector<Transaction>& transactions);

/// Selection policies for deriving a test-relevant transaction subset.
enum class Criterion {
    AllTransactions,  ///< the paper's criterion: keep every transaction
    AllNodes,         ///< greedy subset covering every reachable node
    AllEdges,         ///< greedy subset covering every traversed edge
};

[[nodiscard]] const char* to_string(Criterion c) noexcept;

/// Select indices into `transactions` satisfying the criterion.  Greedy
/// set cover for AllNodes/AllEdges (deterministic: ties break on lower
/// index).  AllTransactions returns every index.
[[nodiscard]] std::vector<std::size_t> select_transactions(
    const Graph& g, const std::vector<Transaction>& transactions, Criterion c);

}  // namespace stc::tfm
