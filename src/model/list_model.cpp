#include "stc/model/model.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>

#include "stc/mfc/coblist.h"
#include "stc/mfc/sortable.h"

namespace stc::model {

namespace {

using mfc::CObject;

/// Elements shown before an abstraction truncates with "...".  Bounds
/// the live-side walk too, so a mutated m_nCount of a million can never
/// stall a projection (a count that large diverges at "count=" anyway).
constexpr std::size_t kMaxProjected = 64;

std::string text_of(const CObject* element) {
    return element != nullptr ? element->ToText() : "<null>";
}

/// Shared abstraction format, "count=N [CInt(3), CInt(7)]": produced
/// verbatim by the model's abstract_state() and, element-for-element,
/// by the live projection below — byte equality IS conformance.
std::string render_abstraction(std::size_t count,
                               const std::vector<std::string>& elements) {
    std::ostringstream os;
    os << "count=" << count << " [";
    for (std::size_t i = 0; i < elements.size(); ++i) {
        if (i != 0) os << ", ";
        os << elements[i];
    }
    os << "]";
    return os.str();
}

/// Read-only projection of a live CObList into the shared abstraction.
/// Never throws: a walk the corrupted structure cuts short (checked()
/// StructuralFault, null chain before m_nCount elements, extra nodes
/// beyond it) lands as a deterministic marker that no healthy model
/// state can equal.
std::string project_live(const mfc::CObList& list) noexcept {
    try {
        const int count = list.GetCount();
        const std::size_t target =
            count < 0 ? 0 : static_cast<std::size_t>(count);
        const std::size_t walk_limit = std::min(target, kMaxProjected);

        std::vector<std::string> elements;
        elements.reserve(walk_limit);
        mfc::POSITION pos = list.GetHeadPosition();
        while (pos != nullptr && elements.size() < walk_limit) {
            elements.push_back(text_of(list.GetNext(pos)));
        }
        if (elements.size() < walk_limit) {
            elements.push_back("<short>");  // chain ended before m_nCount
        } else if (target > kMaxProjected) {
            elements.push_back("...");
        } else if (pos != nullptr) {
            elements.push_back("<extra>");  // nodes beyond m_nCount
        }
        return render_abstraction(target, elements);
    } catch (...) {
        return "<fault>";
    }
}

/// Reference model of CObList (and, with sortable=true, of
/// CSortableObList): element pointers in list order.  Elements are
/// owned by the generator's ElementPool and outlive every test case,
/// so holding pointers is safe; predictions render them through the
/// same ToText the binding wrappers use.
class ListModel final : public driver::LockstepModel {
public:
    explicit ListModel(bool sortable) noexcept : sortable_(sortable) {}

    bool construct(const std::vector<domain::Value>& args) override {
        // Both classes bind a zero-argument constructor.
        return args.empty();
    }

    bool apply_state(const std::string&) override {
        return false;  // no predefined mid-life states are modeled
    }

    driver::ModelPrediction apply(const driver::MethodCall& call) override {
        const std::string& name = call.method_name;
        if (name == "AddHead" || name == "AddTail") {
            const CObject* element = element_arg(call);
            if (element == nullptr) return {};  // unmodeled argument shape
            if (name == "AddHead") {
                elements_.insert(elements_.begin(), element);
            } else {
                elements_.push_back(element);
            }
            return predict("<object>");  // a fresh POSITION, never null
        }
        if (name == "GetCount") {
            return predict(std::to_string(elements_.size()));
        }
        if (name == "IsEmpty") {
            return predict(elements_.empty() ? "1" : "0");
        }
        if (name == "RemoveAll") {
            elements_.clear();
            return driver::ModelPrediction{true, false, {}};
        }
        if (name == "RemoveHead" || name == "RemoveTail") {
            if (elements_.empty()) return predict("<noop>");
            const bool head = name == "RemoveHead";
            const CObject* removed =
                head ? elements_.front() : elements_.back();
            elements_.erase(head ? elements_.begin() : elements_.end() - 1);
            return predict(text_of(removed));
        }
        if (name == "RemoveAt") {
            // Wrapper semantics: empty -> "<noop>", otherwise the index
            // argument is completed modulo the count and the new count
            // is returned.
            if (elements_.empty()) return predict("<noop>");
            const auto index = index_arg(call);
            if (index < 0) return {};  // the live wrapper would fault
            elements_.erase(elements_.begin() + index);
            return predict(std::to_string(elements_.size()));
        }
        if (name == "FindIndex") {
            if (elements_.empty()) return predict("<none>");
            const auto index = index_arg(call);
            if (index < 0) return predict("<none>");
            return predict(text_of(elements_[static_cast<std::size_t>(index)]));
        }
        if (sortable_) {
            if (name == "Sort1" || name == "Sort2" || name == "ShellSort") {
                // All three sorts specify the same observable outcome:
                // ascending by CObject::Compare.  Ties render
                // identically (equal CInts share their ToText), so
                // stability cannot show in the abstraction.
                std::stable_sort(elements_.begin(), elements_.end(),
                                 [](const CObject* a, const CObject* b) {
                                     return a->Compare(*b) < 0;
                                 });
                return driver::ModelPrediction{true, false, {}};
            }
            if (name == "FindMax" || name == "FindMin") {
                if (elements_.empty()) return predict("<empty>");
                // First-extremal wins, exactly like the strict-Less
                // scans in sortable.cpp.
                const CObject* best = elements_.front();
                for (std::size_t i = 1; i < elements_.size(); ++i) {
                    const CObject* current = elements_[i];
                    const bool better = name == "FindMax"
                                            ? best->Compare(*current) < 0
                                            : current->Compare(*best) < 0;
                    if (better) best = current;
                }
                return predict(text_of(best));
            }
        }
        return {};  // unknown method: disengage, never diverge
    }

    [[nodiscard]] std::string abstract_state() const override {
        std::vector<std::string> rendered;
        const std::size_t cap = std::min(elements_.size(), kMaxProjected);
        rendered.reserve(cap + 1);
        for (std::size_t i = 0; i < cap; ++i) {
            rendered.push_back(text_of(elements_[i]));
        }
        if (elements_.size() > cap) rendered.push_back("...");
        return render_abstraction(elements_.size(), rendered);
    }

private:
    static driver::ModelPrediction predict(std::string rendered) {
        return driver::ModelPrediction{true, true, std::move(rendered)};
    }

    /// The CObject* argument of an add call; nullptr when the shape is
    /// not the completed pointer the wrappers expect.
    static const CObject* element_arg(const driver::MethodCall& call) {
        if (call.arguments.size() != 1 ||
            call.arguments[0].kind() != domain::ValueKind::Pointer) {
            return nullptr;
        }
        return static_cast<const CObject*>(call.arguments[0].as_pointer());
    }

    /// The wrappers' index completion, with the MODEL's count: the
    /// prediction is what a correct component would answer, so a
    /// mutant that corrupted its count diverges here.
    [[nodiscard]] std::int64_t index_arg(const driver::MethodCall& call) const {
        if (call.arguments.size() != 1) return -1;
        return call.arguments[0].as_int() %
               static_cast<std::int64_t>(elements_.size());
    }

    std::vector<const CObject*> elements_;
    bool sortable_;
};

template <typename T>
driver::ModelBinding make_list_binding(bool sortable) {
    driver::ModelBinding binding;
    binding.factory = [sortable] {
        return std::unique_ptr<driver::LockstepModel>(new ListModel(sortable));
    };
    binding.project = [](const void* object) {
        return project_live(*static_cast<const T*>(object));
    };
    return binding;
}

const std::map<std::string, driver::ModelBinding>& registry() {
    static const std::map<std::string, driver::ModelBinding> bindings = [] {
        std::map<std::string, driver::ModelBinding> out;
        out.emplace("CObList", make_list_binding<mfc::CObList>(false));
        out.emplace("CSortableObList",
                    make_list_binding<mfc::CSortableObList>(true));
        return out;
    }();
    return bindings;
}

}  // namespace

const driver::ModelBinding* binding_for(const std::string& class_name) {
    const auto& bindings = registry();
    const auto it = bindings.find(class_name);
    return it == bindings.end() ? nullptr : &it->second;
}

std::vector<std::string> modeled_classes() {
    std::vector<std::string> out;
    for (const auto& [name, binding] : registry()) out.push_back(name);
    return out;
}

}  // namespace stc::model
