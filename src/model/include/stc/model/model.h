// stc::model — reference models for the differential conformance oracle.
//
// A reference model is a cheap, obviously-correct implementation of a
// component's *specified* behaviour, run in lockstep with the component
// under test (driver/lockstep.h).  After every method call the runner
// compares the model's predicted return rendering and its abstracted
// state projection against the live object; the first disagreement is a
// model divergence — a kill signal (KillReason::ModelDivergence) that
// needs no assertion to fire and no golden report to differ, closing
// part of the partial-oracle gap the paper concedes in §4.
//
// Models ship here, beside the components they mirror, and register by
// class name: the CLI's --model flag resolves `binding_for(class)` and
// attaches it to RunnerOptions::model.  The two concrete models cover
// the paper's experimental subjects: a std::vector<const CObject*>
// model of stc::mfc::CObList, and its ordered extension for
// CSortableObList.  Their prediction logic mirrors the *binding
// wrappers* of stc::mfc::component.cpp (the tester-facing semantics:
// "<noop>" on empty removal, index-modulo completion, "<empty>"
// find-on-empty), because those wrappers define what the observation
// log records.
#pragma once

#include <string>
#include <vector>

#include "stc/driver/lockstep.h"

namespace stc::model {

/// Lockstep binding for `class_name`, or nullptr when no reference
/// model is registered for it.  The returned binding points into
/// static storage (valid for the process lifetime, safe to share
/// across threads; models themselves are created per test case).
[[nodiscard]] const driver::ModelBinding* binding_for(
    const std::string& class_name);

/// Class names with a registered reference model, sorted — for CLI
/// diagnostics ("--model is not available for class X; models exist
/// for: ...").
[[nodiscard]] std::vector<std::string> modeled_classes();

}  // namespace stc::model
