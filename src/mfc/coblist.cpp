#include "stc/mfc/coblist.h"

#include <map>

#include "stc/mutation/descriptor.h"

namespace stc::mfc {

using mutation::int_type;
using mutation::MethodDescriptor;
using mutation::MutFrame;
using mutation::pointer_type;
using mutation::StructuralFault;

namespace {

// ---- Interface-mutation descriptors for the Table 3 methods -----------
// Site ordinals follow the use() calls in the method bodies below, in
// textual order; keep them in sync.

const MethodDescriptor& add_head_desc() {
    static const MethodDescriptor d =
        MethodDescriptor::Builder("CObList", "AddHead")
            .param("newElement", pointer_type("CObject"))
            .local("pNewNode", pointer_type("CNode"))
            .attr("m_pNodeHead", pointer_type("CNode"), true)
            .attr("m_pNodeTail", pointer_type("CNode"), true)
            .attr("m_nCount", int_type(), true)
            .attr("m_pNodeFree", pointer_type("CNode"), false)
            .attr("m_nBlockSize", int_type(), false)
            .site("pNewNode", "store element")          // s0
            .site("pNewNode", "clear pPrev")            // s1
            .site("pNewNode", "link pNext")             // s2
            .site("m_pNodeHead", "old head value")      // s3
            .site("m_pNodeHead", "empty test")          // s4
            .site("m_pNodeHead", "back-link old head")  // s5
            .site("pNewNode", "back-link target")       // s6
            .site("pNewNode", "tail when empty")        // s7
            .site("pNewNode", "new head")               // s8
            .site("m_nCount", "increment")              // s9
            .interface_site("newElement", "stored element")  // s10 (DirVar)
            .build();
    return d;
}

const MethodDescriptor& remove_head_desc() {
    static const MethodDescriptor d =
        MethodDescriptor::Builder("CObList", "RemoveHead")
            .local("pOldNode", pointer_type("CNode"))
            .local("returnValue", pointer_type("CObject"))
            .attr("m_pNodeHead", pointer_type("CNode"), true)
            .attr("m_pNodeTail", pointer_type("CNode"), true)
            .attr("m_nCount", int_type(), true)
            .attr("m_pNodeFree", pointer_type("CNode"), false)
            .attr("m_nBlockSize", int_type(), false)
            .site("m_pNodeHead", "node to remove")  // s0
            .site("pOldNode", "read element")       // s1
            .site("pOldNode", "advance head")       // s2
            .site("m_pNodeHead", "empty test")      // s3
            .site("m_pNodeHead", "clear back-link") // s4
            .site("pOldNode", "recycle")            // s5
            .site("m_nCount", "decrement")          // s6
            .site("returnValue", "return value")    // s7
            .build();
    return d;
}

const MethodDescriptor& remove_at_desc() {
    static const MethodDescriptor d =
        MethodDescriptor::Builder("CObList", "RemoveAt")
            .param("position", pointer_type("CNode"))
            .local("pOldNode", pointer_type("CNode"))
            .attr("m_pNodeHead", pointer_type("CNode"), true)
            .attr("m_pNodeTail", pointer_type("CNode"), true)
            .attr("m_nCount", int_type(), true)
            .attr("m_pNodeFree", pointer_type("CNode"), false)
            .attr("m_nBlockSize", int_type(), false)
            .site("pOldNode", "head test")          // s0
            .site("m_pNodeHead", "head test rhs")   // s1
            .site("pOldNode", "advance head")       // s2
            .site("pOldNode", "unlink prev side")   // s3
            .site("pOldNode", "prev->next target")  // s4
            .site("pOldNode", "tail test")          // s5
            .site("m_pNodeTail", "tail test rhs")   // s6
            .site("pOldNode", "retreat tail")       // s7
            .site("pOldNode", "unlink next side")   // s8
            .site("pOldNode", "next->prev target")  // s9
            .site("pOldNode", "recycle")            // s10
            .site("m_nCount", "decrement")          // s11
            .interface_site("position", "node handle")  // s12 (DirVar)
            .build();
    return d;
}

}  // namespace

// ---- Construction / destruction -------------------------------------------

CObList::CObList(int nBlockSize) : m_nBlockSize(nBlockSize) {
    STC_PRECONDITION(nBlockSize > 0);
}

CObList::~CObList() {
    // Pool-wise teardown: immune to corrupted links, never double-frees.
    for (const CNode* node : owned_) delete node;
}

void CObList::CopyStateFrom(const CObList& source) {
    m_nBlockSize = source.m_nBlockSize;
    m_nCount = source.m_nCount;
    std::map<const CNode*, CNode*> twins;
    for (const CNode* node : source.owned_) {
        CNode* twin = new CNode{};
        owned_.insert(twin);
        twins.emplace(node, twin);
    }
    // Foreign pointers map to themselves: still outside the pool, so
    // checked() faults on the copy exactly where it would on the source.
    const auto twin_of = [&twins](CNode* node) -> CNode* {
        const auto it = twins.find(node);
        return it != twins.end() ? it->second : node;
    };
    for (const auto& [node, twin] : twins) {
        twin->data = node->data;
        twin->pNext = twin_of(node->pNext);
        twin->pPrev = twin_of(node->pPrev);
    }
    m_pNodeHead = twin_of(source.m_pNodeHead);
    m_pNodeTail = twin_of(source.m_pNodeTail);
    m_pNodeFree = twin_of(source.m_pNodeFree);
}

// ---- Node pool ---------------------------------------------------------------

CNode* CObList::NewNode() {
    CNode* node = nullptr;
    if (m_pNodeFree != nullptr) {
        node = m_pNodeFree;
        m_pNodeFree = m_pNodeFree->pNext;
    } else {
        node = new CNode{};
        owned_.insert(node);
    }
    node->data = nullptr;
    node->pNext = nullptr;
    node->pPrev = nullptr;
    return node;
}

void CObList::FreeNode(CNode* node) {
    // MFC's FreeNode links the node into the free list through a raw
    // dereference; a null/foreign node here crashed the original.
    checked(node)->pNext = m_pNodeFree;
    node->pPrev = nullptr;
    m_pNodeFree = node;
}

CNode* CObList::checked(CNode* node) const {
    if (node == nullptr) {
        throw StructuralFault("CObList: null CNode dereference");
    }
    if (!is_owned(node)) {
        throw StructuralFault("CObList: dereference of a node outside the pool");
    }
    return node;
}

bool CObList::is_owned(const CNode* node) const noexcept {
    return node != nullptr && owned_.count(node) != 0;
}

void CObList::bump_guard(int& guard) const {
    if (++guard > static_cast<int>(owned_.size()) + 8) {
        throw StructuralFault("CObList: runaway traversal (corrupted links)");
    }
}

void CObList::bind_attrs(MutFrame& frame) const {
    frame.bind_ptr("m_pNodeHead", &m_pNodeHead);
    frame.bind_ptr("m_pNodeTail", &m_pNodeTail);
    frame.bind_ptr("m_pNodeFree", &m_pNodeFree);
    frame.bind("m_nCount", &m_nCount);
    frame.bind("m_nBlockSize", &m_nBlockSize);
}

bool CObList::Less(const CObject* a, const CObject* b) {
    if (a == nullptr || b == nullptr) {
        throw StructuralFault("CObList: null element dereference in comparison");
    }
    return a->Compare(*b) < 0;
}

// ---- Head/tail access -----------------------------------------------------------

CObject* CObList::GetHead() const {
    STC_PRECONDITION(!IsEmpty());
    return checked(m_pNodeHead)->data;
}

CObject* CObList::GetTail() const {
    STC_PRECONDITION(!IsEmpty());
    return checked(m_pNodeTail)->data;
}

// ---- Insertion ---------------------------------------------------------------------

POSITION CObList::AddHead(CObject* newElement) {
    STC_PRECONDITION(newElement != nullptr);

    MutFrame frame(add_head_desc());
    bind_attrs(frame);
    CNode* pNewNode = NewNode();
    frame.bind_ptr("pNewNode", &pNewNode);

    checked(frame.use_ptr(0, pNewNode))->data = frame.use_ptr(10, newElement);
    checked(frame.use_ptr(1, pNewNode))->pPrev = nullptr;
    checked(frame.use_ptr(2, pNewNode))->pNext = frame.use_ptr(3, m_pNodeHead);
    if (frame.use_ptr(4, m_pNodeHead) != nullptr) {
        checked(frame.use_ptr(5, m_pNodeHead))->pPrev = frame.use_ptr(6, pNewNode);
    } else {
        m_pNodeTail = frame.use_ptr(7, pNewNode);
    }
    m_pNodeHead = frame.use_ptr(8, pNewNode);
    m_nCount = frame.use(9, m_nCount) + 1;

    STC_POSTCONDITION(m_nCount > 0);
    return m_pNodeHead;
}

POSITION CObList::AddTail(CObject* newElement) {
    STC_PRECONDITION(newElement != nullptr);

    CNode* pNewNode = NewNode();
    pNewNode->data = newElement;
    pNewNode->pNext = nullptr;
    pNewNode->pPrev = m_pNodeTail;
    if (m_pNodeTail != nullptr) {
        checked(m_pNodeTail)->pNext = pNewNode;
    } else {
        m_pNodeHead = pNewNode;
    }
    m_pNodeTail = pNewNode;
    ++m_nCount;

    STC_POSTCONDITION(m_nCount > 0);
    return m_pNodeTail;
}

void CObList::AddHead(CObList* newList) {
    STC_PRECONDITION(newList != nullptr);
    // Insert in reverse so the other list's order is preserved at our head.
    int guard = 0;
    for (POSITION p = newList->GetTailPosition(); p != nullptr;) {
        newList->bump_guard(guard);
        AddHead(newList->GetPrev(p));
    }
}

void CObList::AddTail(CObList* newList) {
    STC_PRECONDITION(newList != nullptr);
    int guard = 0;
    for (POSITION p = newList->GetHeadPosition(); p != nullptr;) {
        newList->bump_guard(guard);
        AddTail(newList->GetNext(p));
    }
}

// ---- Removal ------------------------------------------------------------------------

CObject* CObList::RemoveHead() {
    STC_PRECONDITION(!IsEmpty());

    MutFrame frame(remove_head_desc());
    bind_attrs(frame);
    CNode* pOldNode = nullptr;
    CObject* returnValue = nullptr;
    frame.bind_ptr("pOldNode", &pOldNode);
    frame.bind_ptr("returnValue", &returnValue);

    pOldNode = frame.use_ptr(0, m_pNodeHead);
    returnValue = checked(frame.use_ptr(1, pOldNode))->data;
    m_pNodeHead = checked(frame.use_ptr(2, pOldNode))->pNext;
    if (frame.use_ptr(3, m_pNodeHead) != nullptr) {
        checked(frame.use_ptr(4, m_pNodeHead))->pPrev = nullptr;
    } else {
        m_pNodeTail = nullptr;
    }
    FreeNode(frame.use_ptr(5, pOldNode));
    m_nCount = frame.use(6, m_nCount) - 1;

    STC_POSTCONDITION(m_nCount >= 0);
    return frame.use_ptr(7, returnValue);
}

CObject* CObList::RemoveTail() {
    STC_PRECONDITION(!IsEmpty());

    CNode* pOldNode = m_pNodeTail;
    CObject* returnValue = checked(pOldNode)->data;
    m_pNodeTail = pOldNode->pPrev;
    if (m_pNodeTail != nullptr) {
        checked(m_pNodeTail)->pNext = nullptr;
    } else {
        m_pNodeHead = nullptr;
    }
    FreeNode(pOldNode);
    --m_nCount;

    STC_POSTCONDITION(m_nCount >= 0);
    return returnValue;
}

void CObList::RemoveAt(POSITION position) {
    STC_PRECONDITION(position != nullptr);
    STC_PRECONDITION(is_owned(position));

    MutFrame frame(remove_at_desc());
    bind_attrs(frame);
    CNode* pOldNode = nullptr;
    frame.bind_ptr("pOldNode", &pOldNode);
    pOldNode = frame.use_ptr(12, position);

    if (frame.use_ptr(0, pOldNode) == frame.use_ptr(1, m_pNodeHead)) {
        m_pNodeHead = checked(frame.use_ptr(2, pOldNode))->pNext;
    } else {
        checked(checked(frame.use_ptr(3, pOldNode))->pPrev)->pNext =
            checked(frame.use_ptr(4, pOldNode))->pNext;
    }
    if (frame.use_ptr(5, pOldNode) == frame.use_ptr(6, m_pNodeTail)) {
        m_pNodeTail = checked(frame.use_ptr(7, pOldNode))->pPrev;
    } else {
        checked(checked(frame.use_ptr(8, pOldNode))->pNext)->pPrev =
            checked(frame.use_ptr(9, pOldNode))->pPrev;
    }
    FreeNode(frame.use_ptr(10, pOldNode));
    m_nCount = frame.use(11, m_nCount) - 1;

    STC_POSTCONDITION(m_nCount >= 0);
}

void CObList::RemoveAll() {
    int guard = 0;
    CNode* node = m_pNodeHead;
    while (node != nullptr && is_owned(node) &&
           guard <= static_cast<int>(owned_.size())) {
        CNode* next = node->pNext;
        FreeNode(node);
        node = next;
        ++guard;
    }
    m_pNodeHead = nullptr;
    m_pNodeTail = nullptr;
    m_nCount = 0;

    STC_POSTCONDITION(IsEmpty());
}

// ---- Iteration -----------------------------------------------------------------------

CObject* CObList::GetNext(POSITION& rPosition) const {
    CNode* node = checked(rPosition);
    rPosition = node->pNext;
    return node->data;
}

CObject* CObList::GetPrev(POSITION& rPosition) const {
    CNode* node = checked(rPosition);
    rPosition = node->pPrev;
    return node->data;
}

// ---- Positional access ------------------------------------------------------------------

CObject* CObList::GetAt(POSITION position) const { return checked(position)->data; }

void CObList::SetAt(POSITION position, CObject* newElement) {
    STC_PRECONDITION(newElement != nullptr);
    checked(position)->data = newElement;
}

POSITION CObList::InsertBefore(POSITION position, CObject* newElement) {
    STC_PRECONDITION(newElement != nullptr);
    if (position == nullptr) return AddHead(newElement);

    CNode* pOldNode = checked(position);
    CNode* pNewNode = NewNode();
    pNewNode->data = newElement;
    pNewNode->pPrev = pOldNode->pPrev;
    pNewNode->pNext = pOldNode;
    if (pOldNode->pPrev != nullptr) {
        checked(pOldNode->pPrev)->pNext = pNewNode;
    } else {
        m_pNodeHead = pNewNode;
    }
    pOldNode->pPrev = pNewNode;
    ++m_nCount;

    STC_POSTCONDITION(m_nCount > 0);
    return pNewNode;
}

POSITION CObList::InsertAfter(POSITION position, CObject* newElement) {
    STC_PRECONDITION(newElement != nullptr);
    if (position == nullptr) return AddTail(newElement);

    CNode* pOldNode = checked(position);
    CNode* pNewNode = NewNode();
    pNewNode->data = newElement;
    pNewNode->pPrev = pOldNode;
    pNewNode->pNext = pOldNode->pNext;
    if (pOldNode->pNext != nullptr) {
        checked(pOldNode->pNext)->pPrev = pNewNode;
    } else {
        m_pNodeTail = pNewNode;
    }
    pOldNode->pNext = pNewNode;
    ++m_nCount;

    STC_POSTCONDITION(m_nCount > 0);
    return pNewNode;
}

// ---- Search ----------------------------------------------------------------------------

POSITION CObList::Find(CObject* searchValue, POSITION startAfter) const {
    CNode* node = startAfter == nullptr ? m_pNodeHead : checked(startAfter)->pNext;
    int guard = 0;
    while (node != nullptr) {
        bump_guard(guard);
        if (checked(node)->data == searchValue) return node;
        node = node->pNext;
    }
    return nullptr;
}

POSITION CObList::FindIndex(int nIndex) const {
    if (nIndex < 0 || nIndex >= m_nCount) return nullptr;
    CNode* node = m_pNodeHead;
    int guard = 0;
    for (int i = 0; i < nIndex; ++i) {
        bump_guard(guard);
        node = checked(node)->pNext;
    }
    return checked(node);
}

// ---- Built-in test capabilities --------------------------------------------------------

bool CObList::ValidState() const noexcept {
    // MFC CObList::AssertValid strength: nothing more than head/tail
    // consistency with the count.
    if (m_nCount < 0) return false;
    if (m_nCount == 0) return m_pNodeHead == nullptr && m_pNodeTail == nullptr;
    return is_owned(m_pNodeHead) && is_owned(m_pNodeTail);
}

bool CObList::DeepValidState() const noexcept {
    if (m_nCount < 0) return false;
    if (m_nCount == 0) return m_pNodeHead == nullptr && m_pNodeTail == nullptr;
    if (!is_owned(m_pNodeHead) || !is_owned(m_pNodeTail)) return false;
    if (m_pNodeHead->pPrev != nullptr || m_pNodeTail->pNext != nullptr) return false;

    int walked = 0;
    const CNode* prev = nullptr;
    for (const CNode* node = m_pNodeHead; node != nullptr; node = node->pNext) {
        if (!is_owned(node)) return false;
        if (node->pPrev != prev) return false;
        if (node->data == nullptr) return false;
        prev = node;
        if (++walked > static_cast<int>(owned_.size())) return false;  // cycle
    }
    return walked == m_nCount && prev == m_pNodeTail;
}

void CObList::InvariantTest() const { STC_CLASS_INVARIANT(ValidState()); }

void CObList::Reporter(std::ostream& os) const {
    os << ToText() << " count=" << m_nCount << " [";
    int guard = 0;
    for (const CNode* node = m_pNodeHead; node != nullptr; node = node->pNext) {
        if (!is_owned(node)) {
            os << " <corrupt>";
            break;
        }
        if (++guard > static_cast<int>(owned_.size())) {
            os << " <cycle>";
            break;
        }
        if (guard > 1) os << ", ";
        os << (node->data != nullptr ? node->data->ToText() : "<null>");
    }
    os << "]";
}

void register_coblist_descriptors(mutation::DescriptorRegistry& registry) {
    registry.add(&add_head_desc());
    registry.add(&remove_head_desc());
    registry.add(&remove_at_desc());
}

void CObList::AssertValid() const {
    if (!ValidState()) {
        throw StructuralFault("CObList::AssertValid: inconsistent list structure");
    }
}

std::string CObList::ToText() const { return "CObList"; }

}  // namespace stc::mfc
