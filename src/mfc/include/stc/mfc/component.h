// Self-testable packaging of CObList / CSortableObList: the t-specs
// (interface + TFM), the reflection bindings (including the tester's
// manual completions for structured parameters), the element pool, and
// the mutation descriptor registry.  This is everything a *consumer*
// needs to test the component — the paper's claim is precisely that the
// producer ships all of this along with the implementation.
#pragma once

#include <memory>
#include <vector>

#include "stc/driver/generator.h"
#include "stc/mfc/sortable.h"
#include "stc/mutation/descriptor.h"
#include "stc/reflect/binder.h"
#include "stc/tspec/model.h"

namespace stc::mfc {

/// Arena of comparable elements used to complete CObject* parameters.
/// Elements live as long as the pool: generated test suites hold
/// pointers to them across (many) mutation runs, and CObList never owns
/// its elements (MFC semantics), so nothing else may delete them.
class ElementPool {
public:
    /// Create (and own) a new element with the given value.
    CObject* make(int value);

    [[nodiscard]] std::size_t size() const noexcept { return elements_.size(); }

    /// A completion hook for t-spec 'CObject' pointer parameters: yields
    /// pool elements with values drawn uniformly from [lo, hi].
    [[nodiscard]] driver::CompletionRegistry::Completion completion(int lo, int hi);

private:
    std::vector<std::unique_ptr<CInt>> elements_;
};

/// The t-spec a producer embeds in CObList (methods m1..m11, 10-node
/// TFM).  Structured parameters ('CObject') require a completion.
[[nodiscard]] tspec::ComponentSpec coblist_spec();

/// The t-spec for CSortableObList: superclass CObList; inherited
/// add/remove/query methods plus the five *new* methods of Table 2; the
/// 16-node / 43-link TFM matching the model size reported in §4.
[[nodiscard]] tspec::ComponentSpec sortable_spec();

/// Reflection bindings.  Wrapper methods play the tester's completion
/// role for values that cannot be generated: removal/query methods are
/// defensive on the empty list, POSITION parameters are derived from an
/// index argument, and returned elements are rendered to text so the
/// output-diff oracle can observe them.
[[nodiscard]] reflect::ClassBinding coblist_binding();
[[nodiscard]] reflect::ClassBinding sortable_binding();

/// Register both bindings into a registry.
void register_mfc(reflect::Registry& registry);

/// Canonical mutation descriptor registry for both classes.
[[nodiscard]] const mutation::DescriptorRegistry& descriptors();

/// Convenience: a completion registry wired to `pool` for the 'CObject'
/// parameters of both specs (values in [lo, hi]).
[[nodiscard]] driver::CompletionRegistry make_completions(ElementPool& pool,
                                                          int lo = 0, int hi = 999);

}  // namespace stc::mfc
