// CSortableObList — the derived ordered list of the paper's experiments
// (a third-party "sortable CObList" in the original study).  It adds the
// five methods mutated in Table 2:
//   Sort1()     — insertion sort by relinking nodes
//   Sort2()     — selection sort by swapping element pointers
//   ShellSort() — shell sort over a temporary element array
//   FindMax()   — largest element
//   FindMin()   — smallest element
// All five are instrumented with interface-mutation use sites.  Insertion
// and removal are inherited unchanged from CObList — exactly the
// situation the paper's second experiment (Table 3) probes.
#pragma once

#include "stc/mfc/coblist.h"

namespace stc::mfc {

class CSortableObList : public CObList {
public:
    using CObList::CObList;

    /// Insertion sort: relinks the nodes into ascending order (stable).
    void Sort1();

    /// Selection sort: keeps the node chain, swaps the element pointers.
    void Sort2();

    /// Shell sort over a temporary array of element pointers.
    void ShellSort();

    /// Largest / smallest element by CObject::Compare.  The list must not
    /// be empty (MFC-style assertion precondition).
    [[nodiscard]] CObject* FindMax() const;
    [[nodiscard]] CObject* FindMin() const;

    /// True when elements are in ascending order (corruption-safe:
    /// returns false rather than faulting on broken links).  Sortedness
    /// is a postcondition of the Sort* methods, not a class invariant —
    /// unsorted states are legal between insertions.
    [[nodiscard]] bool IsSorted() const noexcept;

    [[nodiscard]] std::string ToText() const override { return "CSortableObList"; }
};

/// Register CSortableObList's mutation descriptors (the five methods of
/// the paper's Table 2 experiment).
void register_sortable_descriptors(mutation::DescriptorRegistry& registry);

}  // namespace stc::mfc
