// Minimal MFC-style object model.
//
// The paper's empirical evaluation (§4) uses the Microsoft Foundation
// Class CObList and a derived CSortableObList "obtained through the
// Internet".  Neither is available; this is a from-scratch
// re-implementation of the documented MFC surface the experiment
// depends on: a CObject root with validity/diagnostic hooks, and a
// comparable integer payload (CInt) used as the list element type in
// tests and benches (the experiment only needs elements with an order).
#pragma once

#include <string>

namespace stc::mfc {

/// Root of the class hierarchy (MFC CObject).  Adds the two hooks the
/// experiments rely on: AssertValid (MFC ASSERT_VALID) and ToText (the
/// role of MFC's Dump — feeds the BIT Reporter output), plus a total
/// order used by the sortable list.
class CObject {
public:
    virtual ~CObject() = default;

    /// MFC-style validity hook; default does nothing.
    virtual void AssertValid() const {}

    /// Diagnostic rendering for Reporter output; must be deterministic.
    [[nodiscard]] virtual std::string ToText() const { return "CObject"; }

    /// Three-way comparison for ordered containers: negative/zero/positive
    /// like strcmp.  Default compares nothing (all objects equal), the
    /// sortable list requires elements that override it.
    [[nodiscard]] virtual int Compare(const CObject& other) const {
        (void)other;
        return 0;
    }
};

/// Comparable integer payload used as the element type in the
/// experiments (stands in for the application objects of the paper's
/// warehouse case study).
class CInt final : public CObject {
public:
    explicit CInt(int value) noexcept : value_(value) {}

    [[nodiscard]] int value() const noexcept { return value_; }

    [[nodiscard]] std::string ToText() const override {
        return "CInt(" + std::to_string(value_) + ")";
    }

    [[nodiscard]] int Compare(const CObject& other) const override {
        const auto* o = dynamic_cast<const CInt*>(&other);
        if (o == nullptr) return 1;  // CInts order after foreign objects
        if (value_ < o->value_) return -1;
        if (value_ > o->value_) return 1;
        return 0;
    }

private:
    int value_;
};

}  // namespace stc::mfc
