// CObList — MFC-compatible doubly linked list of CObject*, rebuilt from
// the documented API and made *self-testable* per the paper's approach:
// it inherits BuiltInTest (InvariantTest + Reporter), carries MFC-style
// assertions as BIT pre/postconditions, and its three methods from the
// paper's Table 3 experiment (AddHead, RemoveAt, RemoveHead) are
// instrumented with interface-mutation use sites.
//
// Crash realism: nodes live in a per-list pool (owned set + free list,
// mirroring MFC's block allocator).  Every pointer dereference in the
// instrumented paths goes through checked(), which throws
// StructuralFault for null/foreign pointers — the in-process stand-in
// for the memory corruption that crashed the paper's per-mutant
// processes.
#pragma once

#include <ostream>
#include <set>
#include <string>

#include "stc/bit/assertions.h"
#include "stc/bit/built_in_test.h"
#include "stc/mfc/cobject.h"
#include "stc/mutation/frame.h"

namespace stc::mfc {

/// Internal list node (MFC CObList::CNode).
struct CNode {
    CObject* data = nullptr;
    CNode* pNext = nullptr;
    CNode* pPrev = nullptr;
};

/// Opaque iteration handle (MFC POSITION).
using POSITION = CNode*;

class CObList : public CObject, public bit::BuiltInTest {
public:
    explicit CObList(int nBlockSize = 10);
    ~CObList() override;

    CObList(const CObList&) = delete;
    CObList& operator=(const CObList&) = delete;

    // ---- Size -------------------------------------------------------------
    [[nodiscard]] int GetCount() const noexcept { return m_nCount; }
    [[nodiscard]] bool IsEmpty() const noexcept { return m_nCount == 0; }

    // ---- Head/tail access --------------------------------------------------
    [[nodiscard]] CObject* GetHead() const;
    [[nodiscard]] CObject* GetTail() const;

    // ---- Insertion (instrumented: AddHead) ---------------------------------
    POSITION AddHead(CObject* newElement);
    POSITION AddTail(CObject* newElement);

    /// MFC bulk overloads: splice a copy of another list's elements onto
    /// this one (the lists stay independent; elements are shared).
    void AddHead(CObList* newList);
    void AddTail(CObList* newList);

    // ---- Removal (instrumented: RemoveHead, RemoveAt) ----------------------
    CObject* RemoveHead();
    CObject* RemoveTail();
    void RemoveAt(POSITION position);
    void RemoveAll();

    // ---- Iteration -----------------------------------------------------------
    [[nodiscard]] POSITION GetHeadPosition() const noexcept { return m_pNodeHead; }
    [[nodiscard]] POSITION GetTailPosition() const noexcept { return m_pNodeTail; }
    CObject* GetNext(POSITION& rPosition) const;
    CObject* GetPrev(POSITION& rPosition) const;

    // ---- Positional access ----------------------------------------------------
    [[nodiscard]] CObject* GetAt(POSITION position) const;
    void SetAt(POSITION position, CObject* newElement);
    POSITION InsertBefore(POSITION position, CObject* newElement);
    POSITION InsertAfter(POSITION position, CObject* newElement);

    // ---- Search -----------------------------------------------------------------
    /// Pointer-identity search starting after `startAfter` (MFC semantics).
    [[nodiscard]] POSITION Find(CObject* searchValue,
                                POSITION startAfter = nullptr) const;
    [[nodiscard]] POSITION FindIndex(int nIndex) const;

    // ---- Built-in test capabilities (paper Fig. 4) ------------------------------
    void InvariantTest() const override;
    void Reporter(std::ostream& os) const override;

    /// The class invariant as a predicate — deliberately MFC-faithful and
    /// *weak*: CObList::AssertValid only checked that an empty list has
    /// null head/tail and a non-empty list has plausible head/tail
    /// pointers.  The paper relies on exactly this assertion strength
    /// (the MFC classes "already contain assertions", §4); a stronger
    /// invariant would change the Table 2/3 oracle balance.
    [[nodiscard]] bool ValidState() const noexcept;

    /// Full structural check (count, forward/backward links, pool
    /// membership, acyclicity).  NOT part of the BIT invariant — this is
    /// the ground-truth predicate the unit tests and property tests use.
    [[nodiscard]] bool DeepValidState() const noexcept;

    void AssertValid() const override;
    [[nodiscard]] std::string ToText() const override;

    /// Representation-faithful copy for campaign checkpoint memoization
    /// (stc::mutation::build_prune_plan): rebuilds this freshly
    /// constructed, empty list into an isomorphic image of `source` —
    /// node-pool graph, element chain, free-list order and count.  A
    /// behavioural copy (re-AddTail the elements) is NOT enough: a
    /// mutated suffix resumed from the checkpoint may read the
    /// representation itself (m_pNodeFree, head/tail links), and a
    /// free list of a different length would change which fault fires.
    /// Touches raw members only — never a mutation site — so cloning
    /// while a mutant is active cannot perturb its hit flag.  Elements
    /// (CObject*) are shared; foreign node pointers (possible only in
    /// corrupted state, which checkpoints never capture) stay foreign.
    void CopyStateFrom(const CObList& source);

protected:
    // Node pool (MFC block allocator surface: a free list of recycled
    // nodes).  Nodes are only ever deleted in the destructor, from the
    // owned set, so corrupted links can never double-free.
    [[nodiscard]] CNode* NewNode();
    /// Links the node into the free list through a checked dereference
    /// (MFC's FreeNode dereferenced unconditionally — null crashed it).
    void FreeNode(CNode* node);

    /// Pool-validated dereference; throws mutation::StructuralFault for
    /// null or foreign pointers (simulated crash; see file comment).
    CNode* checked(CNode* node) const;
    [[nodiscard]] bool is_owned(const CNode* node) const noexcept;

    /// Throws StructuralFault when a traversal exceeds the pool size —
    /// the in-process rendering of an infinite loop over a mutated,
    /// cyclic chain (the paper's runs would hang/crash).
    void bump_guard(int& guard) const;

    /// Bind all class attributes into a mutation frame (shared by every
    /// instrumented method of this class and its subclasses).
    void bind_attrs(mutation::MutFrame& frame) const;

    /// Element order used by sortable subclasses; faults on null data.
    [[nodiscard]] static bool Less(const CObject* a, const CObject* b);

    // MFC attribute names kept verbatim: they are the G/E variable sets
    // of the interface-mutation experiment.
    CNode* m_pNodeHead = nullptr;
    CNode* m_pNodeTail = nullptr;
    CNode* m_pNodeFree = nullptr;
    int m_nCount = 0;
    int m_nBlockSize;

    std::set<const CNode*> owned_;
};

/// Register CObList's mutation descriptors (AddHead, RemoveHead,
/// RemoveAt — the methods of the paper's Table 3 experiment).
void register_coblist_descriptors(mutation::DescriptorRegistry& registry);

}  // namespace stc::mfc
