#include "stc/mfc/component.h"

#include "stc/tspec/builder.h"

namespace stc::mfc {

using domain::Value;
using reflect::Args;
using tspec::MethodCategory;

CObject* ElementPool::make(int value) {
    elements_.push_back(std::make_unique<CInt>(value));
    return elements_.back().get();
}

driver::CompletionRegistry::Completion ElementPool::completion(int lo, int hi) {
    return [this, lo, hi](support::Pcg32& rng) {
        CObject* element = make(static_cast<int>(rng.uniform(lo, hi)));
        return Value::make_pointer(element, "CObject");
    };
}

driver::CompletionRegistry make_completions(ElementPool& pool, int lo, int hi) {
    driver::CompletionRegistry out;
    out.provide("CObject", pool.completion(lo, hi));
    return out;
}

namespace {

/// Shared interface description for both list classes.  `category_of`
/// marks each non-special method per the class's reuse situation.
void add_list_methods(tspec::SpecBuilder& b, const std::string& class_name,
                      MethodCategory base_category) {
    b.method("m1", class_name, MethodCategory::Constructor);
    b.method("m2", "~" + class_name, MethodCategory::Destructor);
    b.method("m3", "AddHead", base_category, "POSITION")
        .param_pointer("newElement", "CObject");
    b.method("m4", "AddTail", base_category, "POSITION")
        .param_pointer("newElement", "CObject");
    b.method("m5", "RemoveHead", base_category, "CObject*");
    b.method("m6", "RemoveTail", base_category, "CObject*");
    b.method("m7", "RemoveAt", base_category).param_range("index", 0, 9);
    b.method("m8", "GetCount", base_category, "int");
    b.method("m9", "FindIndex", base_category, "POSITION")
        .param_range("index", 0, 9);
    b.method("m10", "RemoveAll", base_category);
    b.method("m11", "IsEmpty", base_category, "BOOL");
}

void add_list_attributes(tspec::SpecBuilder& b) {
    b.attr_pointer("m_pNodeHead", "CNode");
    b.attr_pointer("m_pNodeTail", "CNode");
    b.attr_pointer("m_pNodeFree", "CNode");
    b.attr_range("m_nCount", 0, 1000000);
    b.attr_range("m_nBlockSize", 1, 1024);
}

}  // namespace

tspec::ComponentSpec coblist_spec() {
    tspec::SpecBuilder b("CObList");
    b.source_file("src/mfc/coblist.cpp");
    add_list_attributes(b);
    add_list_methods(b, "CObList", MethodCategory::New);

    // TFM: create -> adds (with an add/add cycle) -> removals/queries -> die.
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m3"});   // AddHead
    b.node("n3", false, {"m4"});   // AddTail
    b.node("n4", false, {"m5"});   // RemoveHead
    b.node("n5", false, {"m6"});   // RemoveTail
    b.node("n6", false, {"m7"});   // RemoveAt
    b.node("n7", false, {"m8", "m11"});  // GetCount + IsEmpty
    b.node("n8", false, {"m9"});   // FindIndex
    b.node("n9", false, {"m10"});  // RemoveAll
    b.node("n10", false, {"m2"});  // death

    b.edge("n1", "n2").edge("n1", "n3");
    b.edge("n2", "n3").edge("n2", "n4").edge("n2", "n7").edge("n2", "n10");
    b.edge("n3", "n2").edge("n3", "n5").edge("n3", "n6").edge("n3", "n7");
    b.edge("n4", "n8").edge("n4", "n10");
    b.edge("n5", "n9").edge("n5", "n10");
    b.edge("n6", "n7").edge("n6", "n10");
    b.edge("n7", "n4").edge("n7", "n5").edge("n7", "n10");
    b.edge("n8", "n9").edge("n8", "n10");
    b.edge("n9", "n10");

    return b.build();
}

tspec::ComponentSpec sortable_spec() {
    tspec::SpecBuilder b("CSortableObList");
    b.superclass("CObList");
    b.source_file("src/mfc/sortable.cpp");
    add_list_attributes(b);
    add_list_methods(b, "CSortableObList", MethodCategory::Inherited);
    b.method("m12", "Sort1", MethodCategory::New);
    b.method("m13", "Sort2", MethodCategory::New);
    b.method("m14", "ShellSort", MethodCategory::New);
    b.method("m15", "FindMax", MethodCategory::New, "CObject*");
    b.method("m16", "FindMin", MethodCategory::New, "CObject*");

    // 16 nodes / 43 links — the model size reported in §4.
    b.node("n1", true, {"m1"});
    b.node("n2", false, {"m3"});    // AddHead
    b.node("n3", false, {"m4"});    // AddTail
    b.node("n4", false, {"m12"});   // Sort1
    b.node("n5", false, {"m13"});   // Sort2
    b.node("n6", false, {"m14"});   // ShellSort
    b.node("n7", false, {"m15"});   // FindMax
    b.node("n8", false, {"m16"});   // FindMin
    b.node("n9", false, {"m5"});    // RemoveHead
    b.node("n10", false, {"m6"});   // RemoveTail
    b.node("n11", false, {"m7"});   // RemoveAt
    b.node("n12", false, {"m9"});   // FindIndex
    b.node("n13", false, {"m8"});   // GetCount
    b.node("n14", false, {"m10"});  // RemoveAll
    b.node("n15", false, {"m2"});   // death
    b.node("n16", false, {"m11"});  // IsEmpty

    // The inherited add/remove/query behaviour forms its own rich path
    // family (those transactions are composed only of inherited methods
    // and are therefore *reused, not rerun* by the incremental
    // technique), while the sort/find paths — the ones the subclass must
    // retest — touch the removal methods only through a single
    // FindMax -> RemoveAt link.  This mirrors the situation behind the
    // paper's Table 3: the subclass's test set exercises the base-class
    // removal code only incidentally.
    b.edge("n1", "n2").edge("n1", "n3");
    b.edge("n2", "n3").edge("n3", "n2");
    // inherited-only continuations
    b.edge("n2", "n9").edge("n2", "n10").edge("n2", "n13");
    b.edge("n3", "n9").edge("n3", "n11").edge("n3", "n13").edge("n3", "n12");
    b.edge("n9", "n10").edge("n9", "n12");
    b.edge("n10", "n13").edge("n10", "n14").edge("n10", "n15");
    b.edge("n11", "n14").edge("n11", "n15");
    b.edge("n12", "n11").edge("n12", "n15");
    b.edge("n13", "n9").edge("n13", "n15");
    b.edge("n14", "n16").edge("n14", "n15");
    b.edge("n16", "n15");
    // sort/find phase (new methods -> retested transactions)
    b.edge("n2", "n4").edge("n2", "n5").edge("n2", "n6");
    b.edge("n3", "n4").edge("n3", "n6");
    b.edge("n4", "n7").edge("n4", "n8").edge("n4", "n15");
    b.edge("n5", "n7").edge("n5", "n8").edge("n5", "n15");
    b.edge("n6", "n7").edge("n6", "n8").edge("n6", "n15");
    b.edge("n7", "n8").edge("n7", "n11").edge("n7", "n15");
    b.edge("n8", "n15");

    return b.build();
}

namespace {

std::string text_of(const CObject* object) {
    return object != nullptr ? object->ToText() : "<null>";
}

/// Defensive wrappers shared by both classes: the tester's completion of
/// removal/query calls so that every TFM path is executable on the
/// original component (the paper's baseline outputs were validated clean
/// before the experiments).  On a *mutated* component the same wrappers
/// read corrupted state and fault/diverge — which is the point.
template <typename T>
void add_list_wrappers(reflect::Binder<T>& b) {
    b.template ctor<>();
    // Representation-faithful copy for campaign prefix memoization
    // (CObList::CopyStateFrom): the node-pool graph is cloned
    // isomorphically — chain, free-list order, count — because a mutated
    // suffix resumed from the checkpoint may read the representation
    // itself (m_pNodeFree, head/tail links); a behavioural re-AddTail
    // copy leaves a different free list and changes which fault fires.
    // Raw member writes only, never a mutation site, so cloning while a
    // mutant is active cannot perturb its hit flag.
    b.cloner([](const T& source) {
        auto copy = std::make_unique<T>();
        copy->CopyStateFrom(source);
        return copy.release();
    });
    b.method("AddHead", static_cast<POSITION (T::*)(CObject*)>(&T::AddHead));
    b.method("AddTail", static_cast<POSITION (T::*)(CObject*)>(&T::AddTail));
    b.method("GetCount", &T::GetCount);
    b.method("IsEmpty", &T::IsEmpty);
    b.method("RemoveAll", &T::RemoveAll);
    b.custom("RemoveHead", 0, [](T& list, const Args&) {
        if (list.IsEmpty()) return Value::make_string("<noop>");
        return Value::make_string(text_of(list.RemoveHead()));
    });
    b.custom("RemoveTail", 0, [](T& list, const Args&) {
        if (list.IsEmpty()) return Value::make_string("<noop>");
        return Value::make_string(text_of(list.RemoveTail()));
    });
    b.custom("RemoveAt", 1, [](T& list, const Args& args) {
        if (list.IsEmpty()) return Value::make_string("<noop>");
        const auto index =
            static_cast<int>(args.at(0).as_int() % static_cast<std::int64_t>(
                                                       list.GetCount()));
        const POSITION position = list.FindIndex(index);
        list.RemoveAt(position);
        return Value::make_int(list.GetCount());
    });
    b.custom("FindIndex", 1, [](T& list, const Args& args) {
        if (list.IsEmpty()) return Value::make_string("<none>");
        const auto index =
            static_cast<int>(args.at(0).as_int() % static_cast<std::int64_t>(
                                                       list.GetCount()));
        const POSITION position = list.FindIndex(index);
        if (position == nullptr) return Value::make_string("<none>");
        return Value::make_string(text_of(list.GetAt(position)));
    });
}

}  // namespace

reflect::ClassBinding coblist_binding() {
    reflect::Binder<CObList> b("CObList");
    add_list_wrappers(b);
    return b.take();
}

reflect::ClassBinding sortable_binding() {
    reflect::Binder<CSortableObList> b("CSortableObList");
    add_list_wrappers(b);
    b.method("Sort1", &CSortableObList::Sort1);
    b.method("Sort2", &CSortableObList::Sort2);
    b.method("ShellSort", &CSortableObList::ShellSort);
    b.custom("FindMax", 0, [](CSortableObList& list, const Args&) {
        if (list.IsEmpty()) return Value::make_string("<empty>");
        return Value::make_string(text_of(list.FindMax()));
    });
    b.custom("FindMin", 0, [](CSortableObList& list, const Args&) {
        if (list.IsEmpty()) return Value::make_string("<empty>");
        return Value::make_string(text_of(list.FindMin()));
    });
    return b.take();
}

void register_mfc(reflect::Registry& registry) {
    registry.add(coblist_binding());
    registry.add(sortable_binding());
}

const mutation::DescriptorRegistry& descriptors() {
    static const mutation::DescriptorRegistry registry = [] {
        mutation::DescriptorRegistry r;
        register_coblist_descriptors(r);
        register_sortable_descriptors(r);
        return r;
    }();
    return registry;
}

}  // namespace stc::mfc
