#include "stc/mfc/sortable.h"

#include <algorithm>
#include <vector>

#include "stc/mutation/descriptor.h"

namespace stc::mfc {

using mutation::int_type;
using mutation::MethodDescriptor;
using mutation::MutFrame;
using mutation::pointer_type;
using mutation::StructuralFault;

namespace {

// Bounds-checked element-array access for ShellSort: an out-of-range
// index is the in-process rendering of the buffer overrun the mutated
// original would have committed.
CObject*& at(std::vector<CObject*>& arr, int index) {
    if (index < 0 || index >= static_cast<int>(arr.size())) {
        throw StructuralFault("ShellSort: element index out of bounds");
    }
    return arr[static_cast<std::size_t>(index)];
}

const MethodDescriptor& sort1_desc() {
    static const MethodDescriptor d =
        MethodDescriptor::Builder("CSortableObList", "Sort1")
            .local("pSortedHead", pointer_type("CNode"))
            .local("pCur", pointer_type("CNode"))
            .local("pNext", pointer_type("CNode"))
            .local("pScan", pointer_type("CNode"))
            .local("pRebuild", pointer_type("CNode"))
            .local("pPrevNode", pointer_type("CNode"))
            .attr("m_pNodeHead", pointer_type("CNode"), true)
            .attr("m_pNodeTail", pointer_type("CNode"), true)
            .attr("m_pNodeFree", pointer_type("CNode"), false)
            .attr("m_nCount", int_type(), false)
            .attr("m_nBlockSize", int_type(), false)
            .site("m_pNodeHead", "start of unsorted chain")  // s0
            .site("pCur", "outer loop test")                 // s1
            .site("pCur", "save successor")                  // s2
            .site("pSortedHead", "empty-sorted test")        // s3
            .site("pCur", "compare lhs")                     // s4
            .site("pSortedHead", "compare rhs")              // s5
            .site("pCur", "link to front")                   // s6
            .site("pSortedHead", "old front")                // s7
            .site("pCur", "new front")                       // s8
            .site("pSortedHead", "scan start")               // s9
            .site("pScan", "scan end test")                  // s10
            .site("pCur", "scan compare lhs")                // s11
            .site("pScan", "scan compare rhs")               // s12
            .site("pScan", "scan advance")                   // s13
            .site("pCur", "splice next")                     // s14
            .site("pScan", "splice source")                  // s15
            .site("pScan", "splice target")                  // s16
            .site("pCur", "spliced node")                    // s17
            .site("pNext", "advance outer")                  // s18
            .site("pSortedHead", "new head")                 // s19
            .site("pSortedHead", "rebuild start")            // s20
            .site("pRebuild", "rebuild test")                // s21
            .site("pRebuild", "rebuild backlink")            // s22
            .site("pPrevNode", "backlink value")             // s23
            .site("pRebuild", "rebuild remember")            // s24
            .site("pRebuild", "rebuild advance")             // s25
            .site("pPrevNode", "new tail")                   // s26
            .build();
    return d;
}

const MethodDescriptor& sort2_desc() {
    static const MethodDescriptor d =
        MethodDescriptor::Builder("CSortableObList", "Sort2")
            .local("pI", pointer_type("CNode"))
            .local("pJ", pointer_type("CNode"))
            .local("pMin", pointer_type("CNode"))
            .local("pTemp", pointer_type("CObject"))
            .attr("m_pNodeHead", pointer_type("CNode"), true)
            .attr("m_pNodeTail", pointer_type("CNode"), false)
            .attr("m_pNodeFree", pointer_type("CNode"), false)
            .attr("m_nCount", int_type(), false)
            .attr("m_nBlockSize", int_type(), false)
            .site("m_pNodeHead", "outer start")   // s0
            .site("pI", "outer test")             // s1
            .site("pI", "outer advance")          // s2
            .site("pI", "initial minimum")        // s3
            .site("pI", "inner start")            // s4
            .site("pJ", "inner test")             // s5
            .site("pJ", "inner advance")          // s6
            .site("pJ", "compare lhs")            // s7
            .site("pMin", "compare rhs")          // s8
            .site("pJ", "new minimum")            // s9
            .site("pMin", "swap test lhs")        // s10
            .site("pI", "swap test rhs")          // s11
            .site("pI", "swap read")              // s12
            .site("pI", "swap write")             // s13
            .site("pMin", "swap read")            // s14
            .site("pMin", "swap write")           // s15
            .site("pTemp", "swap restore")        // s16
            .build();
    return d;
}

const MethodDescriptor& shell_sort_desc() {
    static const MethodDescriptor d =
        MethodDescriptor::Builder("CSortableObList", "ShellSort")
            .local("n", int_type())
            .local("gap", int_type())
            .local("i", int_type())
            .local("j", int_type())
            .local("temp", pointer_type("CObject"))
            .local("pWalk", pointer_type("CNode"))
            .attr("m_pNodeHead", pointer_type("CNode"), true)
            .attr("m_nCount", int_type(), true)
            .attr("m_pNodeTail", pointer_type("CNode"), false)
            .attr("m_pNodeFree", pointer_type("CNode"), false)
            .attr("m_nBlockSize", int_type(), false)
            .site("m_nCount", "element count")      // s0
            .site("m_pNodeHead", "fill start")      // s1
            .site("pWalk", "fill test")             // s2
            .site("i", "fill index")                // s3
            .site("pWalk", "fill read")             // s4
            .site("i", "fill increment")            // s5
            .site("pWalk", "fill advance")          // s6
            .site("n", "initial gap")               // s7
            .site("gap", "gap loop test")           // s8
            .site("gap", "gap halving")             // s9
            .site("gap", "i start")                 // s10
            .site("i", "i loop test")               // s11
            .site("n", "i loop bound")              // s12
            .site("i", "i increment")               // s13
            .site("i", "temp read index")           // s14
            .site("i", "j start")                   // s15
            .site("j", "j loop test")               // s16
            .site("gap", "j loop bound")            // s17
            .site("temp", "shift compare lhs")      // s18
            .site("j", "shift compare index")       // s19
            .site("gap", "shift compare offset")    // s20
            .site("j", "j decrement")               // s21
            .site("gap", "j decrement offset")      // s22
            .site("j", "shift write index")         // s23
            .site("j", "shift read index")          // s24
            .site("gap", "shift read offset")       // s25
            .site("j", "temp write index")          // s26
            .site("temp", "temp write value")       // s27
            .site("m_pNodeHead", "write-back start")// s28
            .site("pWalk", "write-back test")       // s29
            .site("pWalk", "write-back target")     // s30
            .site("i", "write-back index")          // s31
            .site("i", "write-back increment")      // s32
            .site("pWalk", "write-back advance")    // s33
            .build();
    return d;
}

const MethodDescriptor& find_max_desc() {
    static const MethodDescriptor d =
        MethodDescriptor::Builder("CSortableObList", "FindMax")
            .local("pCur", pointer_type("CNode"))
            .local("pBest", pointer_type("CObject"))
            .local("i", int_type())
            .attr("m_pNodeHead", pointer_type("CNode"), true)
            .attr("m_nCount", int_type(), true)
            .attr("m_pNodeTail", pointer_type("CNode"), false)
            .attr("m_pNodeFree", pointer_type("CNode"), false)
            .attr("m_nBlockSize", int_type(), false)
            .site("m_pNodeHead", "first element")   // s0
            .site("m_pNodeHead", "scan start")      // s1
            .site("i", "scan loop test")            // s2
            .site("m_nCount", "scan loop bound")    // s3
            .site("pBest", "compare lhs")           // s4
            .site("pCur", "compare rhs")            // s5
            .site("pCur", "new best")               // s6
            .site("pCur", "scan advance")           // s7
            .site("i", "scan increment")            // s8
            .site("pBest", "return value")          // s9
            .build();
    return d;
}

const MethodDescriptor& find_min_desc() {
    static const MethodDescriptor d =
        MethodDescriptor::Builder("CSortableObList", "FindMin")
            .local("pCur", pointer_type("CNode"))
            .local("pBest", pointer_type("CObject"))
            .local("i", int_type())
            .attr("m_pNodeHead", pointer_type("CNode"), true)
            .attr("m_nCount", int_type(), true)
            .attr("m_pNodeTail", pointer_type("CNode"), false)
            .attr("m_pNodeFree", pointer_type("CNode"), false)
            .attr("m_nBlockSize", int_type(), false)
            .site("m_pNodeHead", "first element")   // s0
            .site("m_pNodeHead", "scan start")      // s1
            .site("i", "scan loop test")            // s2
            .site("m_nCount", "scan loop bound")    // s3
            .site("pCur", "compare lhs")            // s4
            .site("pBest", "compare rhs")           // s5
            .site("pCur", "new best")               // s6
            .site("pCur", "scan advance")           // s7
            .site("i", "scan increment")            // s8
            .site("pBest", "return value")          // s9
            .build();
    return d;
}

}  // namespace

void CSortableObList::Sort1() {
    MutFrame frame(sort1_desc());
    bind_attrs(frame);
    CNode* pSortedHead = nullptr;
    CNode* pCur = nullptr;
    CNode* pNext = nullptr;
    CNode* pScan = nullptr;
    CNode* pRebuild = nullptr;
    CNode* pPrevNode = nullptr;
    frame.bind_ptr("pSortedHead", &pSortedHead);
    frame.bind_ptr("pCur", &pCur);
    frame.bind_ptr("pNext", &pNext);
    frame.bind_ptr("pScan", &pScan);
    frame.bind_ptr("pRebuild", &pRebuild);
    frame.bind_ptr("pPrevNode", &pPrevNode);

    pCur = frame.use_ptr(0, m_pNodeHead);
    int guard = 0;
    while (frame.use_ptr(1, pCur) != nullptr) {
        bump_guard(guard);
        pNext = checked(frame.use_ptr(2, pCur))->pNext;
        if (frame.use_ptr(3, pSortedHead) == nullptr ||
            Less(checked(frame.use_ptr(4, pCur))->data,
                 checked(frame.use_ptr(5, pSortedHead))->data)) {
            checked(frame.use_ptr(6, pCur))->pNext = frame.use_ptr(7, pSortedHead);
            pSortedHead = frame.use_ptr(8, pCur);
        } else {
            pScan = frame.use_ptr(9, pSortedHead);
            int scan_guard = 0;
            while (checked(frame.use_ptr(10, pScan))->pNext != nullptr &&
                   !Less(checked(frame.use_ptr(11, pCur))->data,
                         checked(checked(frame.use_ptr(12, pScan))->pNext)->data)) {
                bump_guard(scan_guard);
                pScan = checked(frame.use_ptr(13, pScan))->pNext;
            }
            checked(frame.use_ptr(14, pCur))->pNext =
                checked(frame.use_ptr(15, pScan))->pNext;
            checked(frame.use_ptr(16, pScan))->pNext = frame.use_ptr(17, pCur);
        }
        pCur = frame.use_ptr(18, pNext);
    }

    // Rebuild the doubly linked structure over the sorted chain.
    m_pNodeHead = frame.use_ptr(19, pSortedHead);
    pPrevNode = nullptr;
    pRebuild = frame.use_ptr(20, pSortedHead);
    int rebuild_guard = 0;
    while (frame.use_ptr(21, pRebuild) != nullptr) {
        bump_guard(rebuild_guard);
        checked(frame.use_ptr(22, pRebuild))->pPrev = frame.use_ptr(23, pPrevNode);
        pPrevNode = frame.use_ptr(24, pRebuild);
        pRebuild = checked(frame.use_ptr(25, pRebuild))->pNext;
    }
    m_pNodeTail = frame.use_ptr(26, pPrevNode);

    STC_POSTCONDITION(ValidState());
    STC_POSTCONDITION(IsSorted());
}

void CSortableObList::Sort2() {
    MutFrame frame(sort2_desc());
    bind_attrs(frame);
    CNode* pI = nullptr;
    CNode* pJ = nullptr;
    CNode* pMin = nullptr;
    CObject* pTemp = nullptr;
    frame.bind_ptr("pI", &pI);
    frame.bind_ptr("pJ", &pJ);
    frame.bind_ptr("pMin", &pMin);
    frame.bind_ptr("pTemp", &pTemp);

    int guard = 0;
    for (pI = frame.use_ptr(0, m_pNodeHead); frame.use_ptr(1, pI) != nullptr;
         pI = checked(frame.use_ptr(2, pI))->pNext) {
        bump_guard(guard);
        pMin = frame.use_ptr(3, pI);
        int inner_guard = 0;
        for (pJ = checked(frame.use_ptr(4, pI))->pNext;
             frame.use_ptr(5, pJ) != nullptr;
             pJ = checked(frame.use_ptr(6, pJ))->pNext) {
            bump_guard(inner_guard);
            if (Less(checked(frame.use_ptr(7, pJ))->data,
                     checked(frame.use_ptr(8, pMin))->data)) {
                pMin = frame.use_ptr(9, pJ);
            }
        }
        if (frame.use_ptr(10, pMin) != frame.use_ptr(11, pI)) {
            pTemp = checked(frame.use_ptr(12, pI))->data;
            checked(frame.use_ptr(13, pI))->data =
                checked(frame.use_ptr(14, pMin))->data;
            checked(frame.use_ptr(15, pMin))->data = frame.use_ptr(16, pTemp);
        }
    }

    STC_POSTCONDITION(ValidState());
    STC_POSTCONDITION(IsSorted());
}

void CSortableObList::ShellSort() {
    MutFrame frame(shell_sort_desc());
    bind_attrs(frame);
    int n = 0;
    int gap = 0;
    int i = 0;
    int j = 0;
    CObject* temp = nullptr;
    CNode* pWalk = nullptr;
    frame.bind("n", &n);
    frame.bind("gap", &gap);
    frame.bind("i", &i);
    frame.bind("j", &j);
    frame.bind_ptr("temp", &temp);
    frame.bind_ptr("pWalk", &pWalk);

    n = frame.use(0, m_nCount);
    // The original allocated an n-element array; an absurd n crashed it.
    if (n < 0 || n > static_cast<int>(owned_.size())) {
        throw StructuralFault("ShellSort: absurd element count");
    }
    std::vector<CObject*> arr(static_cast<std::size_t>(n), nullptr);

    // Copy elements into the array.
    pWalk = frame.use_ptr(1, m_pNodeHead);
    i = 0;
    int fill_guard = 0;
    while (frame.use_ptr(2, pWalk) != nullptr) {
        bump_guard(fill_guard);
        at(arr, frame.use(3, i)) = checked(frame.use_ptr(4, pWalk))->data;
        i = frame.use(5, i) + 1;
        pWalk = checked(frame.use_ptr(6, pWalk))->pNext;
    }

    // Shell sort with gap halving.
    int gap_guard = 0;
    for (gap = frame.use(7, n) / 2; frame.use(8, gap) > 0;
         gap = frame.use(9, gap) / 2) {
        bump_guard(gap_guard);
        int i_guard = 0;
        for (i = frame.use(10, gap); frame.use(11, i) < frame.use(12, n);
             i = frame.use(13, i) + 1) {
            bump_guard(i_guard);
            temp = at(arr, frame.use(14, i));
            int j_guard = 0;
            for (j = frame.use(15, i);
                 frame.use(16, j) >= frame.use(17, gap) &&
                 Less(frame.use_ptr(18, temp),
                      at(arr, frame.use(19, j) - frame.use(20, gap)));
                 j = frame.use(21, j) - frame.use(22, gap)) {
                bump_guard(j_guard);
                at(arr, frame.use(23, j)) =
                    at(arr, frame.use(24, j) - frame.use(25, gap));
            }
            at(arr, frame.use(26, j)) = frame.use_ptr(27, temp);
        }
    }

    // Write the sorted order back into the nodes.
    pWalk = frame.use_ptr(28, m_pNodeHead);
    i = 0;
    int back_guard = 0;
    while (frame.use_ptr(29, pWalk) != nullptr) {
        bump_guard(back_guard);
        checked(frame.use_ptr(30, pWalk))->data = at(arr, frame.use(31, i));
        i = frame.use(32, i) + 1;
        pWalk = checked(frame.use_ptr(33, pWalk))->pNext;
    }

    STC_POSTCONDITION(ValidState());
    STC_POSTCONDITION(IsSorted());
}

CObject* CSortableObList::FindMax() const {
    STC_PRECONDITION(!IsEmpty());

    MutFrame frame(find_max_desc());
    bind_attrs(frame);
    CNode* pCur = nullptr;
    CObject* pBest = nullptr;
    int i = 0;
    frame.bind_ptr("pCur", &pCur);
    frame.bind_ptr("pBest", &pBest);
    frame.bind("i", &i);

    // Count-bounded scan: the list knows its length, so the walk is
    // driven by the element count rather than the null terminator.
    pBest = checked(frame.use_ptr(0, m_pNodeHead))->data;
    pCur = checked(frame.use_ptr(1, m_pNodeHead))->pNext;
    i = 1;
    int guard = 0;
    while (frame.use(2, i) < frame.use(3, m_nCount)) {
        bump_guard(guard);
        if (Less(frame.use_ptr(4, pBest), checked(frame.use_ptr(5, pCur))->data)) {
            pBest = checked(frame.use_ptr(6, pCur))->data;
        }
        pCur = checked(frame.use_ptr(7, pCur))->pNext;
        i = frame.use(8, i) + 1;
    }
    return frame.use_ptr(9, pBest);
}

CObject* CSortableObList::FindMin() const {
    STC_PRECONDITION(!IsEmpty());

    MutFrame frame(find_min_desc());
    bind_attrs(frame);
    CNode* pCur = nullptr;
    CObject* pBest = nullptr;
    int i = 0;
    frame.bind_ptr("pCur", &pCur);
    frame.bind_ptr("pBest", &pBest);
    frame.bind("i", &i);

    pBest = checked(frame.use_ptr(0, m_pNodeHead))->data;
    pCur = checked(frame.use_ptr(1, m_pNodeHead))->pNext;
    i = 1;
    int guard = 0;
    while (frame.use(2, i) < frame.use(3, m_nCount)) {
        bump_guard(guard);
        if (Less(checked(frame.use_ptr(4, pCur))->data, frame.use_ptr(5, pBest))) {
            pBest = checked(frame.use_ptr(6, pCur))->data;
        }
        pCur = checked(frame.use_ptr(7, pCur))->pNext;
        i = frame.use(8, i) + 1;
    }
    return frame.use_ptr(9, pBest);
}

void register_sortable_descriptors(mutation::DescriptorRegistry& registry) {
    registry.add(&sort1_desc());
    registry.add(&sort2_desc());
    registry.add(&shell_sort_desc());
    registry.add(&find_max_desc());
    registry.add(&find_min_desc());
}

bool CSortableObList::IsSorted() const noexcept {
    const CNode* node = m_pNodeHead;
    int guard = 0;
    while (node != nullptr) {
        if (!is_owned(node) || ++guard > static_cast<int>(owned_.size())) return false;
        const CNode* next = node->pNext;
        if (next != nullptr) {
            if (!is_owned(next) || node->data == nullptr || next->data == nullptr) {
                return false;
            }
            if (next->data->Compare(*node->data) < 0) return false;
        }
        node = next;
    }
    return true;
}

}  // namespace stc::mfc
