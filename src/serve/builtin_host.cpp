#include "stc/serve/builtin_host.h"

#include <chrono>
#include <map>
#include <utility>

#include "stc/campaign/scheduler.h"
#include "stc/core/self_testable.h"
#include "stc/mfc/component.h"
#include "stc/model/model.h"
#include "stc/mutation/coverage.h"
#include "stc/sandbox/codec.h"
#include "stc/support/error.h"
#include "stc/tfm/coverage.h"

namespace stc::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

std::optional<tfm::Criterion> criterion_from_string(const std::string& text) {
    if (text == "all-transactions") return tfm::Criterion::AllTransactions;
    if (text == "all-links") return tfm::Criterion::AllEdges;
    if (text == "all-nodes") return tfm::Criterion::AllNodes;
    return std::nullopt;
}

/// One mfc component target: an ElementPool arena kept alive behind the
/// component, completions attached — the exact setup `concat campaign`
/// used to hand-build.
BuiltinTarget make_mfc_target(bool sortable) {
    BuiltinTarget target;
    target.make_component = [sortable] {
        struct State {
            mfc::ElementPool pool;
            driver::CompletionRegistry completions;
        };
        auto state = std::make_shared<State>();
        state->completions = mfc::make_completions(state->pool);
        BuiltinComponent out;
        out.keepalive = state;
        out.component.emplace(sortable ? core::SelfTestableComponent(
                                             mfc::sortable_spec(),
                                             mfc::sortable_binding())
                                       : core::SelfTestableComponent(
                                             mfc::coblist_spec(),
                                             mfc::coblist_binding()));
        out.component->set_completions(state->completions);
        out.completions = &state->completions;
        return out;
    };
    target.mutants = [sortable] {
        return mutation::enumerate_mutants(
            mfc::descriptors(), sortable ? "CSortableObList" : "CObList");
    };
    return target;
}

std::map<std::string, BuiltinTarget>& target_registry() {
    static std::map<std::string, BuiltinTarget> registry = [] {
        std::map<std::string, BuiltinTarget> seeded;
        seeded.emplace("coblist", make_mfc_target(false));
        seeded.emplace("sortable", make_mfc_target(true));
        return seeded;
    }();
    return registry;
}

}  // namespace

void register_builtin_target(const std::string& name, BuiltinTarget target) {
    target_registry()[name] = std::move(target);
}

const BuiltinTarget* find_builtin_target(const std::string& name) {
    const auto& registry = target_registry();
    const auto it = registry.find(name);
    return it == registry.end() ? nullptr : &it->second;
}

std::vector<std::string> builtin_target_names() {
    std::vector<std::string> names;
    for (const auto& [name, _] : target_registry()) names.push_back(name);
    return names;
}

obs::JsonObject make_hello(const BuiltinCampaignConfig& config,
                           const std::string& fingerprint) {
    return obs::JsonObject()
        .set("component", config.component)
        .set("seed", config.generator.seed)
        .set("max_visits",
             static_cast<std::uint64_t>(
                 config.generator.enumeration.max_node_visits))
        .set("cases", static_cast<std::uint64_t>(
                          config.generator.cases_per_transaction))
        .set("criterion", tfm::to_string(config.generator.criterion))
        .set("states", config.generator.include_entry_states)
        .set("probe", config.probe)
        .set("model", config.model)
        .set("prune", config.prune)
        .set("fingerprint", fingerprint);
}

std::optional<BuiltinCampaignConfig> parse_hello(const obs::JsonObject& hello,
                                                 std::string* error) {
    BuiltinCampaignConfig config;
    const auto component = hello.get_string("component");
    if (!component) {
        if (error != nullptr) *error = "hello: missing 'component'";
        return std::nullopt;
    }
    config.component = *component;
    if (const auto seed = hello.get_uint("seed")) config.generator.seed = *seed;
    if (const auto visits = hello.get_uint("max_visits")) {
        config.generator.enumeration.max_node_visits =
            static_cast<std::size_t>(*visits);
    }
    if (const auto cases = hello.get_uint("cases")) {
        config.generator.cases_per_transaction =
            static_cast<std::size_t>(*cases);
    }
    if (const auto criterion = hello.get_string("criterion")) {
        const auto parsed = criterion_from_string(*criterion);
        if (!parsed) {
            if (error != nullptr) {
                *error = "hello: unknown criterion '" + *criterion + "'";
            }
            return std::nullopt;
        }
        config.generator.criterion = *parsed;
    }
    config.generator.include_entry_states =
        hello.get_bool("states").value_or(false);
    config.probe = hello.get_bool("probe").value_or(false);
    config.model = hello.get_bool("model").value_or(false);
    // A pre-prune coordinator never prunes; defaulting to false keeps
    // such mixed pairs agreeing (their fingerprints match too, since
    // neither absorbs the prune token).
    config.prune = hello.get_bool("prune").value_or(false);
    return config;
}

struct BuiltinCampaign::Impl {
    BuiltinCampaignConfig config;
    BuiltinComponent holder;
    driver::TestSuite suite;
    std::optional<driver::TestSuite> probe;
    std::vector<mutation::Mutant> mutants;
    mutation::EngineOptions engine;
    std::optional<driver::TestRunner> runner;
    std::optional<driver::TestRunner> probe_runner;
    oracle::GoldenRecord golden;
    oracle::GoldenRecord probe_golden;
    bool baseline_clean = false;
    std::string fingerprint;
    std::vector<campaign::WorkItem> items;
    const reflect::ClassBinding* binding = nullptr;
    bool prune_engaged = false;
    mutation::PrunePlan plan;
};

BuiltinCampaign::BuiltinCampaign() : impl_(std::make_unique<Impl>()) {}
BuiltinCampaign::~BuiltinCampaign() = default;

std::unique_ptr<BuiltinCampaign> BuiltinCampaign::open(
    const BuiltinCampaignConfig& config, std::string* error,
    const obs::Context& obs) {
    const BuiltinTarget* target = find_builtin_target(config.component);
    if (target == nullptr) {
        if (error != nullptr) {
            std::string known;
            for (const auto& name : builtin_target_names()) {
                known += known.empty() ? name : ", " + name;
            }
            *error = "unknown component '" + config.component +
                     "' (expected one of: " + known + ")";
        }
        return nullptr;
    }

    std::unique_ptr<BuiltinCampaign> out(new BuiltinCampaign());
    Impl& s = *out->impl_;
    s.config = config;
    s.engine.obs = obs;
    s.engine.runner.obs = obs;
    s.holder = target->make_component();
    auto& component = *s.holder.component;

    s.suite = component.generate_tests(config.generator);
    if (config.probe) {
        // Same amplification `concat campaign --probe` applies: a
        // decorrelated seed and one extra case per transaction.
        driver::GeneratorOptions probe_options = config.generator;
        probe_options.seed = config.generator.seed ^ 0x9e3779b97f4a7c15ULL;
        probe_options.cases_per_transaction =
            config.generator.cases_per_transaction + 1;
        s.probe = component.generate_tests(probe_options);
    }
    s.mutants =
        target->mutants();

    if (config.model) {
        const driver::ModelBinding* binding =
            model::binding_for(s.suite.class_name);
        if (binding == nullptr) {
            if (error != nullptr) {
                *error = "no reference model for '" + s.suite.class_name + "'";
            }
            return nullptr;
        }
        s.engine.runner.model = binding;
    }

    // Campaign identity, computed exactly as the in-process scheduler
    // does — this is the value the handshake cross-checks.
    campaign::CampaignOptions campaign_options;
    campaign_options.seed = config.generator.seed;
    campaign_options.engine = s.engine;
    campaign_options.prune = config.prune;
    const campaign::CampaignScheduler scheduler(component.registry(),
                                                campaign_options);
    s.fingerprint =
        scheduler.fingerprint(s.suite, s.mutants, s.probe ? &*s.probe : nullptr);
    s.items = campaign::build_work_list(config.generator.seed, s.fingerprint,
                                        s.suite, s.mutants);

    // Golden baselines, captured once per session (the scheduler's
    // "golden-baseline" phase, replicated here because each end of a
    // dispatch owns its own executors).
    s.runner.emplace(component.registry(), s.engine.runner);
    driver::RunnerOptions probe_opts = s.engine.runner;
    probe_opts.observe_each_call = true;
    s.probe_runner.emplace(component.registry(), probe_opts);
    s.prune_engaged = config.prune && s.engine.manual_oracle == nullptr;
    mutation::CoverageIndex coverage;
    mutation::CoverageIndex probe_coverage;
    if (s.prune_engaged) {
        auto covered = mutation::run_with_coverage(component.registry(),
                                                   s.engine.runner, s.suite);
        s.golden = oracle::GoldenRecord::from(covered.result);
        coverage = std::move(covered.index);
    } else {
        s.golden = oracle::GoldenRecord::from(s.runner->run(s.suite));
    }
    s.baseline_clean = s.golden.all_passed();
    if (s.probe) {
        if (s.prune_engaged) {
            auto covered = mutation::run_with_coverage(component.registry(),
                                                       probe_opts, *s.probe);
            s.probe_golden = oracle::GoldenRecord::from(covered.result);
            probe_coverage = std::move(covered.index);
        } else {
            s.probe_golden =
                oracle::GoldenRecord::from(s.probe_runner->run(*s.probe));
        }
    }
    s.binding = &component.registry().at(s.suite.class_name);
    if (s.prune_engaged) {
        // Same plan the in-process scheduler builds: memoization stands
        // down under a lockstep model (resumed runs skip the model leg),
        // coverage pruning stays on.
        mutation::PrunePlanOptions plan_options;
        plan_options.memoize = s.engine.runner.model == nullptr ||
                               !s.engine.runner.model->valid() ||
                               !s.engine.oracle.use_model;
        s.plan = mutation::build_prune_plan(
            *s.runner, *s.binding, s.suite, std::move(coverage),
            s.probe ? &*s.probe_runner : nullptr, s.probe ? &*s.probe : nullptr,
            std::move(probe_coverage), plan_options);
    }
    return out;
}

const BuiltinCampaignConfig& BuiltinCampaign::config() const noexcept {
    return impl_->config;
}
const driver::TestSuite& BuiltinCampaign::suite() const noexcept {
    return impl_->suite;
}
const std::vector<mutation::Mutant>& BuiltinCampaign::mutants() const noexcept {
    return impl_->mutants;
}
const std::string& BuiltinCampaign::fingerprint() const noexcept {
    return impl_->fingerprint;
}
const std::vector<campaign::WorkItem>& BuiltinCampaign::items() const noexcept {
    return impl_->items;
}
const oracle::GoldenRecord& BuiltinCampaign::golden() const noexcept {
    return impl_->golden;
}
bool BuiltinCampaign::baseline_clean() const noexcept {
    return impl_->baseline_clean;
}
bool BuiltinCampaign::pruned() const noexcept {
    return impl_->prune_engaged;
}

mutation::MutantOutcome BuiltinCampaign::evaluate(
    const std::string& mutant_id, mutation::PruneStats* stats) const {
    const Impl& s = *impl_;
    const mutation::Mutant* mutant = nullptr;
    for (const auto& m : s.mutants) {
        if (m.id() == mutant_id) {
            mutant = &m;
            break;
        }
    }
    if (mutant == nullptr) {
        throw Error("unknown mutant '" + mutant_id +
                    "' for component " + s.config.component);
    }
    if (s.prune_engaged) {
        return mutation::evaluate_mutant_pruned(
            *mutant, *s.runner, *s.binding, s.suite, s.golden,
            s.probe ? &*s.probe_runner : nullptr,
            s.probe ? &*s.probe : nullptr, s.probe_golden, s.plan, s.engine,
            stats);
    }
    const mutation::MutationEngine::SuiteExecutor run_suite = [&s] {
        return s.runner->run(s.suite);
    };
    mutation::MutationEngine::SuiteExecutor run_probe;
    if (s.probe) {
        run_probe = [&s] { return s.probe_runner->run(*s.probe); };
    }
    return mutation::evaluate_mutant(*mutant, run_suite, s.golden, run_probe,
                                     s.probe_golden, s.engine);
}

namespace {

class BuiltinSession final : public Session {
public:
    explicit BuiltinSession(std::unique_ptr<BuiltinCampaign> campaign)
        : campaign_(std::move(campaign)) {}

    [[nodiscard]] const std::string& fingerprint() const override {
        return campaign_->fingerprint();
    }

    [[nodiscard]] obs::JsonObject evaluate(
        const obs::JsonObject& work) override {
        const auto item = work.get_uint("item");
        const auto mutant_id = work.get_string("mutant");
        if (!item || !mutant_id) {
            throw Error("work frame missing 'item' or 'mutant'");
        }
        const auto t0 = Clock::now();
        mutation::PruneStats stats;
        const mutation::MutantOutcome outcome =
            campaign_->evaluate(*mutant_id, &stats);
        const double wall = ms_since(t0);
        // Result payload = the sandbox outcome codec (the merge decodes
        // with sandbox::decode_outcome) plus the dispatch bookkeeping.
        // Prune counters ride along only when the fast tier ran, so an
        // unpruned reply carries no misleading zeros.
        auto payload = obs::JsonObject::parse(sandbox::encode_outcome(
            outcome, campaign_->pruned() ? &stats : nullptr));
        if (!payload) throw Error("outcome did not round-trip");
        payload->set("item", *item)
            .set("mutant", *mutant_id)
            .set("wall_ms", wall);
        return *payload;
    }

private:
    std::unique_ptr<BuiltinCampaign> campaign_;
};

}  // namespace

SessionFactory builtin_session_factory() {
    return [](const obs::JsonObject& hello, const obs::Context& obs,
              std::string* error) -> std::unique_ptr<Session> {
        const auto config = parse_hello(hello, error);
        if (!config) return nullptr;
        auto campaign = BuiltinCampaign::open(*config, error, obs);
        if (campaign == nullptr) return nullptr;
        const std::string theirs = hello.get_string("fingerprint").value_or("");
        if (!theirs.empty() && theirs != campaign->fingerprint()) {
            if (error != nullptr) {
                *error = "fingerprint mismatch: coordinator " + theirs +
                         " vs worker " + campaign->fingerprint();
            }
            return nullptr;
        }
        return std::make_unique<BuiltinSession>(std::move(campaign));
    };
}

}  // namespace stc::serve
