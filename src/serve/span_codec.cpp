#include "stc/serve/span_codec.h"

#include <charconv>
#include <cstdint>

#include "stc/obs/json.h"

namespace stc::serve {

namespace {

constexpr std::string_view kPrefix = "{\"kind\":\"span\",\"name\":\"";

constexpr char kHexDigits[] = "0123456789abcdef";

/// JSON-escape `text` onto `out`.  The fast scanner on the read side
/// rejects lines containing backslashes, so escaping here routes such
/// (rare) spans through the generic parser rather than corrupting them.
void append_escaped(std::string& out, std::string_view text) {
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
            out += obs::json_escape(text.substr(i));
            return;
        }
        out += c;
    }
}

void append_uint(std::string& out, std::uint64_t value) {
    char buffer[24];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof buffer, value);
    out.append(buffer, end);
}

void append_int(std::string& out, int value) {
    char buffer[16];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof buffer, value);
    out.append(buffer, end);
}

void append_hex16(std::string& out, std::uint64_t value) {
    char buffer[16];
    for (int i = 15; i >= 0; --i) {
        buffer[i] = kHexDigits[value & 0xf];
        value >>= 4;
    }
    out.append(buffer, 16);
}

/// Sequential scanner over the canonical line.  Every accessor returns
/// false on mismatch, flagging the whole line for the generic path.
struct Scanner {
    std::string_view rest;

    bool literal(std::string_view expected) {
        if (rest.substr(0, expected.size()) != expected) return false;
        rest.remove_prefix(expected.size());
        return true;
    }

    /// Unescaped string value up to the closing quote.  A backslash
    /// bails out: the line took the escaping branch on the write side.
    bool string_value(std::string_view* out) {
        const std::size_t end = rest.find('"');
        if (end == std::string_view::npos) return false;
        const std::string_view value = rest.substr(0, end);
        if (value.find('\\') != std::string_view::npos) return false;
        *out = value;
        rest.remove_prefix(end + 1);  // consume the closing quote too
        return true;
    }

    bool uint_value(std::uint64_t* out) {
        const auto [ptr, ec] =
            std::from_chars(rest.data(), rest.data() + rest.size(), *out);
        if (ec != std::errc() || ptr == rest.data()) return false;
        rest.remove_prefix(static_cast<std::size_t>(ptr - rest.data()));
        return true;
    }

    bool int_value(int* out) {
        const auto [ptr, ec] =
            std::from_chars(rest.data(), rest.data() + rest.size(), *out);
        if (ec != std::errc() || ptr == rest.data()) return false;
        rest.remove_prefix(static_cast<std::size_t>(ptr - rest.data()));
        return true;
    }

    bool hex16_value(std::uint64_t* out) {
        if (rest.size() < 16) return false;
        std::uint64_t value = 0;
        for (int i = 0; i < 16; ++i) {
            const char c = rest[static_cast<std::size_t>(i)];
            value <<= 4;
            if (c >= '0' && c <= '9') {
                value |= static_cast<std::uint64_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                value |= static_cast<std::uint64_t>(c - 'a' + 10);
            } else {
                return false;
            }
        }
        *out = value;
        rest.remove_prefix(16);
        return true;
    }
};

}  // namespace

void append_span_line(std::string& out, const obs::TraceEvent& event) {
    out += kPrefix;
    append_escaped(out, event.name);
    out += "\",\"cat\":\"";
    append_escaped(out, event.category);
    out += "\",\"ts\":";
    append_uint(out, event.ts_us);
    out += ",\"dur\":";
    append_uint(out, event.dur_us);
    out += ",\"tid\":";
    append_int(out, event.tid);
    out += ",\"actor\":";
    append_int(out, event.actor);
    out += ",\"span\":\"";
    append_hex16(out, event.span_id);
    if (event.parent_id != 0) {
        out += "\",\"parent\":\"";
        append_hex16(out, event.parent_id);
    }
    if (event.args.size() > 0) {
        out += "\",\"args\":\"";
        append_escaped(out, event.args.to_line());
    }
    out += "\"}";
}

bool is_span_line(std::string_view line) noexcept {
    return line.substr(0, kPrefix.size()) == kPrefix;
}

std::optional<obs::TraceEvent> parse_span_line(std::string_view line) {
    Scanner in{line};
    obs::TraceEvent event;
    std::string_view name;
    std::string_view category;
    if (!in.literal(kPrefix) || !in.string_value(&name) ||
        !in.literal(",\"cat\":\"") || !in.string_value(&category) ||
        !in.literal(",\"ts\":") || !in.uint_value(&event.ts_us) ||
        !in.literal(",\"dur\":") || !in.uint_value(&event.dur_us) ||
        !in.literal(",\"tid\":") || !in.int_value(&event.tid) ||
        !in.literal(",\"actor\":") || !in.int_value(&event.actor) ||
        !in.literal(",\"span\":\"") || !in.hex16_value(&event.span_id)) {
        return std::nullopt;
    }
    event.name = name;
    event.category = category;
    if (in.literal("\",\"parent\":\"") &&
        !in.hex16_value(&event.parent_id)) {
        return std::nullopt;
    }
    // No args fast path: the args value is a JSON-encoded object, so
    // its quotes arrive escaped and the escape-free scanner would bail
    // anyway.  Args-bearing spans (a handful per campaign — the hot
    // method-call/test-case spans carry none) take the generic parse.
    return in.literal("\"}") && in.rest.empty()
               ? std::optional<obs::TraceEvent>(std::move(event))
               : std::nullopt;
}

}  // namespace stc::serve
