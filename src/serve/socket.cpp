#include "stc/serve/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "stc/support/error.h"

namespace stc::serve {

Fd::~Fd() { close(); }

Fd& Fd::operator=(Fd&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void Fd::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Endpoint parse_endpoint(const std::string& spec) {
    Endpoint out;
    out.spec = spec;
    const auto colon = spec.rfind(':');
    const std::string host =
        colon == std::string::npos ? "" : spec.substr(0, colon);
    const std::string port_text =
        colon == std::string::npos ? spec : spec.substr(colon + 1);
    out.host = host.empty() ? "127.0.0.1" : host;
    std::uint32_t port = 0;
    const auto [p, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc() || p != port_text.data() + port_text.size() ||
        port == 0 || port > 65535) {
        throw Error("bad worker endpoint '" + spec +
                    "' (expected host:port with port 1-65535)");
    }
    out.port = static_cast<std::uint16_t>(port);
    return out;
}

std::vector<Endpoint> parse_endpoints(const std::string& list) {
    std::vector<Endpoint> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        const auto comma = list.find(',', start);
        const std::string token =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!token.empty()) out.push_back(parse_endpoint(token));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    if (out.empty()) throw Error("empty worker endpoint list");
    return out;
}

Fd listen_on(const std::string& host, std::uint16_t port,
             std::uint16_t* bound_port) {
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) throw Error("socket(): " + std::string(strerror(errno)));
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw Error("bad listen address '" + host +
                    "' (expected an IPv4 address, e.g. 127.0.0.1 or 0.0.0.0)");
    }
    addr.sin_port = htons(port);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
        throw Error("bind(" + host + ":" + std::to_string(port) +
                    "): " + std::string(strerror(errno)));
    }
    if (::listen(fd.get(), 8) != 0) {
        throw Error("listen(): " + std::string(strerror(errno)));
    }
    if (bound_port != nullptr) {
        sockaddr_in actual{};
        socklen_t len = sizeof actual;
        if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual),
                          &len) != 0) {
            throw Error("getsockname(): " + std::string(strerror(errno)));
        }
        *bound_port = ntohs(actual.sin_port);
    }
    return fd;
}

Fd accept_on(int listen_fd) {
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            return Fd(fd);
        }
        if (errno == EINTR) continue;
        return Fd();
    }
}

Fd connect_to(const Endpoint& endpoint) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* info = nullptr;
    const int rc = ::getaddrinfo(endpoint.host.c_str(),
                                 std::to_string(endpoint.port).c_str(), &hints,
                                 &info);
    if (rc != 0 || info == nullptr) {
        throw Error("cannot resolve worker '" + endpoint.spec +
                    "': " + gai_strerror(rc));
    }
    Fd fd(::socket(info->ai_family, info->ai_socktype, info->ai_protocol));
    if (!fd.valid()) {
        ::freeaddrinfo(info);
        throw Error("socket(): " + std::string(strerror(errno)));
    }
    int result;
    do {
        result = ::connect(fd.get(), info->ai_addr, info->ai_addrlen);
    } while (result != 0 && errno == EINTR);
    ::freeaddrinfo(info);
    if (result != 0) {
        throw Error("cannot connect to worker '" + endpoint.spec +
                    "': " + std::string(strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
        throw Error("fcntl(O_NONBLOCK): " + std::string(strerror(errno)));
    }
}

}  // namespace stc::serve
