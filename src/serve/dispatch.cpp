#include "stc/serve/dispatch.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <string_view>
#include <utility>

#include "stc/serve/span_codec.h"
#include "stc/support/error.h"
#include "stc/wire/frame.h"

namespace stc::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

constexpr std::ptrdiff_t kNoItem = -1;

struct WorkerState {
    enum class Phase { Handshaking, Ready, Dead };

    Endpoint endpoint;
    Fd fd;
    wire::Decoder decoder;
    Phase phase = Phase::Dead;
    /// Assigned positions in the caller's `items` vector.  Positions,
    /// not WorkItem::index: under `--resume` the caller ships only the
    /// pending subset, so items[pos].index need not equal pos.  The
    /// item's global index travels on the wire and in telemetry.
    std::deque<std::size_t> queue;
    std::ptrdiff_t in_flight = kNoItem;  ///< position of the item sent, or -1
    Clock::time_point last_heard;
    bool ping_outstanding = false;
    /// Protocol minor rev the worker announced in HelloAck (1 when it
    /// predates the field) — gates the end-of-session telemetry drain.
    std::uint64_t proto_minor = 1;
    /// Trace-clock time the in-flight Work was sent (the synthetic
    /// item-dispatch span's start).
    std::uint64_t sent_us = 0;
};

}  // namespace

Coordinator::Coordinator(DispatchOptions options)
    : options_(std::move(options)) {
    if (options_.workers.empty()) {
        throw Error("dispatch needs at least one worker endpoint");
    }
}

DispatchStats Coordinator::run(const std::vector<campaign::WorkItem>& items,
                               const ResultHandler& on_result) {
    // A worker SIGKILLed mid-stream must surface as EPIPE on our next
    // write, not as a SIGPIPE death of the coordinator.
    ::signal(SIGPIPE, SIG_IGN);
    const auto t0 = Clock::now();
    obs::Tracer& tracer = options_.obs.tracer;
    if (tracer.enabled() && tracer.trace_id() == 0) {
        // Mint the campaign-wide trace id from the fingerprint, so the
        // same campaign always produces the same id (and reruns of a
        // different campaign a different one).  Workers stamp it into
        // their streamed trace files via Hello's "trace" field.
        std::uint64_t id = 0;
        for (const unsigned char c : options_.expected_fingerprint) {
            id = obs::mix64(id ^ c);
        }
        tracer.set_trace_id(id != 0 ? id : 1);
    }
    const bool tracing = tracer.enabled();
    const obs::SpanScope span(tracer, "phase", "dispatch");
    // Per-item span id, minted by the coordinator and carried in the
    // Work frame's "parent": the worker's work-item span parents on it,
    // and the coordinator's synthetic item-dispatch span *is* it, which
    // is what links dispatch -> wire -> evaluation in the merged trace.
    auto item_span_id = [&](std::size_t pos) {
        return obs::mix64(
            tracer.trace_id() ^
            obs::mix64(static_cast<std::uint64_t>(items[pos].index) + 1));
    };

    DispatchStats stats;
    stats.workers = options_.workers.size();

    auto emit = [&](const obs::JsonObject& event) {
        if (options_.telemetry) options_.telemetry(event);
    };
    // A Telemetry frame is one worker-streamed span or JSONL event
    // (minor 2), or many of them newline-joined (minor 3 batching);
    // each folds into the coordinator's own instruments.  Never fatal:
    // a malformed payload is dropped, not a protocol error — telemetry
    // must not be able to kill a campaign.
    auto handle_telemetry_line = [&](std::string_view line) {
        // Canonical span lines (the overwhelming majority of streamed
        // telemetry) skip the generic JSON round-trip; anything the
        // strict scanner rejects falls through to the generic path.
        if (is_span_line(line)) {
            if (!tracing) return;
            if (auto fast = parse_span_line(line)) {
                tracer.absorb(std::move(*fast));
                return;
            }
        }
        const auto body = obs::JsonObject::parse(line);
        if (!body) return;
        const std::string kind = body->get_string("kind").value_or("");
        if (kind == "span") {
            if (!tracing) return;
            if (auto event = obs::trace_event_from_json(*body)) {
                tracer.absorb(std::move(*event));
            }
        } else if (kind == "event") {
            const auto data = body->get_string("data");
            if (!data) return;
            if (const auto event = obs::JsonObject::parse(*data)) emit(*event);
        }
    };
    auto handle_telemetry = [&](const std::string& payload) {
        std::size_t start = 0;
        while (start < payload.size()) {
            std::size_t end = payload.find('\n', start);
            if (end == std::string::npos) end = payload.size();
            if (end > start) {
                handle_telemetry_line(
                    std::string_view(payload).substr(start, end - start));
            }
            start = end + 1;
        }
    };

    std::vector<WorkerState> workers(options_.workers.size());
    std::vector<bool> completed(items.size(), false);
    std::size_t remaining = items.size();
    std::size_t redispatch_cursor = 0;
    std::uint64_t ping_nonce = 0;

    auto live_count = [&] {
        std::size_t n = 0;
        for (const WorkerState& w : workers) {
            if (w.phase != WorkerState::Phase::Dead) ++n;
        }
        return n;
    };

    // Declare worker `w` dead and move its unfinished items to the
    // survivors, round-robin.  The items list and partition are
    // deterministic; only this fault path depends on runtime behavior,
    // and item results are schedule-independent, so the merged fates
    // are unchanged by who re-executes what.
    auto fail_worker = [&](std::size_t w, const std::string& reason) {
        WorkerState& state = workers[w];
        if (state.phase == WorkerState::Phase::Dead) return;
        state.phase = WorkerState::Phase::Dead;
        state.fd.close();
        ++stats.disconnects;
        std::deque<std::size_t> unfinished = std::move(state.queue);
        state.queue.clear();
        if (state.in_flight != kNoItem &&
            !completed[static_cast<std::size_t>(state.in_flight)]) {
            unfinished.push_front(static_cast<std::size_t>(state.in_flight));
        }
        state.in_flight = kNoItem;
        emit(obs::JsonObject()
                 .set("event", "worker-disconnect")
                 .set("worker", static_cast<std::uint64_t>(w))
                 .set("endpoint", state.endpoint.spec)
                 .set("reason", reason)
                 .set("unfinished",
                      static_cast<std::uint64_t>(unfinished.size())));
        if (unfinished.empty() || live_count() == 0) return;
        for (const std::size_t pos : unfinished) {
            std::size_t target = redispatch_cursor;
            do {
                target = (target + 1) % workers.size();
            } while (workers[target].phase == WorkerState::Phase::Dead);
            redispatch_cursor = target;
            workers[target].queue.push_back(pos);
            ++stats.redispatched;
            emit(obs::JsonObject()
                     .set("event", "worker-redispatch")
                     .set("item",
                          static_cast<std::uint64_t>(items[pos].index))
                     .set("mutant", items[pos].mutant_id)
                     .set("from", static_cast<std::uint64_t>(w))
                     .set("to", static_cast<std::uint64_t>(target)));
        }
    };

    // Connect and greet every endpoint.  A worker that cannot be
    // reached is a dead worker, not a fatal error — its share moves to
    // the survivors (below), matching the mid-campaign fault path.
    for (std::size_t w = 0; w < workers.size(); ++w) {
        WorkerState& state = workers[w];
        state.endpoint = options_.workers[w];
        try {
            state.fd = connect_to(state.endpoint);
        } catch (const Error& e) {
            emit(obs::JsonObject()
                     .set("event", "worker-disconnect")
                     .set("worker", static_cast<std::uint64_t>(w))
                     .set("endpoint", state.endpoint.spec)
                     .set("reason", std::string("connect: ") + e.what())
                     .set("unfinished", static_cast<std::uint64_t>(0)));
            ++stats.disconnects;
            continue;
        }
        obs::JsonObject hello = options_.hello;
        hello.set("ordinal", static_cast<std::uint64_t>(w));
        hello.set("proto_minor", wire::kProtocolMinor);
        if (tracing) {
            hello.set("trace", obs::hex16(tracer.trace_id()))
                .set("parent", obs::hex16(span.id()))
                .set("now_us", tracer.now_us());
        }
        if (options_.stream_telemetry) {
            hello.set("telemetry_interval_ms",
                      static_cast<std::uint64_t>(
                          std::max(0, options_.telemetry_interval_ms)));
        }
        if (!wire::write_message(state.fd.get(), wire::MessageType::Hello,
                                 hello.to_line())) {
            emit(obs::JsonObject()
                     .set("event", "worker-disconnect")
                     .set("worker", static_cast<std::uint64_t>(w))
                     .set("endpoint", state.endpoint.spec)
                     .set("reason", "hello-write-failed")
                     .set("unfinished", static_cast<std::uint64_t>(0)));
            state.fd.close();
            ++stats.disconnects;
            continue;
        }
        state.phase = WorkerState::Phase::Handshaking;
        state.last_heard = Clock::now();
    }
    if (live_count() == 0) {
        throw Error("dispatch: no worker reachable (" +
                    std::to_string(stats.workers) + " configured)");
    }

    // Deterministic partition by content key; shares of unreachable
    // workers go straight through the redispatch path.
    std::vector<std::size_t> orphaned;
    for (std::size_t pos = 0; pos < items.size(); ++pos) {
        const std::size_t shard =
            campaign::shard_of(items[pos].key, workers.size());
        if (workers[shard].phase == WorkerState::Phase::Dead) {
            orphaned.push_back(pos);
        } else {
            workers[shard].queue.push_back(pos);
        }
    }
    for (const std::size_t pos : orphaned) {
        std::size_t target = redispatch_cursor;
        do {
            target = (target + 1) % workers.size();
        } while (workers[target].phase == WorkerState::Phase::Dead);
        redispatch_cursor = target;
        workers[target].queue.push_back(pos);
        ++stats.redispatched;
        emit(obs::JsonObject()
                 .set("event", "worker-redispatch")
                 .set("item", static_cast<std::uint64_t>(items[pos].index))
                 .set("mutant", items[pos].mutant_id)
                 .set("from",
                      static_cast<std::uint64_t>(campaign::shard_of(
                          items[pos].key, workers.size())))
                 .set("to", static_cast<std::uint64_t>(target)));
    }

    // Drain one decoded message from worker `w`.  Returns false when the
    // worker was failed.
    auto handle_message = [&](std::size_t w, const wire::Message& message) {
        WorkerState& state = workers[w];
        switch (message.type) {
            case wire::MessageType::HelloAck: {
                if (state.phase != WorkerState::Phase::Handshaking) {
                    fail_worker(w, "protocol: unexpected hello-ack");
                    return false;
                }
                const auto ack = obs::JsonObject::parse(message.payload);
                if (!ack) {
                    fail_worker(w, "protocol: unparseable hello-ack");
                    return false;
                }
                if (!ack->get_bool("ok").value_or(false)) {
                    fail_worker(w, "handshake-rejected: " +
                                       ack->get_string("error").value_or("?"));
                    return false;
                }
                const std::string theirs =
                    ack->get_string("fingerprint").value_or("");
                if (!options_.expected_fingerprint.empty() &&
                    theirs != options_.expected_fingerprint) {
                    fail_worker(w, "fingerprint-mismatch: worker " + theirs +
                                       " vs coordinator " +
                                       options_.expected_fingerprint);
                    return false;
                }
                state.phase = WorkerState::Phase::Ready;
                state.proto_minor = ack->get_uint("proto_minor").value_or(1);
                ++stats.workers_connected;
                emit(obs::JsonObject()
                         .set("event", "worker-connect")
                         .set("worker", static_cast<std::uint64_t>(w))
                         .set("endpoint", state.endpoint.spec)
                         .set("fingerprint", theirs)
                         .set("queued",
                              static_cast<std::uint64_t>(state.queue.size())));
                return true;
            }
            case wire::MessageType::Result: {
                if (state.in_flight == kNoItem) {
                    fail_worker(w, "protocol: unsolicited result");
                    return false;
                }
                const auto result = obs::JsonObject::parse(message.payload);
                if (!result) {
                    fail_worker(w, "protocol: unparseable result");
                    return false;
                }
                // The wire carries the item's global index; translate
                // back to the in-flight position in `items`.
                const std::size_t pos =
                    static_cast<std::size_t>(state.in_flight);
                const auto index = result->get_uint("item");
                if (!index ||
                    *index != static_cast<std::uint64_t>(items[pos].index)) {
                    fail_worker(w, "protocol: result for wrong item");
                    return false;
                }
                state.in_flight = kNoItem;
                if (tracing) {
                    // The synthetic item-dispatch span covers the item's
                    // whole round trip on the coordinator's clock; its id
                    // is the minted per-item id the worker's work-item
                    // span named as parent, closing the causal chain.
                    obs::TraceEvent event;
                    event.name = "item-dispatch";
                    event.category = "dispatch";
                    event.ts_us = state.sent_us;
                    const std::uint64_t now_us = tracer.now_us();
                    event.dur_us =
                        now_us > state.sent_us ? now_us - state.sent_us : 0;
                    event.tid = 0;
                    event.actor = tracer.actor();
                    event.span_id = item_span_id(pos);
                    event.parent_id = span.id();
                    event.args =
                        obs::JsonObject()
                            .set("item",
                                 static_cast<std::uint64_t>(items[pos].index))
                            .set("mutant", items[pos].mutant_id)
                            .set("worker", static_cast<std::uint64_t>(w));
                    tracer.absorb(std::move(event));
                }
                if (!completed[pos]) {
                    completed[pos] = true;
                    --remaining;
                    ++stats.executed;
                    obs::JsonObject merged = *result;
                    merged.set("worker", static_cast<std::uint64_t>(w));
                    on_result(items[pos], merged);
                }
                return true;
            }
            case wire::MessageType::Telemetry:
                handle_telemetry(message.payload);
                return true;
            case wire::MessageType::Pong:
                return true;  // silence clock already reset by the read
            case wire::MessageType::Error: {
                const auto error = obs::JsonObject::parse(message.payload);
                fail_worker(
                    w, "peer-error: " +
                           (error ? error->get_string("error").value_or("?")
                                  : std::string("?")));
                return false;
            }
            default:
                fail_worker(w, std::string("protocol: unexpected ") +
                                   wire::to_string(message.type));
                return false;
        }
    };

    const int poll_slice_ms =
        std::max(10, std::min(options_.keepalive_ms / 2, 250));
    while (remaining > 0) {
        if (live_count() == 0) {
            throw Error("dispatch: all workers dead with " +
                        std::to_string(remaining) + " items unfinished");
        }

        // Hand every idle ready worker its next item.
        for (std::size_t w = 0; w < workers.size(); ++w) {
            WorkerState& state = workers[w];
            if (state.phase != WorkerState::Phase::Ready ||
                state.in_flight != kNoItem) {
                continue;
            }
            while (!state.queue.empty() && completed[state.queue.front()]) {
                state.queue.pop_front();  // finished elsewhere meanwhile
            }
            if (state.queue.empty()) continue;
            const std::size_t pos = state.queue.front();
            state.queue.pop_front();
            const campaign::WorkItem& item = items[pos];
            obs::JsonObject work =
                obs::JsonObject()
                    .set("item", static_cast<std::uint64_t>(item.index))
                    .set("mutant", item.mutant_id)
                    .set("item_seed", item.item_seed);
            if (tracing) work.set("parent", obs::hex16(item_span_id(pos)));
            if (!wire::write_message(state.fd.get(), wire::MessageType::Work,
                                     work.to_line())) {
                fail_worker(w, "write-failed: " +
                                   std::string(std::strerror(errno)));
                continue;
            }
            state.in_flight = static_cast<std::ptrdiff_t>(pos);
            state.sent_us = tracer.now_us();
            emit(obs::JsonObject()
                     .set("event", "item-start")
                     .set("item", static_cast<std::uint64_t>(item.index))
                     .set("mutant", item.mutant_id)
                     .set("worker", static_cast<std::uint64_t>(w)));
        }

        // Wait for traffic on any live connection.
        std::vector<pollfd> fds;
        std::vector<std::size_t> fd_owner;
        for (std::size_t w = 0; w < workers.size(); ++w) {
            if (workers[w].phase == WorkerState::Phase::Dead) continue;
            fds.push_back(pollfd{workers[w].fd.get(), POLLIN, 0});
            fd_owner.push_back(w);
        }
        const int ready = ::poll(fds.data(), fds.size(), poll_slice_ms);
        if (ready < 0 && errno != EINTR) {
            throw Error("dispatch poll(): " +
                        std::string(std::strerror(errno)));
        }

        for (std::size_t i = 0; ready > 0 && i < fds.size(); ++i) {
            if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
            const std::size_t w = fd_owner[i];
            WorkerState& state = workers[w];
            if (state.phase == WorkerState::Phase::Dead) continue;
            char chunk[4096];
            const ssize_t got = ::read(state.fd.get(), chunk, sizeof chunk);
            if (got == 0) {
                fail_worker(w, state.decoder.pending_bytes() == 0
                                   ? "peer-closed"
                                   : "torn-frame");
                continue;
            }
            if (got < 0) {
                if (errno == EINTR || errno == EAGAIN) continue;
                fail_worker(w, "read-failed: " +
                                   std::string(std::strerror(errno)));
                continue;
            }
            state.last_heard = Clock::now();
            state.ping_outstanding = false;
            state.decoder.feed(chunk, static_cast<std::size_t>(got));
            for (;;) {
                wire::Message message;
                const wire::Decoder::Status status =
                    state.decoder.next(&message);
                if (status == wire::Decoder::Status::NeedMore) break;
                if (status != wire::Decoder::Status::Ok) {
                    fail_worker(w, std::string("protocol: ") +
                                       wire::to_string(status));
                    break;
                }
                if (!handle_message(w, message)) break;
            }
        }

        // Keepalive bookkeeping: probe the quiet, bury the silent.
        const auto now = Clock::now();
        for (std::size_t w = 0; w < workers.size(); ++w) {
            WorkerState& state = workers[w];
            if (state.phase == WorkerState::Phase::Dead) continue;
            const auto silent_ms =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    now - state.last_heard)
                    .count();
            if (silent_ms > options_.dead_after_ms) {
                fail_worker(w, "keepalive-timeout after " +
                                   std::to_string(silent_ms) + "ms");
            } else if (silent_ms > options_.keepalive_ms &&
                       !state.ping_outstanding) {
                const obs::JsonObject ping =
                    obs::JsonObject().set("nonce", ping_nonce++);
                if (!wire::write_message(state.fd.get(),
                                         wire::MessageType::Ping,
                                         ping.to_line())) {
                    fail_worker(w, "ping-write-failed");
                } else {
                    state.ping_outstanding = true;
                }
            }
        }
    }

    // Campaign complete: a polite Shutdown ends each surviving session.
    // A minor-2 worker flushes its tail telemetry (session-end event,
    // the ended worker-session span, a final metrics snapshot) before
    // closing, so when streaming was negotiated we keep reading its
    // connection until EOF — bounded, in case the worker wedges.
    const bool draining =
        tracing || options_.stream_telemetry;
    const auto drain_deadline =
        Clock::now() + std::chrono::milliseconds(2000);
    for (std::size_t w = 0; w < workers.size(); ++w) {
        WorkerState& state = workers[w];
        if (state.phase == WorkerState::Phase::Dead) continue;
        (void)wire::write_message(state.fd.get(), wire::MessageType::Shutdown,
                                  "");
        if (!draining || state.proto_minor < 2) {
            state.fd.close();
            continue;
        }
        while (Clock::now() < drain_deadline) {
            pollfd pfd{state.fd.get(), POLLIN, 0};
            const int ready = ::poll(&pfd, 1, 100);
            if (ready < 0 && errno != EINTR) break;
            if (ready <= 0) continue;
            char chunk[4096];
            const ssize_t got = ::read(state.fd.get(), chunk, sizeof chunk);
            if (got == 0) break;  // worker flushed and closed
            if (got < 0) {
                if (errno == EINTR || errno == EAGAIN) continue;
                break;
            }
            state.decoder.feed(chunk, static_cast<std::size_t>(got));
            bool poisoned = false;
            for (;;) {
                wire::Message message;
                const wire::Decoder::Status status =
                    state.decoder.next(&message);
                if (status == wire::Decoder::Status::NeedMore) break;
                if (status != wire::Decoder::Status::Ok) {
                    poisoned = true;
                    break;
                }
                if (message.type == wire::MessageType::Telemetry) {
                    handle_telemetry(message.payload);
                }
            }
            if (poisoned) break;
        }
        state.fd.close();
    }

    stats.wall_ms = ms_since(t0);
    options_.obs.metrics.observe_ms("dispatch.wall_ms", stats.wall_ms);
    options_.obs.metrics.add("dispatch.executed", stats.executed);
    options_.obs.metrics.add("dispatch.redispatched", stats.redispatched);
    options_.obs.metrics.add("dispatch.disconnects", stats.disconnects);
    return stats;
}

}  // namespace stc::serve
