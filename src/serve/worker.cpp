#include "stc/serve/worker.h"

#include <csignal>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <sstream>
#include <utility>

#include "stc/serve/span_codec.h"
#include "stc/support/error.h"
#include "stc/wire/frame.h"

namespace stc::serve {

namespace {

/// Read more bytes into the decoder; false on EOF or hard error.
bool pump(int fd, wire::Decoder& decoder) {
    char chunk[4096];
    for (;;) {
        const ssize_t got = ::read(fd, chunk, sizeof chunk);
        if (got > 0) {
            decoder.feed(chunk, static_cast<std::size_t>(got));
            return true;
        }
        if (got == 0) return false;  // EOF: coordinator closed
        if (errno == EINTR) continue;
        return false;
    }
}

}  // namespace

WorkerDaemon::WorkerDaemon(SessionFactory factory, ServeOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {}

WorkerDaemon::~WorkerDaemon() = default;

std::uint16_t WorkerDaemon::bind() {
    // A coordinator can vanish between our read and our write; EPIPE
    // must come back as an error return so the session ends with a
    // worker-disconnect event, not as a SIGPIPE process death.
    ::signal(SIGPIPE, SIG_IGN);
    listener_ = listen_on(options_.bind_host, options_.port, &port_);
    if (options_.telemetry) {
        options_.telemetry(obs::JsonObject()
                               .set("event", "serve-start")
                               .set("port", static_cast<std::uint64_t>(port_)));
    }
    return port_;
}

void WorkerDaemon::serve() {
    if (!listener_.valid()) throw Error("WorkerDaemon::serve before bind");
    while (!stopping_) {
        Fd conn = accept_on(listener_.get());
        if (!conn.valid()) {
            if (stopping_) break;
            continue;
        }
        serve_connection(conn.get());
        ++sessions_;
        if (options_.once) break;
    }
}

void WorkerDaemon::stop() {
    stopping_ = true;
    if (listener_.valid()) {
        // Wakes a blocked accept() with an error; the loop then sees
        // stopping_ and exits.
        ::shutdown(listener_.get(), SHUT_RDWR);
    }
}

void WorkerDaemon::serve_connection(int fd) {
    const obs::SpanScope span(options_.obs.tracer, "phase", "serve-session");
    wire::Decoder decoder;
    std::unique_ptr<Session> session;
    std::uint64_t ordinal = 0;
    std::size_t items = 0;

    // Streaming state (protocol minor 2, docs/FORMATS.md §11): set up at
    // Hello when the coordinator announces minor >= 2 and asks for spans
    // ("trace") and/or telemetry events ("telemetry_interval_ms").
    std::uint64_t peer_minor = 1;
    bool stream_events = false;
    std::uint64_t telemetry_interval_ms = 0;
    obs::Tracer session_tracer;    // enabled only when streaming spans
    obs::Metrics session_metrics;  // enabled only when streaming events
    obs::Tracer::Span session_span;
    std::size_t span_cursor = 0;
    // Worker span timestamps are rebased onto the coordinator's trace
    // clock: Hello carries the coordinator's now_us, and the session
    // tracer's epoch is "now" at Hello time, so the offset aligns the
    // two timelines to within the handshake's network latency.
    std::int64_t ts_offset_us = 0;
    auto last_snapshot = std::chrono::steady_clock::now();

    auto emit = [&](const obs::JsonObject& event) {
        if (options_.telemetry) options_.telemetry(event);
    };
    // Minor-3 peers accept many newline-joined payloads per Telemetry
    // frame, so spans and events coalesce here and flush once per work
    // item (or at this size cap) instead of paying one write() syscall
    // each — the difference between ~95 and ~1600 items/s on a hot
    // campaign with streaming enabled.
    constexpr std::size_t kTelemetryBatchBytes = 32 * 1024;
    std::string telemetry_batch;
    auto flush_telemetry = [&] {
        if (telemetry_batch.empty()) return true;
        const bool ok = wire::write_message(fd, wire::MessageType::Telemetry,
                                            telemetry_batch);
        telemetry_batch.clear();
        return ok;
    };
    auto send_telemetry = [&](const obs::JsonObject& payload) {
        if (peer_minor < 3) {
            return wire::write_message(fd, wire::MessageType::Telemetry,
                                       payload.to_line());
        }
        if (!telemetry_batch.empty()) telemetry_batch += '\n';
        telemetry_batch += payload.to_line();
        return telemetry_batch.size() < kTelemetryBatchBytes
                   ? true
                   : flush_telemetry();
    };
    /// Ship one JSONL event to the coordinator's telemetry stream (and
    /// the daemon's own sink).  False only on a dead socket.
    auto emit_streamed = [&](const obs::JsonObject& event) {
        emit(event);
        if (!stream_events) return true;
        return send_telemetry(obs::JsonObject()
                                  .set("kind", "event")
                                  .set("data", event.to_line()));
    };
    /// Ship the session tracer's newly completed spans.  Spans are by
    /// far the hottest telemetry (tens of thousands per campaign), so
    /// minor-3 peers get the canonical codec line appended straight
    /// into the batch — no intermediate JsonObject per span.
    auto drain_spans = [&] {
        if (!session_tracer.enabled()) return true;
        for (obs::TraceEvent event : session_tracer.events_from(span_cursor)) {
            ++span_cursor;
            const std::int64_t ts =
                static_cast<std::int64_t>(event.ts_us) + ts_offset_us;
            event.ts_us = ts > 0 ? static_cast<std::uint64_t>(ts) : 0;
            if (peer_minor >= 3) {
                if (!telemetry_batch.empty()) telemetry_batch += '\n';
                append_span_line(telemetry_batch, event);
                if (telemetry_batch.size() >= kTelemetryBatchBytes &&
                    !flush_telemetry()) {
                    return false;
                }
            } else {
                auto payload = obs::trace_event_to_json(event);
                payload.set("kind", "span");
                if (!send_telemetry(payload)) return false;
            }
        }
        return true;
    };
    /// Ship one metrics snapshot; `force` ignores the cadence (the
    /// end-of-session flush).
    auto snapshot_metrics = [&](bool force) {
        if (!stream_events || !session_metrics.enabled()) return true;
        const auto now = std::chrono::steady_clock::now();
        if (!force) {
            if (telemetry_interval_ms == 0) return true;
            const auto since_ms =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    now - last_snapshot)
                    .count();
            if (since_ms < static_cast<std::int64_t>(telemetry_interval_ms)) {
                return true;
            }
        }
        last_snapshot = now;
        std::ostringstream json;
        session_metrics.write_json(json);
        std::string text = json.str();
        if (!text.empty() && text.back() == '\n') text.pop_back();
        return emit_streamed(obs::JsonObject()
                                 .set("event", "metrics-snapshot")
                                 .set("worker", ordinal)
                                 .set("metrics", text));
    };
    auto disconnect = [&](const std::string& reason) {
        emit(obs::JsonObject()
                 .set("event", "worker-disconnect")
                 .set("worker", ordinal)
                 .set("items", static_cast<std::uint64_t>(items))
                 .set("reason", reason));
    };
    auto fail = [&](const std::string& message) {
        // Best effort: the peer may already be gone.
        (void)wire::write_message(
            fd, wire::MessageType::Error,
            obs::JsonObject().set("error", message).to_line());
        disconnect(message);
    };

    for (;;) {
        wire::Message message;
        const wire::Decoder::Status status = decoder.next(&message);
        if (status == wire::Decoder::Status::NeedMore) {
            if (!pump(fd, decoder)) {
                // Coordinator hung up.  Mid-handshake or mid-frame that
                // is an abnormal end; after a Shutdown we never reach
                // here (the Shutdown branch returns).
                disconnect(decoder.pending_bytes() == 0 ? "peer-closed"
                                                        : "torn-frame");
                return;
            }
            continue;
        }
        if (status != wire::Decoder::Status::Ok) {
            std::string what = std::string("protocol: ") + to_string(status);
            if (status == wire::Decoder::Status::BadVersion) {
                what += " (peer v" + std::to_string(decoder.peer_version()) +
                        ", this daemon v" +
                        std::to_string(wire::kProtocolVersion) + ")";
            }
            fail(what);
            return;
        }

        switch (message.type) {
            case wire::MessageType::Hello: {
                if (session != nullptr) {
                    // Mirrors the coordinator's duplicate-HelloAck
                    // handling: a session is configured exactly once.
                    fail("protocol: hello after handshake");
                    return;
                }
                const auto hello = obs::JsonObject::parse(message.payload);
                if (!hello) {
                    fail("handshake: unparseable hello payload");
                    return;
                }
                ordinal = hello->get_uint("ordinal").value_or(0);
                peer_minor = hello->get_uint("proto_minor").value_or(1);
                obs::Context session_obs = options_.obs;
                if (peer_minor >= 2) {
                    stream_events = hello->has("telemetry_interval_ms");
                    telemetry_interval_ms =
                        hello->get_uint("telemetry_interval_ms").value_or(0);
                    if (const auto trace = hello->get_string("trace")) {
                        // Span ids are qualified by actor = ordinal + 1
                        // (the coordinator is actor 0), so the merged
                        // trace is collision-free by construction.
                        session_tracer = obs::Tracer::make(
                            static_cast<int>(ordinal) + 1);
                        session_tracer.set_trace_id(obs::from_hex16(*trace));
                        ts_offset_us = static_cast<std::int64_t>(
                                           hello->get_uint("now_us").value_or(
                                               0)) -
                                       static_cast<std::int64_t>(
                                           session_tracer.now_us());
                        session_span = session_tracer.begin_with_parent(
                            "phase", "worker-session",
                            obs::from_hex16(
                                hello->get_string("parent").value_or("")),
                            obs::JsonObject().set("worker", ordinal));
                        session_obs.tracer = session_tracer;
                    }
                    if (stream_events) {
                        session_metrics = obs::Metrics::make();
                        session_obs.metrics = session_metrics;
                    }
                }
                std::string error;
                session = factory_(*hello, session_obs, &error);
                obs::JsonObject ack;
                ack.set("ok", session != nullptr);
                ack.set("proto_minor", wire::kProtocolMinor);
                if (session != nullptr) {
                    ack.set("fingerprint", session->fingerprint());
                } else {
                    ack.set("error", error);
                }
                if (!wire::write_message(fd, wire::MessageType::HelloAck,
                                         ack.to_line())) {
                    disconnect("peer-closed");
                    return;
                }
                if (session == nullptr) {
                    disconnect("handshake-rejected: " + error);
                    return;
                }
                if (!emit_streamed(
                        obs::JsonObject()
                            .set("event", "worker-session")
                            .set("worker", ordinal)
                            .set("fingerprint", session->fingerprint())
                            .set("class",
                                 hello->get_string("class").value_or(""))) ||
                    !flush_telemetry()) {
                    disconnect("peer-closed");
                    return;
                }
                break;
            }
            case wire::MessageType::Work: {
                if (session == nullptr) {
                    fail("protocol: work before hello");
                    return;
                }
                const auto work = obs::JsonObject::parse(message.payload);
                if (!work) {
                    fail("protocol: unparseable work payload");
                    return;
                }
                obs::JsonObject result;
                try {
                    // The coordinator's "parent" is its minted per-item
                    // span id: everything the evaluation records nests
                    // under this span, which nests under that id in the
                    // merged trace.
                    const obs::SpanScope item_span(
                        session_tracer, "serve", "work-item",
                        obs::from_hex16(
                            work->get_string("parent").value_or("")),
                        obs::JsonObject()
                            .set("item", work->get_uint("item").value_or(0))
                            .set("mutant",
                                 work->get_string("mutant").value_or("")));
                    result = session->evaluate(*work);
                } catch (const Error& e) {
                    fail(std::string("evaluate: ") + e.what());
                    return;
                }
                if (!wire::write_message(fd, wire::MessageType::Result,
                                         result.to_line())) {
                    disconnect("peer-closed");
                    return;
                }
                ++items;
                obs::JsonObject finish = result;
                finish.set("event", "item-finish").set("worker", ordinal);
                if (!emit_streamed(finish) || !drain_spans() ||
                    !snapshot_metrics(false) || !flush_telemetry()) {
                    disconnect("peer-closed");
                    return;
                }
                break;
            }
            case wire::MessageType::Ping: {
                if (!wire::write_message(fd, wire::MessageType::Pong,
                                         message.payload)) {
                    disconnect("peer-closed");
                    return;
                }
                break;
            }
            case wire::MessageType::Shutdown: {
                // Final flush, best effort: the coordinator keeps
                // reading until EOF after its Shutdown, so the session
                // span (ended here, not by RAII — it must be complete
                // before the drain) and closing snapshot still arrive.
                (void)emit_streamed(
                    obs::JsonObject()
                        .set("event", "worker-session-end")
                        .set("worker", ordinal)
                        .set("items", static_cast<std::uint64_t>(items)));
                if (session_tracer.enabled()) {
                    session_tracer.end(std::move(session_span));
                    (void)drain_spans();
                }
                (void)snapshot_metrics(true);
                (void)flush_telemetry();
                return;
            }
            case wire::MessageType::Error: {
                const auto error = obs::JsonObject::parse(message.payload);
                disconnect("peer-error: " +
                           (error ? error->get_string("error").value_or("?")
                                  : std::string("?")));
                return;
            }
            default:
                fail(std::string("protocol: unexpected ") +
                     to_string(message.type));
                return;
        }
    }
}

}  // namespace stc::serve
