#include "stc/serve/worker.h"

#include <csignal>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "stc/support/error.h"
#include "stc/wire/frame.h"

namespace stc::serve {

namespace {

/// Read more bytes into the decoder; false on EOF or hard error.
bool pump(int fd, wire::Decoder& decoder) {
    char chunk[4096];
    for (;;) {
        const ssize_t got = ::read(fd, chunk, sizeof chunk);
        if (got > 0) {
            decoder.feed(chunk, static_cast<std::size_t>(got));
            return true;
        }
        if (got == 0) return false;  // EOF: coordinator closed
        if (errno == EINTR) continue;
        return false;
    }
}

}  // namespace

WorkerDaemon::WorkerDaemon(SessionFactory factory, ServeOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {}

WorkerDaemon::~WorkerDaemon() = default;

std::uint16_t WorkerDaemon::bind() {
    // A coordinator can vanish between our read and our write; EPIPE
    // must come back as an error return so the session ends with a
    // worker-disconnect event, not as a SIGPIPE process death.
    ::signal(SIGPIPE, SIG_IGN);
    listener_ = listen_on(options_.bind_host, options_.port, &port_);
    if (options_.telemetry) {
        options_.telemetry(obs::JsonObject()
                               .set("event", "serve-start")
                               .set("port", static_cast<std::uint64_t>(port_)));
    }
    return port_;
}

void WorkerDaemon::serve() {
    if (!listener_.valid()) throw Error("WorkerDaemon::serve before bind");
    while (!stopping_) {
        Fd conn = accept_on(listener_.get());
        if (!conn.valid()) {
            if (stopping_) break;
            continue;
        }
        serve_connection(conn.get());
        ++sessions_;
        if (options_.once) break;
    }
}

void WorkerDaemon::stop() {
    stopping_ = true;
    if (listener_.valid()) {
        // Wakes a blocked accept() with an error; the loop then sees
        // stopping_ and exits.
        ::shutdown(listener_.get(), SHUT_RDWR);
    }
}

void WorkerDaemon::serve_connection(int fd) {
    const obs::SpanScope span(options_.obs.tracer, "phase", "serve-session");
    wire::Decoder decoder;
    std::unique_ptr<Session> session;
    std::uint64_t ordinal = 0;
    std::size_t items = 0;
    auto emit = [&](const obs::JsonObject& event) {
        if (options_.telemetry) options_.telemetry(event);
    };
    auto disconnect = [&](const std::string& reason) {
        emit(obs::JsonObject()
                 .set("event", "worker-disconnect")
                 .set("worker", ordinal)
                 .set("items", static_cast<std::uint64_t>(items))
                 .set("reason", reason));
    };
    auto fail = [&](const std::string& message) {
        // Best effort: the peer may already be gone.
        (void)wire::write_message(
            fd, wire::MessageType::Error,
            obs::JsonObject().set("error", message).to_line());
        disconnect(message);
    };

    for (;;) {
        wire::Message message;
        const wire::Decoder::Status status = decoder.next(&message);
        if (status == wire::Decoder::Status::NeedMore) {
            if (!pump(fd, decoder)) {
                // Coordinator hung up.  Mid-handshake or mid-frame that
                // is an abnormal end; after a Shutdown we never reach
                // here (the Shutdown branch returns).
                disconnect(decoder.pending_bytes() == 0 ? "peer-closed"
                                                        : "torn-frame");
                return;
            }
            continue;
        }
        if (status != wire::Decoder::Status::Ok) {
            std::string what = std::string("protocol: ") + to_string(status);
            if (status == wire::Decoder::Status::BadVersion) {
                what += " (peer v" + std::to_string(decoder.peer_version()) +
                        ", this daemon v" +
                        std::to_string(wire::kProtocolVersion) + ")";
            }
            fail(what);
            return;
        }

        switch (message.type) {
            case wire::MessageType::Hello: {
                if (session != nullptr) {
                    // Mirrors the coordinator's duplicate-HelloAck
                    // handling: a session is configured exactly once.
                    fail("protocol: hello after handshake");
                    return;
                }
                const auto hello = obs::JsonObject::parse(message.payload);
                if (!hello) {
                    fail("handshake: unparseable hello payload");
                    return;
                }
                std::string error;
                session = factory_(*hello, &error);
                ordinal = hello->get_uint("ordinal").value_or(0);
                obs::JsonObject ack;
                ack.set("ok", session != nullptr);
                if (session != nullptr) {
                    ack.set("fingerprint", session->fingerprint());
                } else {
                    ack.set("error", error);
                }
                if (!wire::write_message(fd, wire::MessageType::HelloAck,
                                         ack.to_line())) {
                    disconnect("peer-closed");
                    return;
                }
                if (session == nullptr) {
                    disconnect("handshake-rejected: " + error);
                    return;
                }
                emit(obs::JsonObject()
                         .set("event", "worker-session")
                         .set("worker", ordinal)
                         .set("fingerprint", session->fingerprint())
                         .set("class",
                              hello->get_string("class").value_or("")));
                break;
            }
            case wire::MessageType::Work: {
                if (session == nullptr) {
                    fail("protocol: work before hello");
                    return;
                }
                const auto work = obs::JsonObject::parse(message.payload);
                if (!work) {
                    fail("protocol: unparseable work payload");
                    return;
                }
                obs::JsonObject result;
                try {
                    result = session->evaluate(*work);
                } catch (const Error& e) {
                    fail(std::string("evaluate: ") + e.what());
                    return;
                }
                if (!wire::write_message(fd, wire::MessageType::Result,
                                         result.to_line())) {
                    disconnect("peer-closed");
                    return;
                }
                ++items;
                obs::JsonObject finish = result;
                finish.set("event", "item-finish").set("worker", ordinal);
                emit(finish);
                break;
            }
            case wire::MessageType::Ping: {
                if (!wire::write_message(fd, wire::MessageType::Pong,
                                         message.payload)) {
                    disconnect("peer-closed");
                    return;
                }
                break;
            }
            case wire::MessageType::Shutdown: {
                emit(obs::JsonObject()
                         .set("event", "worker-session-end")
                         .set("worker", ordinal)
                         .set("items", static_cast<std::uint64_t>(items)));
                return;
            }
            case wire::MessageType::Error: {
                const auto error = obs::JsonObject::parse(message.payload);
                disconnect("peer-error: " +
                           (error ? error->get_string("error").value_or("?")
                                  : std::string("?")));
                return;
            }
            default:
                fail(std::string("protocol: unexpected ") +
                     to_string(message.type));
                return;
        }
    }
}

}  // namespace stc::serve
