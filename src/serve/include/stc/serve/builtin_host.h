// The built-in-component host of the campaign service: everything both
// ends of a `concat dispatch` need to agree on, derived from one small
// handshake config.
//
// The Hello payload carries only the campaign *inputs* (component name,
// seed, generator knobs, probe/model switches).  Coordinator and worker
// each reconstruct the full campaign — spec, suite, mutants, golden
// baselines, fingerprint — from those inputs independently; the
// fingerprint cross-check at handshake then proves they reconstructed
// the same campaign (same code, same config) before any work is
// shipped.  Item results are pure functions of that shared state plus
// the item id, which is why a dispatched campaign's fates are
// byte-identical to a local `concat campaign` run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stc/campaign/work_list.h"
#include "stc/core/self_testable.h"
#include "stc/driver/generator.h"
#include "stc/mutation/engine.h"
#include "stc/mutation/prune.h"
#include "stc/obs/json.h"
#include "stc/serve/worker.h"

namespace stc::serve {

/// A freshly constructed component under test, plus whatever arenas its
/// completion closures point into.  `keepalive` owns the pools; it must
/// outlive `component` (declaration order guarantees destruction order).
struct BuiltinComponent {
    std::shared_ptr<void> keepalive;
    std::optional<core::SelfTestableComponent> component;
    /// Completions the component was configured with (shrink replay
    /// needs them); points into `keepalive`, may be null.
    const driver::CompletionRegistry* completions = nullptr;
};

/// One campaign target name both ends of a dispatch can reconstruct
/// from: how to make the component under test (with completions
/// attached) and its mutant population.  The mutant population is
/// independent of the component under test on purpose — an assembly
/// target evaluates *member-class* mutants (e.g. Wallet's) through the
/// assembly's public interface.
struct BuiltinTarget {
    std::function<BuiltinComponent()> make_component;
    std::function<std::vector<mutation::Mutant>()> mutants;
    /// Product of an assembly (stc::assembly): `concat campaign` and
    /// `concat dispatch` require --assembly for these targets so a
    /// caller cannot confuse single-class and composed campaigns.
    bool assembly = false;
};

/// Register (or replace) a campaign target.  The mfc components
/// ("coblist", "sortable") are pre-registered; examples add "wallet"
/// and "shop" via stc::examples::register_example_targets().
void register_builtin_target(const std::string& name, BuiltinTarget target);

/// Look up a target; nullptr when unknown.
[[nodiscard]] const BuiltinTarget* find_builtin_target(const std::string& name);

/// Registered target names, sorted (for error messages and --help).
[[nodiscard]] std::vector<std::string> builtin_target_names();

/// The campaign inputs that travel in a Hello payload.
struct BuiltinCampaignConfig {
    std::string component;  ///< a registered target name, e.g. "coblist"
    driver::GeneratorOptions generator;
    bool probe = false;  ///< amplified probe suite for equivalence
    bool model = false;  ///< lockstep reference-model oracle
    /// Coverage-signature pruning + prefix memoization (the campaign
    /// fast tier).  Part of the fingerprint, so both ends must agree —
    /// the handshake cross-check enforces it.
    bool prune = true;
};

/// Render the Hello payload (docs/FORMATS.md §10).  `fingerprint` is
/// the sender's own campaign fingerprint; the receiver re-derives and
/// cross-checks it.
[[nodiscard]] obs::JsonObject make_hello(const BuiltinCampaignConfig& config,
                                         const std::string& fingerprint);

/// Parse a Hello payload; std::nullopt with `*error` set on an unknown
/// component or criterion.  Missing optional fields take the same
/// defaults `concat campaign` uses.
[[nodiscard]] std::optional<BuiltinCampaignConfig> parse_hello(
    const obs::JsonObject& hello, std::string* error);

/// One fully reconstructed builtin campaign: component, suite, mutant
/// population, golden baselines, fingerprint, work list.  Both sides
/// of a dispatch open one of these from the same config.
class BuiltinCampaign {
public:
    ~BuiltinCampaign();
    BuiltinCampaign(const BuiltinCampaign&) = delete;
    BuiltinCampaign& operator=(const BuiltinCampaign&) = delete;

    /// Build the campaign; nullptr with `*error` set on an unknown
    /// component or a model request without a registered model.  `obs`
    /// is wired into the mutation engine and runners, so evaluation
    /// spans/metrics land in the caller's instruments (a worker
    /// session's streaming tracer, or the process's own --trace-out).
    [[nodiscard]] static std::unique_ptr<BuiltinCampaign> open(
        const BuiltinCampaignConfig& config, std::string* error,
        const obs::Context& obs = {});

    [[nodiscard]] const BuiltinCampaignConfig& config() const noexcept;
    [[nodiscard]] const driver::TestSuite& suite() const noexcept;
    [[nodiscard]] const std::vector<mutation::Mutant>& mutants() const noexcept;
    [[nodiscard]] const std::string& fingerprint() const noexcept;
    [[nodiscard]] const std::vector<campaign::WorkItem>& items() const noexcept;
    [[nodiscard]] const oracle::GoldenRecord& golden() const noexcept;
    [[nodiscard]] bool baseline_clean() const noexcept;
    /// True when the fast tier is engaged for this campaign.
    [[nodiscard]] bool pruned() const noexcept;

    /// Evaluate one mutant against the suite (and probe suite, when
    /// configured) — the same evaluate_mutant call the in-process
    /// scheduler makes, so fates match it exactly.  Throws stc::Error
    /// on an unknown mutant id.  With the fast tier engaged the pruned
    /// evaluator runs instead (same fates, enforced by
    /// tests/prune_test.cpp); `stats`, when given, accumulates its
    /// executed/pruned/memoized pair counters.
    [[nodiscard]] mutation::MutantOutcome evaluate(
        const std::string& mutant_id,
        mutation::PruneStats* stats = nullptr) const;

private:
    BuiltinCampaign();
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// The worker-side SessionFactory over the built-in components: parses
/// the Hello, opens the campaign, rejects on config errors or a
/// fingerprint mismatch, then serves evaluate() per Work item.
[[nodiscard]] SessionFactory builtin_session_factory();

}  // namespace stc::serve
