// Coordinator side of the campaign service (`concat dispatch`).
//
// The coordinator owns the campaign: it builds the work list, shards it
// deterministically across the configured workers (shard_of over the
// item's content key, so the same campaign splits identically on every
// run), drives each worker over one TCP connection, and merges the
// Result stream back into per-item slots — completion order never leaks
// into the merged output, exactly as in the in-process scheduler.
//
// Fault model: a worker is dead when its connection EOFs, its stream
// fails to decode, a write to it errors, or it stays silent past
// `dead_after_ms` (keepalive Pings are sent after `keepalive_ms` of
// silence).  A dead worker's unfinished items — queued and in-flight —
// are re-dispatched round-robin to the survivors; item results are a
// pure function of (handshake config, item), so re-execution elsewhere
// yields the same fates.  Only when every worker is dead with items
// still unfinished does the dispatch fail.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stc/campaign/work_list.h"
#include "stc/obs/context.h"
#include "stc/obs/json.h"
#include "stc/serve/socket.h"

namespace stc::serve {

struct DispatchOptions {
    /// Worker endpoints (`--workers host:port[,host:port...]`).  List
    /// order defines worker ordinals, which name workers in telemetry.
    std::vector<Endpoint> workers;
    /// Hello payload sent to every worker (builtin_host.h builds it for
    /// the built-in components); the coordinator adds the per-worker
    /// "ordinal" field.
    obs::JsonObject hello;
    /// The coordinator's own campaign fingerprint.  Every HelloAck is
    /// cross-checked against it — a worker that computed a different
    /// fingerprint from the same config is running different code and
    /// would poison the merge, so it is rejected as dead.
    std::string expected_fingerprint;
    /// Silence (ms) after which a worker is probed with a Ping.
    int keepalive_ms = 500;
    /// Silence (ms) after which a worker is declared dead.
    int dead_after_ms = 5000;
    obs::Context obs;
    /// JSONL telemetry sink (worker-connect / worker-disconnect /
    /// worker-redispatch / item-start events); may be empty.  When
    /// streaming is negotiated, the workers' own events (item-finish,
    /// worker-session, metrics-snapshot) arrive here too, making this
    /// one sink fleet-wide (docs/FORMATS.md §11).
    std::function<void(const obs::JsonObject&)> telemetry;
    /// Ask minor-2 workers to stream their telemetry events back over
    /// the socket (the `--telemetry-out` fleet aggregation).
    bool stream_telemetry = false;
    /// Metrics-snapshot cadence requested from streaming workers
    /// (`--telemetry-interval-ms`); 0 = item-fate events only, no
    /// periodic snapshots.
    int telemetry_interval_ms = 1000;
};

struct DispatchStats {
    std::size_t workers = 0;            ///< configured endpoints
    std::size_t workers_connected = 0;  ///< completed the handshake
    std::size_t disconnects = 0;        ///< died at any point
    std::size_t redispatched = 0;       ///< items moved off dead workers
    std::size_t executed = 0;           ///< results merged
    double wall_ms = 0.0;
};

class Coordinator {
public:
    /// Called once per merged result, in completion order; `result` is
    /// the worker's Result payload (sandbox codec fields + "item" +
    /// "wall_ms" + "worker").  Slot the outcome by item.index.
    using ResultHandler = std::function<void(const campaign::WorkItem& item,
                                             const obs::JsonObject& result)>;

    explicit Coordinator(DispatchOptions options);

    /// Drive `items` to completion across the workers.  `items` may be
    /// any subset of a campaign's work list (e.g. the pending remainder
    /// of a `--resume`): bookkeeping is positional, and the wire
    /// carries each item's global WorkItem::index.  Throws stc::Error
    /// when no worker survives the handshake or all workers die with
    /// items unfinished.
    DispatchStats run(const std::vector<campaign::WorkItem>& items,
                      const ResultHandler& on_result);

private:
    DispatchOptions options_;
};

}  // namespace stc::serve
