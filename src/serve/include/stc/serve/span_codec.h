// Fast wire codec for streamed worker spans.
//
// Telemetry frames carry spans as flat JSON lines (docs/FORMATS.md
// §11); on a hot campaign tens of thousands of them cross the socket,
// and the generic JsonObject round-trip (build object -> render ->
// tokenize -> rebuild object) costs several microseconds per span —
// enough to dominate a streamed run on a small machine.  This codec
// writes and reads the *canonical* span line directly:
//
//   {"kind":"span","name":...,"cat":...,"ts":N,"dur":N,"tid":N,
//    "actor":N,"span":"<hex16>"[,"parent":"<hex16>"][,"args":"..."]}
//
// The wire format is unchanged — the line is ordinary JSON and any
// peer may still parse it generically.  The reader only accepts this
// exact field order; anything else (a minor-2 peer's "kind"-last
// line, escaped strings, an "args" field — whose JSON-encoded value
// always carries escaped quotes) returns nullopt and the caller falls
// back to JsonObject::parse + trace_event_from_json.  The hot span
// categories (method-call, test-case) never carry args, so the fast
// path covers virtually the whole stream.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "stc/obs/trace.h"

namespace stc::serve {

/// Append the canonical streamed-span line for `event` to `out` (no
/// trailing newline).  Inverse of parse_span_line.
void append_span_line(std::string& out, const obs::TraceEvent& event);

/// Cheap prefix test: does `line` start like a canonical span line?
[[nodiscard]] bool is_span_line(std::string_view line) noexcept;

/// Strict parse of one canonical span line.  nullopt when the line is
/// not in canonical form — never throws; the caller must then fall
/// back to the generic JSON path, so a nullopt is a slow path, not an
/// error.
[[nodiscard]] std::optional<obs::TraceEvent> parse_span_line(
    std::string_view line);

}  // namespace stc::serve
