// Worker daemon side of the campaign service (`concat serve`).
//
// A daemon owns one listening socket and serves one coordinator at a
// time.  A session begins with a Hello handshake (protocol version is
// checked by the frame decoder; component, seed, oracle/model config
// and campaign fingerprint by the SessionFactory), then loops:
//
//     Work {item, mutant, item_seed}  ->  Result {item, fate, ...}
//     Ping {nonce}                    ->  Pong {nonce}
//     Shutdown | EOF                  ->  session ends
//
// The daemon is deliberately component-agnostic: everything that knows
// about t-specs, suites and mutants arrives through the SessionFactory
// (serve/builtin_host.h provides the factory for the built-in MFC
// components).  A handshake the factory rejects — unknown component,
// fingerprint mismatch — answers HelloAck{ok:false} and closes; a peer
// speaking the wrong protocol version or garbage gets an Error frame
// naming the problem.  Either way the daemon survives and accepts the
// next coordinator (unless `once`).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "stc/obs/context.h"
#include "stc/obs/json.h"
#include "stc/serve/socket.h"

namespace stc::serve {

/// One accepted campaign: built by the SessionFactory from the Hello
/// payload, asked to evaluate each assigned work item.
class Session {
public:
    virtual ~Session() = default;

    /// The campaign fingerprint this session computed from the
    /// handshake config — echoed in HelloAck for the coordinator's
    /// cross-check.
    [[nodiscard]] virtual const std::string& fingerprint() const = 0;

    /// Evaluate one work item ({"item": N, "mutant": id, "item_seed":
    /// S}); returns the Result payload ({"item": N, "fate": ...,
    /// "reason": ..., "hit": ..., "probe_kill": ..., "model_only": ...,
    /// "wall_ms": ...}).  Throwing aborts the session with an Error
    /// frame.
    [[nodiscard]] virtual obs::JsonObject evaluate(
        const obs::JsonObject& work) = 0;
};

/// Build a Session from a Hello payload, or nullptr with `*error` set
/// (the HelloAck rejection message).  `obs` is the observability
/// context the session's executors should record into: the daemon's own
/// instruments normally, or a per-session streaming tracer/metrics pair
/// when the coordinator negotiated telemetry streaming (protocol minor
/// 2, docs/FORMATS.md §11).
using SessionFactory = std::function<std::unique_ptr<Session>(
    const obs::JsonObject& hello, const obs::Context& obs,
    std::string* error)>;

struct ServeOptions {
    /// TCP port to listen on; 0 picks an ephemeral port (bind() reports
    /// the choice — the in-process test/bench path).
    std::uint16_t port = 0;
    /// Listen address.  The protocol has no authentication, so the
    /// default is loopback-only; `concat serve --bind 0.0.0.0` opts in
    /// to cross-host exposure (docs/FORMATS.md §10 trust model).
    std::string bind_host = "127.0.0.1";
    /// Exit the serve loop after one coordinator session (CI gates and
    /// tests; a long-lived daemon keeps accepting).
    bool once = false;
    obs::Context obs;
    /// JSONL telemetry event sink (serve-start / worker-session /
    /// item-finish / worker-disconnect events); may be empty.
    std::function<void(const obs::JsonObject&)> telemetry;
};

class WorkerDaemon {
public:
    WorkerDaemon(SessionFactory factory, ServeOptions options);
    ~WorkerDaemon();

    WorkerDaemon(const WorkerDaemon&) = delete;
    WorkerDaemon& operator=(const WorkerDaemon&) = delete;

    /// Bind the listening socket; returns the bound port.  Throws
    /// stc::Error when the port is taken.  Also installs the process's
    /// SIGPIPE-ignore disposition: a coordinator that vanishes mid-write
    /// must surface as an I/O error on this daemon, not kill it.
    std::uint16_t bind();

    /// Accept-and-serve loop.  Returns after one session when `once`,
    /// after stop() otherwise.  bind() must have been called.
    void serve();

    /// Ask a serve() loop on another thread to exit after the current
    /// session (closes the listening socket).
    void stop();

    /// Sessions served so far.
    [[nodiscard]] std::size_t sessions() const noexcept { return sessions_; }

private:
    void serve_connection(int fd);

    SessionFactory factory_;
    ServeOptions options_;
    Fd listener_;
    std::uint16_t port_ = 0;
    std::size_t sessions_ = 0;
    bool stopping_ = false;
};

}  // namespace stc::serve
