// Minimal POSIX TCP plumbing for the campaign service: an owning fd,
// a listener, and a connector.  IPv4 only — the deployment unit is a
// lab or CI host pool, not the open internet; docs/GUIDE.md §9 covers
// the operational model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stc::serve {

/// Owning file descriptor (close-on-destroy, move-only).
class Fd {
public:
    Fd() = default;
    explicit Fd(int fd) noexcept : fd_(fd) {}
    ~Fd();

    Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd& operator=(Fd&& other) noexcept;
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

    [[nodiscard]] int get() const noexcept { return fd_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    void close() noexcept;

private:
    int fd_ = -1;
};

/// One `host:port` worker address.  `spec` preserves the user's exact
/// token for diagnostics and telemetry.
struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
    std::string spec;
};

/// Parse "host:port" (host defaults to 127.0.0.1 for a bare ":port" or
/// "port" token).  Throws stc::Error on a malformed spec.
[[nodiscard]] Endpoint parse_endpoint(const std::string& spec);

/// Split "a:1,b:2" into endpoints; throws on any malformed element.
[[nodiscard]] std::vector<Endpoint> parse_endpoints(const std::string& list);

/// Bind + listen on `host:port` (0 picks an ephemeral port); on return
/// `*bound_port` holds the actual port.  `host` is a dotted-quad
/// listen address: "127.0.0.1" (the safe default — the protocol has no
/// authentication) or "0.0.0.0" for deliberate cross-host exposure.
/// Throws stc::Error on failure.
[[nodiscard]] Fd listen_on(const std::string& host, std::uint16_t port,
                           std::uint16_t* bound_port);

/// Accept one connection (blocking); invalid Fd on failure/interrupt.
[[nodiscard]] Fd accept_on(int listen_fd);

/// Blocking connect; throws stc::Error naming the endpoint on failure.
[[nodiscard]] Fd connect_to(const Endpoint& endpoint);

/// Put a socket into non-blocking mode (the coordinator's poll loop).
void set_nonblocking(int fd);

}  // namespace stc::serve
