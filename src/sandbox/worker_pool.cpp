#include "stc/sandbox/worker_pool.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <utility>

#include "stc/sandbox/ipc.h"

namespace stc::sandbox {

const char* to_string(WorkerEventKind kind) noexcept {
    switch (kind) {
        case WorkerEventKind::Spawn: return "worker-spawn";
        case WorkerEventKind::Exit: return "worker-exit";
        case WorkerEventKind::Kill: return "worker-kill";
    }
    return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

/// Writing a request to a worker that just died must be an EPIPE error
/// return, not a fatal signal.
void ignore_sigpipe_once() {
    static const bool installed = [] {
        std::signal(SIGPIPE, SIG_IGN);
        return true;
    }();
    (void)installed;
}

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

struct Worker {
    pid_t pid = -1;
    int req_fd = -1;   ///< parent writes requests here
    int resp_fd = -1;  ///< parent reads replies here (nonblocking)
    FrameBuffer buf;
    bool busy = false;
    bool deadline_killed = false;
    std::size_t item = 0;
    Clock::time_point started{};
    Clock::time_point deadline{};

    [[nodiscard]] bool alive() const noexcept { return pid > 0; }
};

[[noreturn]] void child_main(const Job& job, int req_read, int resp_write) {
    for (;;) {
        auto request = read_frame(req_read);
        if (!request) ::_exit(0);  // parent closed the request pipe
        std::string reply;
        try {
            reply = job(*request);
        } catch (...) {
            ::_exit(kWorkerFailureExit);
        }
        if (!write_frame(resp_write, reply)) ::_exit(kWorkerFailureExit);
    }
}

void set_nonblocking(int fd) noexcept {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void close_fd(int& fd) noexcept {
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/// Fork one worker into `slot`.  The child closes its siblings' pipe
/// ends (so their EOFs stay meaningful), installs the rlimit fences,
/// and enters the job loop; it never returns.
bool spawn_worker(Worker& slot, const Job& job, const SandboxLimits& limits,
                  const std::vector<Worker>* siblings) {
    int req[2];
    int resp[2];
    if (::pipe(req) != 0) return false;
    if (::pipe(resp) != 0) {
        ::close(req[0]);
        ::close(req[1]);
        return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(req[0]);
        ::close(req[1]);
        ::close(resp[0]);
        ::close(resp[1]);
        return false;
    }
    if (pid == 0) {
        ::close(req[1]);
        ::close(resp[0]);
        if (siblings != nullptr) {
            for (const Worker& sibling : *siblings) {
                if (&sibling == &slot) continue;
                if (sibling.req_fd >= 0) ::close(sibling.req_fd);
                if (sibling.resp_fd >= 0) ::close(sibling.resp_fd);
            }
        }
        apply_limits_in_child(limits);
        child_main(job, req[0], resp[1]);
    }
    ::close(req[0]);
    ::close(resp[1]);
    slot.pid = pid;
    slot.req_fd = req[1];
    slot.resp_fd = resp[0];
    set_nonblocking(slot.resp_fd);
    slot.buf.clear();
    slot.busy = false;
    slot.deadline_killed = false;
    return true;
}

/// Reap a dead (or dying) worker and decode how it ended.  Blocks in
/// waitpid — callers only reach this after EOF on the reply pipe or
/// after sending SIGKILL, so the wait is momentary.
DecodedExit reap_worker(Worker& worker) {
    int status = 0;
    pid_t got = -1;
    do {
        got = ::waitpid(worker.pid, &status, 0);
    } while (got < 0 && errno == EINTR);
    const DecodedExit decoded =
        decode_wait_status(got == worker.pid ? status : 0,
                           worker.deadline_killed);
    close_fd(worker.req_fd);
    close_fd(worker.resp_fd);
    worker.pid = -1;
    worker.busy = false;
    worker.deadline_killed = false;
    worker.buf.clear();
    return decoded;
}

enum class ReadStatus { Open, Eof };

/// Pull everything currently readable into the worker's frame buffer.
ReadStatus drain(Worker& worker) {
    char chunk[4096];
    for (;;) {
        const ssize_t got = ::read(worker.resp_fd, chunk, sizeof chunk);
        if (got > 0) {
            worker.buf.feed(chunk, static_cast<std::size_t>(got));
            continue;
        }
        if (got == 0) return ReadStatus::Eof;
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::Open;
        return ReadStatus::Eof;  // unexpected read error: treat as dead
    }
}

/// Shared per-impl bookkeeping for the pool and the single runner.
struct PoolCore {
    Job job;
    SandboxLimits limits;
    obs::Context obs;
    std::function<void(const WorkerEvent&)> on_event;
    PoolStats stats;

    void emit(WorkerEventKind kind, std::size_t slot, pid_t pid,
              std::string detail) {
        if (obs.metrics.enabled()) {
            obs.metrics.add(std::string("sandbox.") + to_string(kind));
        }
        if (obs.tracer.enabled()) {
            obs::JsonObject args;
            args.set("worker", static_cast<std::uint64_t>(slot));
            args.set("pid", static_cast<std::int64_t>(pid));
            if (!detail.empty()) args.set("detail", detail);
            auto span = obs.tracer.begin("sandbox", to_string(kind),
                                         std::move(args));
            obs.tracer.end(std::move(span));
        }
        if (on_event) {
            WorkerEvent event;
            event.kind = kind;
            event.worker = slot;
            event.pid = static_cast<std::int64_t>(pid);
            event.detail = std::move(detail);
            on_event(event);
        }
    }

    void count_outcome(const DecodedExit& exit) {
        switch (exit.kind) {
            case ExitKind::Ok: break;
            case ExitKind::CrashSignal: ++stats.crashes; break;
            case ExitKind::Timeout: ++stats.timeouts; break;
            case ExitKind::ResourceLimit: ++stats.resource_limits; break;
            case ExitKind::WorkerExit: ++stats.worker_exits; break;
        }
        if (obs.metrics.enabled() && exit.kind != ExitKind::Ok) {
            obs.metrics.add(std::string("sandbox.outcome.") +
                            to_string(exit.kind));
        }
    }

    bool spawn(Worker& slot, std::size_t ordinal,
               const std::vector<Worker>* siblings) {
        const bool respawn = ordinal_seen(ordinal);
        if (!spawn_worker(slot, job, limits, siblings)) return false;
        ++stats.spawned;
        if (respawn) ++stats.respawned;
        emit(WorkerEventKind::Spawn, ordinal, slot.pid, "");
        return true;
    }

    bool ordinal_seen(std::size_t ordinal) {
        if (ordinal < seen_.size() && seen_[ordinal]) return true;
        if (ordinal >= seen_.size()) seen_.resize(ordinal + 1, false);
        seen_[ordinal] = true;
        return false;
    }

private:
    std::vector<bool> seen_;
};

}  // namespace

struct WorkerPool::Impl {
    PoolCore core;
    std::function<void(std::size_t, std::size_t)> on_dispatch;
    std::size_t configured_workers = 1;
    std::vector<Worker> workers;
};

WorkerPool::WorkerPool(Job job, PoolOptions options)
    : impl_(std::make_unique<Impl>()) {
    ignore_sigpipe_once();
    impl_->core.job = std::move(job);
    impl_->core.limits = options.limits;
    impl_->core.obs = options.obs;
    impl_->core.on_event = std::move(options.on_event);
    impl_->on_dispatch = std::move(options.on_dispatch);
    impl_->configured_workers = std::max<std::size_t>(1, options.workers);
}

WorkerPool::~WorkerPool() {
    if (impl_ == nullptr) return;
    for (std::size_t i = 0; i < impl_->workers.size(); ++i) {
        Worker& worker = impl_->workers[i];
        if (!worker.alive()) continue;
        close_fd(worker.req_fd);
        (void)reap_worker(worker);
    }
}

const PoolStats& WorkerPool::stats() const noexcept {
    return impl_->core.stats;
}

void WorkerPool::run(
    const std::vector<std::string>& payloads,
    const std::function<void(std::size_t, TaskResult)>& on_result) {
    const std::size_t n = payloads.size();
    if (n == 0) return;
    PoolCore& core = impl_->core;
    auto& workers = impl_->workers;
    workers.assign(std::min(impl_->configured_workers, n), Worker{});

    std::size_t next = 0;
    std::size_t completed = 0;

    // Hand the next pending payload to `slot`, forking a fresh worker
    // if its previous occupant died.  A worker found dead at dispatch
    // time (it exited after its last reply) is reaped, replaced, and
    // the same item retried; two consecutive failures classify the
    // item as a worker exit rather than looping.
    auto dispatch = [&](std::size_t slot) {
        Worker& worker = workers[slot];
        std::size_t attempts = 0;
        while (next < n) {
            if (!worker.alive() &&
                !core.spawn(worker, slot, &workers)) {
                // fork failed (EAGAIN/ENOMEM in the parent): surface
                // the item as a worker exit and keep the run alive.
                TaskResult result;
                result.exit = DecodedExit{ExitKind::WorkerExit, 0, -1};
                result.worker = slot;
                on_result(next, std::move(result));
                ++next;
                ++completed;
                continue;
            }
            const std::size_t item = next;
            if (!write_frame(worker.req_fd, payloads[item])) {
                const pid_t pid = worker.pid;
                const DecodedExit decoded = reap_worker(worker);
                core.emit(WorkerEventKind::Exit, slot, pid,
                          outcome_kind(decoded));
                if (++attempts >= 2) {
                    TaskResult result;
                    result.exit = DecodedExit{ExitKind::WorkerExit, 0, -1};
                    result.worker = slot;
                    on_result(item, std::move(result));
                    ++next;
                    ++completed;
                    attempts = 0;
                }
                continue;
            }
            ++next;
            worker.busy = true;
            worker.deadline_killed = false;
            worker.item = item;
            worker.started = Clock::now();
            if (core.limits.timeout_ms > 0) {
                worker.deadline =
                    worker.started +
                    std::chrono::milliseconds(core.limits.timeout_ms);
            }
            if (impl_->on_dispatch) impl_->on_dispatch(item, slot);
            return;
        }
    };

    for (std::size_t i = 0; i < workers.size(); ++i) dispatch(i);

    std::vector<pollfd> fds;
    std::vector<std::size_t> slots;
    while (completed < n) {
        // Poll timeout: the earliest busy-worker deadline.
        int timeout = -1;
        if (core.limits.timeout_ms > 0) {
            const auto now = Clock::now();
            for (const Worker& worker : workers) {
                if (!worker.alive() || !worker.busy) continue;
                const auto remain =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        worker.deadline - now)
                        .count();
                const int t =
                    remain <= 0 ? 0 : static_cast<int>(remain) + 1;
                timeout = timeout < 0 ? t : std::min(timeout, t);
            }
        }

        fds.clear();
        slots.clear();
        for (std::size_t i = 0; i < workers.size(); ++i) {
            if (!workers[i].alive()) continue;
            fds.push_back(pollfd{workers[i].resp_fd, POLLIN, 0});
            slots.push_back(i);
        }
        if (fds.empty()) {
            // Every worker is dead and nothing is in flight; dispatch
            // re-forks as needed.
            for (std::size_t i = 0; i < workers.size() && completed < n; ++i) {
                dispatch(i);
            }
            if (completed >= n) break;
            continue;
        }
        int rc = -1;
        do {
            rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout);
        } while (rc < 0 && errno == EINTR);

        // Deadline escalation: SIGKILL every busy worker past its
        // budget.  The kill surfaces as EOF on its reply pipe, reaped
        // below with deadline_killed set, which decodes as Timeout.
        if (core.limits.timeout_ms > 0) {
            const auto now = Clock::now();
            for (std::size_t i = 0; i < workers.size(); ++i) {
                Worker& worker = workers[i];
                if (!worker.alive() || !worker.busy ||
                    worker.deadline_killed || now < worker.deadline) {
                    continue;
                }
                ::kill(worker.pid, SIGKILL);
                worker.deadline_killed = true;
                ++core.stats.kills;
                core.emit(WorkerEventKind::Kill, i, worker.pid, "timeout");
            }
        }

        for (std::size_t f = 0; f < fds.size(); ++f) {
            if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
                continue;
            }
            const std::size_t slot = slots[f];
            Worker& worker = workers[slot];
            if (!worker.alive()) continue;
            ReadStatus status = drain(worker);

            // Complete reply frames first: a worker that replied and
            // then died (mutant called exit) still completed its item.
            while (auto frame = worker.buf.take_frame()) {
                if (!worker.busy) continue;  // stray frame: drop it
                TaskResult result;
                result.payload = std::move(*frame);
                result.worker = slot;
                result.wall_ms = ms_since(worker.started);
                worker.busy = false;
                on_result(worker.item, std::move(result));
                ++completed;
            }
            if (worker.buf.oversized()) {
                // Protocol corruption; discard the worker.
                ::kill(worker.pid, SIGKILL);
                const pid_t pid = worker.pid;
                const bool was_busy = worker.busy;
                const std::size_t item = worker.item;
                const double wall =
                    was_busy ? ms_since(worker.started) : 0.0;
                (void)reap_worker(worker);
                const DecodedExit decoded{ExitKind::WorkerExit, 0, -2};
                core.emit(WorkerEventKind::Exit, slot, pid,
                          outcome_kind(decoded));
                if (was_busy) {
                    core.count_outcome(decoded);
                    TaskResult result;
                    result.exit = decoded;
                    result.worker = slot;
                    result.wall_ms = wall;
                    on_result(item, std::move(result));
                    ++completed;
                }
                dispatch(slot);
                continue;
            }
            if (status == ReadStatus::Eof) {
                const pid_t pid = worker.pid;
                const bool was_busy = worker.busy;
                const std::size_t item = worker.item;
                const double wall =
                    was_busy ? ms_since(worker.started) : 0.0;
                const DecodedExit decoded = reap_worker(worker);
                core.emit(WorkerEventKind::Exit, slot, pid,
                          was_busy ? outcome_kind(decoded) : "");
                if (was_busy) {
                    core.count_outcome(decoded);
                    TaskResult result;
                    result.exit = decoded;
                    result.worker = slot;
                    result.wall_ms = wall;
                    on_result(item, std::move(result));
                    ++completed;
                }
                dispatch(slot);
            } else if (!worker.busy) {
                dispatch(slot);
            }
        }
    }

    // Orderly shutdown: closing the request pipes EOFs every idle
    // child out of read_frame, so they _exit(0).
    for (std::size_t i = 0; i < workers.size(); ++i) {
        Worker& worker = workers[i];
        if (!worker.alive()) continue;
        close_fd(worker.req_fd);
        const pid_t pid = worker.pid;
        (void)reap_worker(worker);
        core.emit(WorkerEventKind::Exit, i, pid, "");
    }
}

struct SandboxRunner::Impl {
    PoolCore core;
    Worker worker;
};

SandboxRunner::SandboxRunner(Job job, SandboxLimits limits,
                             std::function<void(const WorkerEvent&)> on_event)
    : impl_(std::make_unique<Impl>()) {
    ignore_sigpipe_once();
    impl_->core.job = std::move(job);
    impl_->core.limits = limits;
    impl_->core.on_event = std::move(on_event);
}

SandboxRunner::~SandboxRunner() {
    if (impl_ == nullptr || !impl_->worker.alive()) return;
    close_fd(impl_->worker.req_fd);
    (void)reap_worker(impl_->worker);
}

const PoolStats& SandboxRunner::stats() const noexcept {
    return impl_->core.stats;
}

TaskResult SandboxRunner::call(const std::string& payload) {
    PoolCore& core = impl_->core;
    Worker& worker = impl_->worker;

    std::size_t attempts = 0;
    for (;;) {
        if (!worker.alive() && !core.spawn(worker, 0, nullptr)) {
            TaskResult result;
            result.exit = DecodedExit{ExitKind::WorkerExit, 0, -1};
            return result;
        }
        if (write_frame(worker.req_fd, payload)) break;
        const pid_t pid = worker.pid;
        const DecodedExit decoded = reap_worker(worker);
        core.emit(WorkerEventKind::Exit, 0, pid, outcome_kind(decoded));
        if (++attempts >= 2) {
            TaskResult result;
            result.exit = DecodedExit{ExitKind::WorkerExit, 0, -1};
            return result;
        }
    }

    worker.busy = true;
    worker.deadline_killed = false;
    worker.started = Clock::now();
    if (core.limits.timeout_ms > 0) {
        worker.deadline =
            worker.started + std::chrono::milliseconds(core.limits.timeout_ms);
    }

    for (;;) {
        int timeout = -1;
        if (core.limits.timeout_ms > 0 && !worker.deadline_killed) {
            const auto remain =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    worker.deadline - Clock::now())
                    .count();
            if (remain <= 0) {
                ::kill(worker.pid, SIGKILL);
                worker.deadline_killed = true;
                ++core.stats.kills;
                core.emit(WorkerEventKind::Kill, 0, worker.pid, "timeout");
            } else {
                timeout = static_cast<int>(remain) + 1;
            }
        }
        pollfd pfd{worker.resp_fd, POLLIN, 0};
        int rc = -1;
        do {
            rc = ::poll(&pfd, 1, timeout);
        } while (rc < 0 && errno == EINTR);
        if (rc == 0) continue;  // deadline check at loop top

        const ReadStatus status = drain(worker);
        if (auto frame = worker.buf.take_frame()) {
            TaskResult result;
            result.payload = std::move(*frame);
            result.wall_ms = ms_since(worker.started);
            worker.busy = false;
            return result;
        }
        if (worker.buf.oversized()) {
            ::kill(worker.pid, SIGKILL);
            const pid_t pid = worker.pid;
            const double wall = ms_since(worker.started);
            (void)reap_worker(worker);
            const DecodedExit decoded{ExitKind::WorkerExit, 0, -2};
            core.count_outcome(decoded);
            core.emit(WorkerEventKind::Exit, 0, pid, outcome_kind(decoded));
            TaskResult result;
            result.exit = decoded;
            result.wall_ms = wall;
            return result;
        }
        if (status == ReadStatus::Eof) {
            const pid_t pid = worker.pid;
            const double wall = ms_since(worker.started);
            const DecodedExit decoded = reap_worker(worker);
            core.count_outcome(decoded);
            core.emit(WorkerEventKind::Exit, 0, pid, outcome_kind(decoded));
            TaskResult result;
            result.exit = decoded;
            result.wall_ms = wall;
            return result;
        }
    }
}

}  // namespace stc::sandbox
