#include "stc/sandbox/ipc.h"

#include "stc/wire/frame.h"

namespace stc::sandbox {

// The framing itself lives in stc::wire since PR 6 generalized it into
// the socket wire protocol; these wrappers keep the sandbox's historical
// API (and its tests) stable while guaranteeing pipe IPC and socket
// framing can never drift apart.

bool write_frame(int fd, std::string_view payload) noexcept {
    return wire::write_raw_frame(fd, payload);
}

std::optional<std::string> read_frame(int fd) {
    return wire::read_raw_frame(fd);
}

void FrameBuffer::feed(const char* data, std::size_t n) {
    buffer_.feed(data, n);
}

bool FrameBuffer::oversized() const noexcept { return buffer_.oversized(); }

std::optional<std::string> FrameBuffer::take_frame() {
    return buffer_.take_frame();
}

}  // namespace stc::sandbox
