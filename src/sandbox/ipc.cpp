#include "stc/sandbox/ipc.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace stc::sandbox {

namespace {

/// Little-endian, byte by byte: the parent and its forked children
/// share an architecture, but an explicit layout keeps the format
/// documentable (FORMATS.md §8) and the decoder testable.
void encode_length(std::uint32_t n, unsigned char out[4]) noexcept {
    out[0] = static_cast<unsigned char>(n & 0xff);
    out[1] = static_cast<unsigned char>((n >> 8) & 0xff);
    out[2] = static_cast<unsigned char>((n >> 16) & 0xff);
    out[3] = static_cast<unsigned char>((n >> 24) & 0xff);
}

std::uint32_t decode_length(const unsigned char in[4]) noexcept {
    return static_cast<std::uint32_t>(in[0]) |
           (static_cast<std::uint32_t>(in[1]) << 8) |
           (static_cast<std::uint32_t>(in[2]) << 16) |
           (static_cast<std::uint32_t>(in[3]) << 24);
}

bool write_all(int fd, const void* data, std::size_t n) noexcept {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
        const ssize_t written = ::write(fd, p, n);
        if (written < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        p += written;
        n -= static_cast<std::size_t>(written);
    }
    return true;
}

/// Read exactly n bytes; false on EOF or error.  `any_read` reports
/// whether at least one byte arrived (distinguishes clean EOF from a
/// torn frame).
bool read_all(int fd, void* data, std::size_t n, bool* any_read) noexcept {
    char* p = static_cast<char*>(data);
    while (n > 0) {
        const ssize_t got = ::read(fd, p, n);
        if (got < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (got == 0) return false;  // EOF
        if (any_read != nullptr) *any_read = true;
        p += got;
        n -= static_cast<std::size_t>(got);
    }
    return true;
}

}  // namespace

bool write_frame(int fd, std::string_view payload) noexcept {
    if (payload.size() > kMaxFramePayload) return false;
    unsigned char header[4];
    encode_length(static_cast<std::uint32_t>(payload.size()), header);
    if (!write_all(fd, header, sizeof header)) return false;
    return write_all(fd, payload.data(), payload.size());
}

std::optional<std::string> read_frame(int fd) {
    unsigned char header[4];
    bool any_read = false;
    if (!read_all(fd, header, sizeof header, &any_read)) return std::nullopt;
    const std::uint32_t length = decode_length(header);
    if (length > kMaxFramePayload) return std::nullopt;
    std::string payload(length, '\0');
    if (length > 0 && !read_all(fd, payload.data(), length, nullptr)) {
        return std::nullopt;
    }
    return payload;
}

void FrameBuffer::feed(const char* data, std::size_t n) {
    bytes_.insert(bytes_.end(), data, data + n);
}

bool FrameBuffer::oversized() const noexcept {
    if (bytes_.size() < 4) return false;
    unsigned char header[4];
    std::memcpy(header, bytes_.data(), 4);
    return decode_length(header) > kMaxFramePayload;
}

std::optional<std::string> FrameBuffer::take_frame() {
    if (bytes_.size() < 4) return std::nullopt;
    unsigned char header[4];
    std::memcpy(header, bytes_.data(), 4);
    const std::uint32_t length = decode_length(header);
    if (length > kMaxFramePayload) return std::nullopt;  // see oversized()
    if (bytes_.size() < 4u + length) return std::nullopt;
    std::string payload(bytes_.begin() + 4, bytes_.begin() + 4 + length);
    bytes_.erase(bytes_.begin(), bytes_.begin() + 4 + length);
    return payload;
}

}  // namespace stc::sandbox
