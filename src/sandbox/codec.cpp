#include "stc/sandbox/codec.h"

#include <utility>

#include "stc/obs/json.h"

namespace stc::sandbox {

std::string encode_outcome(const mutation::MutantOutcome& outcome,
                           const mutation::PruneStats* stats) {
    obs::JsonObject object;
    object.set("fate", mutation::to_string(outcome.fate));
    object.set("reason", oracle::to_string(outcome.reason));
    object.set("hit", outcome.hit_by_suite);
    object.set("probe_kill", outcome.killed_by_probe);
    object.set("model_only", outcome.model_only);
    if (stats != nullptr) {
        object.set("executed_pairs",
                   static_cast<std::uint64_t>(stats->executed_pairs));
        object.set("pruned_pairs",
                   static_cast<std::uint64_t>(stats->pruned_pairs));
        object.set("memoized_pairs",
                   static_cast<std::uint64_t>(stats->memoized_pairs));
        object.set("memoized_calls",
                   static_cast<std::uint64_t>(stats->memoized_calls));
    }
    return object.to_line();
}

mutation::PruneStats decode_outcome_stats(std::string_view payload) {
    mutation::PruneStats stats;
    const auto object = obs::JsonObject::parse(payload);
    if (!object) return stats;
    const auto grab = [&](const char* key) -> std::uint64_t {
        const auto value = object->get_int(key);
        return value && *value >= 0 ? static_cast<std::uint64_t>(*value) : 0;
    };
    stats.executed_pairs = grab("executed_pairs");
    stats.pruned_pairs = grab("pruned_pairs");
    stats.memoized_pairs = grab("memoized_pairs");
    stats.memoized_calls = grab("memoized_calls");
    return stats;
}

std::optional<mutation::MutantOutcome> decode_outcome(
    std::string_view payload) {
    const auto object = obs::JsonObject::parse(payload);
    if (!object) return std::nullopt;
    const auto fate_text = object->get_string("fate");
    const auto reason_text = object->get_string("reason");
    const auto hit = object->get_bool("hit");
    const auto probe_kill = object->get_bool("probe_kill");
    if (!fate_text || !reason_text || !hit || !probe_kill) {
        return std::nullopt;
    }
    const auto fate = mutation::fate_from_string(*fate_text);
    const auto reason = oracle::kill_reason_from_string(*reason_text);
    if (!fate || !reason) return std::nullopt;
    mutation::MutantOutcome outcome;
    outcome.fate = *fate;
    outcome.reason = *reason;
    outcome.hit_by_suite = *hit;
    outcome.killed_by_probe = *probe_kill;
    // Tolerant: replies encoded before the model-oracle field existed
    // decode with the default.
    outcome.model_only = object->get_bool("model_only").value_or(false);
    return outcome;
}

mutation::MutantOutcome outcome_from_termination(std::string kind) {
    mutation::MutantOutcome outcome;
    outcome.fate = mutation::MutantFate::Killed;
    outcome.reason = oracle::KillReason::Crash;
    outcome.hit_by_suite = true;
    outcome.sandbox = std::move(kind);
    return outcome;
}

std::string encode_result(const driver::TestResult& result) {
    obs::JsonObject object;
    object.set("case", result.case_id);
    object.set("verdict", driver::to_string(result.verdict));
    object.set("method", result.failed_method);
    object.set("message", result.message);
    object.set("report", result.report);
    object.set("log", result.log);
    if (!result.model_divergence.empty()) {
        object.set("model_divergence", result.model_divergence);
    }
    if (result.assertion_kind) {
        object.set("assertion",
                   static_cast<std::int64_t>(*result.assertion_kind));
    }
    return object.to_line();
}

std::optional<driver::TestResult> decode_result(std::string_view payload) {
    const auto object = obs::JsonObject::parse(payload);
    if (!object) return std::nullopt;
    const auto case_id = object->get_string("case");
    const auto verdict_text = object->get_string("verdict");
    const auto method = object->get_string("method");
    const auto message = object->get_string("message");
    const auto report = object->get_string("report");
    const auto log = object->get_string("log");
    if (!case_id || !verdict_text || !method || !message || !report || !log) {
        return std::nullopt;
    }
    const auto verdict = driver::verdict_from_string(*verdict_text);
    if (!verdict) return std::nullopt;
    driver::TestResult result;
    result.case_id = *case_id;
    result.verdict = *verdict;
    result.failed_method = *method;
    result.message = *message;
    result.report = *report;
    result.log = *log;
    result.model_divergence = object->get_string("model_divergence").value_or("");
    if (const auto kind = object->get_int("assertion");
        kind && *kind >= 0 && *kind <= 2) {
        result.assertion_kind = static_cast<bit::AssertionKind>(*kind);
    }
    return result;
}

}  // namespace stc::sandbox
