// Length-prefixed pipe IPC between the campaign orchestrator and its
// forked sandbox workers (docs/FORMATS.md §8).
//
// One frame = a 4-byte little-endian payload length followed by exactly
// that many payload bytes.  The framing carries opaque strings in both
// directions: the parent sends a work request (an item index, a
// serialized test case), the child replies with a serialized result.
// The encoding above the frame layer lives in codec.h; this file knows
// nothing about mutants or verdicts.
//
// The framing machinery itself is stc::wire (frame.h): the raw pipe
// frames here and the versioned socket messages of `concat serve` share
// one length-prefix core, so the two transports cannot drift.  This
// header remains the sandbox-facing API.
//
// Two read paths, matching the two ends of the pipe:
//   - read_frame: blocking, used by the child whose whole life is
//     "read request, run it, write reply";
//   - FrameBuffer: incremental, used by the parent whose event loop
//     polls many nonblocking worker pipes and must never stall on a
//     half-written frame from a worker that just got SIGKILLed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "stc/wire/frame.h"

namespace stc::sandbox {

/// Upper bound on a frame payload.  A length prefix above this is a
/// protocol violation (a worker that died mid-write and left garbage),
/// not a request to allocate gigabytes in the parent.
inline constexpr std::uint32_t kMaxFramePayload = wire::kMaxFramePayload;

/// Write one complete frame; loops over partial writes and EINTR.
/// False on error — most importantly EPIPE after the peer died (the
/// process must have SIGPIPE ignored or handled; WorkerPool sets that
/// up).
[[nodiscard]] bool write_frame(int fd, std::string_view payload) noexcept;

/// Blocking read of one complete frame (the child side).  std::nullopt
/// on clean EOF (parent closed the request pipe: shutdown), on a torn
/// frame, or on an oversized length prefix.
[[nodiscard]] std::optional<std::string> read_frame(int fd);

/// Incremental decoder for the parent's nonblocking reads: feed() the
/// bytes poll() hands you, take_frame() yields complete payloads.
class FrameBuffer {
public:
    void feed(const char* data, std::size_t n);

    /// The next complete frame, or std::nullopt while one is pending.
    [[nodiscard]] std::optional<std::string> take_frame();

    /// True when the buffered length prefix exceeds kMaxFramePayload —
    /// unrecoverable; the owner should discard the worker.
    [[nodiscard]] bool oversized() const noexcept;

    /// Bytes buffered but not yet consumed (torn-frame diagnostics).
    [[nodiscard]] std::size_t pending_bytes() const noexcept {
        return buffer_.pending_bytes();
    }

    void clear() noexcept { buffer_.clear(); }

private:
    wire::RawFrameBuffer buffer_;
};

}  // namespace stc::sandbox
