// Sandbox resource limits and exit-status decoding.
//
// Every sandbox worker gets three independent fences:
//   - a wall-clock deadline, enforced parent-side (poll() timeout, then
//     SIGKILL) so even a child stuck in an uninterruptible busy loop is
//     reclaimed;
//   - RLIMIT_CPU, a child-side backstop in case the parent itself is
//     wedged;
//   - RLIMIT_AS plus a std::new_handler that _exit()s with a reserved
//     code the instant an allocation fails — bypassing every catch
//     block between the allocation bomb and the harness, so an OOM is
//     reported as "resource-limit", never mistaken for a component
//     exception.
//
// The parent decodes waitpid() status into the outcome kinds that flow
// through MutantOutcome / the result store / telemetry (FORMATS.md §8):
// "crash-signal:<n>", "timeout", "resource-limit", "worker-exit:<c>".
#pragma once

#include <cstdint>
#include <string>

namespace stc::sandbox {

struct SandboxLimits {
    /// Wall-clock budget per dispatched item, enforced by the parent
    /// (poll deadline + SIGKILL).  0 disables the deadline.
    std::uint64_t timeout_ms = 5000;
    /// Child address-space cap in MiB (RLIMIT_AS).  0 inherits the
    /// parent's limit.
    std::uint64_t rlimit_as_mb = 0;
    /// Child CPU-seconds cap (RLIMIT_CPU).  0 derives it from
    /// timeout_ms (rounded up, +1s slack) so a runaway worker dies even
    /// if the parent never gets to enforce the wall deadline.
    std::uint64_t rlimit_cpu_s = 0;
};

/// Reserved child exit codes (chosen away from 0/1/2 and shell codes).
inline constexpr int kResourceLimitExit = 86;  ///< new-handler fired: OOM
inline constexpr int kWorkerFailureExit = 87;  ///< job threw / reply unwritable

/// How a dispatched item's worker ended.
enum class ExitKind {
    Ok,             ///< replied with a complete frame
    CrashSignal,    ///< terminated by a signal (SIGSEGV, SIGABRT, ...)
    Timeout,        ///< wall deadline (parent SIGKILL) or RLIMIT_CPU (SIGXCPU)
    ResourceLimit,  ///< allocation failure under RLIMIT_AS, or kernel OOM kill
    WorkerExit,     ///< child exited without replying (mutant called exit, ...)
};

[[nodiscard]] const char* to_string(ExitKind kind) noexcept;

struct DecodedExit {
    ExitKind kind = ExitKind::Ok;
    int signal = 0;  ///< when kind == CrashSignal
    int code = 0;    ///< when kind == WorkerExit
};

/// Decode a waitpid() status.  `killed_for_deadline` is true when the
/// parent SIGKILLed this worker for missing its wall deadline — the
/// only way to tell a timeout kill from an external SIGKILL (which, on
/// Linux, is most plausibly the kernel OOM killer and therefore decodes
/// as ResourceLimit).  Full table in docs/FORMATS.md §8.
[[nodiscard]] DecodedExit decode_wait_status(int status,
                                             bool killed_for_deadline) noexcept;

/// The outcome-kind string recorded in results and telemetry:
/// "crash-signal:<n>" | "timeout" | "resource-limit" | "worker-exit:<c>";
/// "" for Ok.
[[nodiscard]] std::string outcome_kind(const DecodedExit& exit);

/// Install the child-side fences: setrlimit(RLIMIT_AS / RLIMIT_CPU) and
/// the _exit(kResourceLimitExit) new-handler.  Call in the forked child
/// before entering the job loop; never in the parent.
void apply_limits_in_child(const SandboxLimits& limits) noexcept;

}  // namespace stc::sandbox
