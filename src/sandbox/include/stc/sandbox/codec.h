// Payload encoding above the frame layer (ipc.h): what the sandbox
// actually ships between orchestrator and worker.
//
// Two payload schemas, both one flat JSON object per frame
// (obs::JsonObject, docs/FORMATS.md §8):
//   - a MutantOutcome reply for `concat campaign --isolate` (the
//     request direction is just a decimal item index);
//   - a TestResult reply for `concat fuzz --isolate` (the request is a
//     serialized one-case suite, driver/suite_io.h).
//
// The codec also builds the synthetic outcome recorded when a worker
// never replies at all: a sandbox termination IS a kill in the paper's
// §4 sense (condition i — the run crashed), so the item is fated
// Killed / reason Crash, with the outcome kind preserved verbatim in
// MutantOutcome::sandbox.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "stc/driver/runner.h"
#include "stc/mutation/engine.h"
#include "stc/mutation/prune.h"

namespace stc::sandbox {

/// Serialize the child-computed outcome (fate/reason/hit/probe-kill).
/// The mutant pointer does not travel; the parent rebinds it by item
/// index.  `stats`, when given, rides along as executed/pruned/memoized
/// pair counters (pruned campaign items; decoded tolerantly so replies
/// without them yield zeros).
[[nodiscard]] std::string encode_outcome(
    const mutation::MutantOutcome& outcome,
    const mutation::PruneStats* stats = nullptr);

/// Prune counters of a reply frame; all-zero when the reply carried
/// none (unpruned run or pre-prune encoder).
[[nodiscard]] mutation::PruneStats decode_outcome_stats(
    std::string_view payload);

/// Parse a reply frame; std::nullopt on malformed input (a worker that
/// printed garbage).  `mutant` is left null.
[[nodiscard]] std::optional<mutation::MutantOutcome> decode_outcome(
    std::string_view payload);

/// The outcome recorded for an item whose worker crashed, hung, or hit
/// a resource limit instead of replying: Killed / Crash / hit, with
/// `kind` ("crash-signal:<n>" | "timeout" | "resource-limit" |
/// "worker-exit:<c>") stored in MutantOutcome::sandbox.
[[nodiscard]] mutation::MutantOutcome outcome_from_termination(
    std::string kind);

/// Serialize one TestResult (fuzz isolated replay reply).
[[nodiscard]] std::string encode_result(const driver::TestResult& result);

/// Parse a TestResult reply frame; std::nullopt on malformed input.
[[nodiscard]] std::optional<driver::TestResult> decode_result(
    std::string_view payload);

}  // namespace stc::sandbox
