// Fork-based sandbox worker pool (the isolated execution engine behind
// `concat campaign --isolate` and `concat fuzz --isolate`).
//
// The pool pre-forks N persistent workers.  Each worker loops
// "read request frame, run the job closure, write reply frame"
// (ipc.h); the parent runs a single-threaded poll() event loop that
// dispatches payloads to idle workers, enforces per-item wall-clock
// deadlines (SIGKILL escalation), decodes every child death
// (limits.h), respawns the worker, and reports exactly one TaskResult
// per payload.  A crashing, hanging, or allocation-bombing job kills
// only its worker — never the run.
//
// Why not fork from the work-stealing thread pool?  fork() in a
// multithreaded process clones only the calling thread; any lock held
// by another thread at that instant stays locked forever in the child.
// Isolation therefore replaces the thread pool: one parent thread,
// N worker *processes*, parallelism from the processes.
//
// Hygiene rules the implementation lives by:
//   - children terminate with _exit() only — exit() would flush stdio
//     and ofstream buffers inherited from the parent, duplicating
//     report/store/telemetry output;
//   - each freshly forked child closes every other live worker's pipe
//     fds, otherwise a sibling holding a write end defeats the
//     parent's EOF-based death detection;
//   - the parent ignores SIGPIPE so writing to a just-died worker is
//     an EPIPE error return, not a process-killing signal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stc/obs/context.h"
#include "stc/sandbox/limits.h"

namespace stc::sandbox {

/// The work a child performs per request: payload in, reply out.  Runs
/// in the forked child only; throwing makes the child _exit with
/// kWorkerFailureExit.  Must not touch parent-owned streams or files.
using Job = std::function<std::string(const std::string&)>;

enum class WorkerEventKind {
    Spawn,  ///< a worker process was forked
    Exit,   ///< a worker process was reaped
    Kill,   ///< the parent SIGKILLed a worker for missing its deadline
};

[[nodiscard]] const char* to_string(WorkerEventKind kind) noexcept;

/// Lifecycle notification, forwarded to telemetry by the scheduler.
struct WorkerEvent {
    WorkerEventKind kind = WorkerEventKind::Spawn;
    std::size_t worker = 0;  ///< stable slot ordinal, not the pid
    std::int64_t pid = 0;
    std::string detail;  ///< Exit: outcome kind ("" for clean shutdown)
};

struct PoolOptions {
    /// Worker processes; 0 and 1 both mean a single worker.
    std::size_t workers = 1;
    SandboxLimits limits;
    /// Metrics/trace instrumentation (sandbox.* counters, worker spans).
    obs::Context obs;
    /// Worker lifecycle callback (telemetry bridge).  Runs on the
    /// parent thread.
    std::function<void(const WorkerEvent&)> on_event;
    /// Called when payload `item` is handed to worker `worker` —
    /// the isolated twin of the thread pool's item-start event.
    std::function<void(std::size_t item, std::size_t worker)> on_dispatch;
};

/// How one dispatched payload ended.
struct TaskResult {
    DecodedExit exit;     ///< ExitKind::Ok iff a complete reply arrived
    std::string payload;  ///< the reply frame (valid when ok())
    std::size_t worker = 0;
    double wall_ms = 0.0;

    [[nodiscard]] bool ok() const noexcept {
        return exit.kind == ExitKind::Ok;
    }
    /// "" for ok(); else "crash-signal:<n>" / "timeout" /
    /// "resource-limit" / "worker-exit:<c>".
    [[nodiscard]] std::string outcome() const { return outcome_kind(exit); }
};

struct PoolStats {
    std::size_t spawned = 0;    ///< total forks, including respawns
    std::size_t respawned = 0;  ///< forks replacing a dead worker
    std::size_t kills = 0;      ///< deadline SIGKILLs sent
    std::size_t crashes = 0;    ///< items ending in CrashSignal
    std::size_t timeouts = 0;   ///< items ending in Timeout
    std::size_t resource_limits = 0;  ///< items ending in ResourceLimit
    std::size_t worker_exits = 0;     ///< items ending in WorkerExit
};

class WorkerPool {
public:
    WorkerPool(Job job, PoolOptions options);
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /// Execute every payload in a sandbox worker.  `on_result` fires on
    /// the parent thread exactly once per payload, in completion order
    /// (callers needing deterministic output must slot results by
    /// index).  Returns when all payloads have a result.
    void run(const std::vector<std::string>& payloads,
             const std::function<void(std::size_t index, TaskResult)>&
                 on_result);

    [[nodiscard]] const PoolStats& stats() const noexcept;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// One persistent sandbox worker with a synchronous request/reply
/// interface — the fuzz-loop flavour of the pool, where the caller
/// needs each verdict before choosing the next input.  A dead worker is
/// respawned on the next call; only the call that killed it reports a
/// non-Ok result.
class SandboxRunner {
public:
    SandboxRunner(Job job, SandboxLimits limits,
                  std::function<void(const WorkerEvent&)> on_event = {});
    ~SandboxRunner();

    SandboxRunner(const SandboxRunner&) = delete;
    SandboxRunner& operator=(const SandboxRunner&) = delete;

    [[nodiscard]] TaskResult call(const std::string& payload);

    [[nodiscard]] const PoolStats& stats() const noexcept;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace stc::sandbox
