#include "stc/sandbox/limits.h"

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <new>

namespace stc::sandbox {

const char* to_string(ExitKind kind) noexcept {
    switch (kind) {
        case ExitKind::Ok: return "ok";
        case ExitKind::CrashSignal: return "crash-signal";
        case ExitKind::Timeout: return "timeout";
        case ExitKind::ResourceLimit: return "resource-limit";
        case ExitKind::WorkerExit: return "worker-exit";
    }
    return "?";
}

DecodedExit decode_wait_status(int status, bool killed_for_deadline) noexcept {
    DecodedExit out;
    if (killed_for_deadline) {
        out.kind = ExitKind::Timeout;
        return out;
    }
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        if (sig == SIGXCPU) {
            out.kind = ExitKind::Timeout;  // RLIMIT_CPU backstop fired
        } else if (sig == SIGKILL) {
            // The parent did not send this SIGKILL (killed_for_deadline
            // is false), so on Linux it is most plausibly the kernel
            // OOM killer reclaiming the worker.
            out.kind = ExitKind::ResourceLimit;
        } else {
            out.kind = ExitKind::CrashSignal;
            out.signal = sig;
        }
        return out;
    }
    if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        if (code == kResourceLimitExit) {
            out.kind = ExitKind::ResourceLimit;
        } else {
            out.kind = ExitKind::WorkerExit;
            out.code = code;
        }
        return out;
    }
    // Stopped/continued should be impossible (no WUNTRACED); report as
    // a worker exit so the item is still classified rather than lost.
    out.kind = ExitKind::WorkerExit;
    out.code = -1;
    return out;
}

std::string outcome_kind(const DecodedExit& exit) {
    switch (exit.kind) {
        case ExitKind::Ok: return "";
        case ExitKind::CrashSignal:
            return "crash-signal:" + std::to_string(exit.signal);
        case ExitKind::Timeout: return "timeout";
        case ExitKind::ResourceLimit: return "resource-limit";
        case ExitKind::WorkerExit:
            return "worker-exit:" + std::to_string(exit.code);
    }
    return "?";
}

void apply_limits_in_child(const SandboxLimits& limits) noexcept {
    if (limits.rlimit_as_mb != 0) {
        rlimit as{};
        as.rlim_cur = as.rlim_max =
            static_cast<rlim_t>(limits.rlimit_as_mb) << 20;
        ::setrlimit(RLIMIT_AS, &as);
    }

    std::uint64_t cpu_s = limits.rlimit_cpu_s;
    if (cpu_s == 0 && limits.timeout_ms != 0) {
        cpu_s = (limits.timeout_ms + 999) / 1000 + 1;
    }
    if (cpu_s != 0) {
        rlimit cpu{};
        cpu.rlim_cur = static_cast<rlim_t>(cpu_s);
        cpu.rlim_max = static_cast<rlim_t>(cpu_s + 1);  // hard SIGKILL backstop
        ::setrlimit(RLIMIT_CPU, &cpu);
    }

    // An allocation failure exits the child immediately, before
    // std::bad_alloc is even thrown — no catch block between the
    // allocation bomb and the harness can swallow it, so the parent
    // sees a clean kResourceLimitExit and records "resource-limit".
    std::set_new_handler([] { ::_exit(kResourceLimitExit); });
}

}  // namespace stc::sandbox
