#include "stc/tspec/builder.h"

#include <map>

#include "stc/support/error.h"

namespace stc::tspec {

SpecBuilder::SpecBuilder(std::string class_name) {
    spec_.class_name = std::move(class_name);
}

SpecBuilder& SpecBuilder::abstract(bool value) {
    spec_.is_abstract = value;
    return *this;
}

SpecBuilder& SpecBuilder::superclass(std::string name) {
    spec_.superclass = std::move(name);
    return *this;
}

SpecBuilder& SpecBuilder::source_file(std::string path) {
    spec_.source_files.push_back(std::move(path));
    return *this;
}

SpecBuilder& SpecBuilder::attr_range(std::string name, std::int64_t lo, std::int64_t hi) {
    spec_.attributes.push_back(
        TypedSlot{std::move(name), TypeTag::Range, domain::int_range(lo, hi), ""});
    return *this;
}

SpecBuilder& SpecBuilder::attr_real_range(std::string name, double lo, double hi) {
    spec_.attributes.push_back(
        TypedSlot{std::move(name), TypeTag::Range, domain::real_range(lo, hi), ""});
    return *this;
}

SpecBuilder& SpecBuilder::attr_string(std::string name, std::size_t min_len,
                                      std::size_t max_len) {
    spec_.attributes.push_back(TypedSlot{std::move(name), TypeTag::String,
                                         domain::string_domain(min_len, max_len), ""});
    return *this;
}

SpecBuilder& SpecBuilder::attr_pointer(std::string name, std::string class_name) {
    spec_.attributes.push_back(
        TypedSlot{std::move(name), TypeTag::Pointer, nullptr, std::move(class_name)});
    return *this;
}

SpecBuilder& SpecBuilder::attr_object(std::string name, std::string class_name) {
    spec_.attributes.push_back(
        TypedSlot{std::move(name), TypeTag::Object, nullptr, std::move(class_name)});
    return *this;
}

SpecBuilder& SpecBuilder::attr_set(std::string name, std::vector<domain::Value> values) {
    spec_.attributes.push_back(TypedSlot{std::move(name), TypeTag::Set,
                                         domain::value_set(std::move(values)), ""});
    return *this;
}

SpecBuilder& SpecBuilder::method(std::string id, std::string name,
                                 MethodCategory category, std::string return_type) {
    MethodSpec m;
    m.id = std::move(id);
    m.name = std::move(name);
    m.category = category;
    m.return_type = std::move(return_type);
    spec_.methods.push_back(std::move(m));
    return *this;
}

MethodSpec& SpecBuilder::current_method() {
    if (spec_.methods.empty()) {
        throw SpecError("parameter added before any method()");
    }
    return spec_.methods.back();
}

SpecBuilder& SpecBuilder::add_param(TypedSlot slot) {
    current_method().parameters.push_back(std::move(slot));
    return *this;
}

SpecBuilder& SpecBuilder::param_range(std::string name, std::int64_t lo, std::int64_t hi) {
    return add_param(
        TypedSlot{std::move(name), TypeTag::Range, domain::int_range(lo, hi), ""});
}

SpecBuilder& SpecBuilder::param_real_range(std::string name, double lo, double hi) {
    return add_param(
        TypedSlot{std::move(name), TypeTag::Range, domain::real_range(lo, hi), ""});
}

SpecBuilder& SpecBuilder::param_string(std::string name, std::size_t min_len,
                                       std::size_t max_len) {
    return add_param(TypedSlot{std::move(name), TypeTag::String,
                               domain::string_domain(min_len, max_len), ""});
}

SpecBuilder& SpecBuilder::param_string_set(std::string name,
                                           std::vector<std::string> values) {
    std::vector<domain::Value> vs;
    vs.reserve(values.size());
    for (auto& s : values) vs.push_back(domain::Value::make_string(std::move(s)));
    return add_param(
        TypedSlot{std::move(name), TypeTag::String, domain::value_set(std::move(vs)), ""});
}

SpecBuilder& SpecBuilder::param_int_set(std::string name,
                                        std::vector<std::int64_t> values) {
    std::vector<domain::Value> vs;
    vs.reserve(values.size());
    for (auto v : values) vs.push_back(domain::Value::make_int(v));
    return add_param(
        TypedSlot{std::move(name), TypeTag::Set, domain::value_set(std::move(vs)), ""});
}

SpecBuilder& SpecBuilder::param_pointer(std::string name, std::string class_name) {
    return add_param(
        TypedSlot{std::move(name), TypeTag::Pointer, nullptr, std::move(class_name)});
}

SpecBuilder& SpecBuilder::param_object(std::string name, std::string class_name) {
    return add_param(
        TypedSlot{std::move(name), TypeTag::Object, nullptr, std::move(class_name)});
}

SpecBuilder& SpecBuilder::template_param(std::string name,
                                         std::vector<std::string> types) {
    spec_.template_bindings[std::move(name)] = std::move(types);
    return *this;
}

SpecBuilder& SpecBuilder::state(std::string name) {
    spec_.states.push_back(std::move(name));
    return *this;
}

SpecBuilder& SpecBuilder::node(std::string id, bool is_start,
                               std::vector<std::string> method_ids) {
    NodeSpec n;
    n.id = std::move(id);
    n.is_start = is_start;
    n.declared_out_degree = 0;  // filled in by build()
    n.method_ids = std::move(method_ids);
    spec_.nodes.push_back(std::move(n));
    return *this;
}

SpecBuilder& SpecBuilder::edge(std::string from, std::string to) {
    spec_.edges.push_back(EdgeSpec{std::move(from), std::move(to)});
    return *this;
}

ComponentSpec SpecBuilder::build() const {
    ComponentSpec out = build_unchecked();
    out.ensure_valid();
    return out;
}

ComponentSpec SpecBuilder::build_unchecked() const {
    ComponentSpec out = spec_;
    std::map<std::string, int> out_degree;
    for (const auto& e : out.edges) ++out_degree[e.from];
    for (auto& n : out.nodes) n.declared_out_degree = out_degree[n.id];
    return out;
}

}  // namespace stc::tspec
