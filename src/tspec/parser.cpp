#include "stc/tspec/parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <vector>

#include "stc/support/error.h"
#include "stc/support/strings.h"
#include "stc/tspec/assembly.h"

namespace stc::tspec {

namespace {

// ------------------------------------------------------------------ Lexer

enum class Tok {
    Ident, String, Int, Real, Empty,
    LParen, RParen, LBracket, RBracket, Comma,
    LBrace, RBrace,  // assembly block structure only
    End,
};

struct Token {
    Tok kind;
    std::string text;     // identifier / string payload
    std::int64_t ival = 0;
    double rval = 0.0;
    int line = 0;
    int column = 0;
};

class Lexer {
public:
    explicit Lexer(std::string_view text) : text_(text) {}

    Token next() {
        skip_trivia();
        const int line = line_;
        const int col = column_;
        if (pos_ >= text_.size()) return {Tok::End, "", 0, 0.0, line, col};

        const char c = text_[pos_];
        switch (c) {
            case '(': advance(); return {Tok::LParen, "(", 0, 0.0, line, col};
            case ')': advance(); return {Tok::RParen, ")", 0, 0.0, line, col};
            case '[': advance(); return {Tok::LBracket, "[", 0, 0.0, line, col};
            case ']': advance(); return {Tok::RBracket, "]", 0, 0.0, line, col};
            case ',': advance(); return {Tok::Comma, ",", 0, 0.0, line, col};
            case '{': advance(); return {Tok::LBrace, "{", 0, 0.0, line, col};
            case '}': advance(); return {Tok::RBrace, "}", 0, 0.0, line, col};
            case '\'':
            case '"': return lex_string(c, line, col);
            case '<': return lex_empty(line, col);
            default: break;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '+') {
            return lex_number(line, col);
        }
        if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
            c == '~' || c == '!') {
            return lex_ident(line, col);
        }
        throw ParseError(std::string("unexpected character '") + c + "'", line, col);
    }

private:
    void advance() {
        if (pos_ < text_.size()) {
            if (text_[pos_] == '\n') {
                ++line_;
                column_ = 1;
            } else {
                ++column_;
            }
            ++pos_;
        }
    }

    void skip_trivia() {
        for (;;) {
            while (pos_ < text_.size() &&
                   std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
                advance();
            }
            if (pos_ + 1 < text_.size() && text_[pos_] == '/' && text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n') advance();
                continue;
            }
            break;
        }
    }

    Token lex_string(char quote, int line, int col) {
        advance();  // opening quote
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != quote) {
            if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
                advance();
                switch (text_[pos_]) {
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    default: out += text_[pos_];
                }
                advance();
                continue;
            }
            if (text_[pos_] == '\n') {
                throw ParseError("unterminated string literal", line, col);
            }
            out += text_[pos_];
            advance();
        }
        if (pos_ >= text_.size()) throw ParseError("unterminated string literal", line, col);
        advance();  // closing quote
        return {Tok::String, out, 0, 0.0, line, col};
    }

    Token lex_empty(int line, int col) {
        static constexpr std::string_view kEmpty = "<empty>";
        if (text_.substr(pos_, kEmpty.size()) == kEmpty) {
            for (std::size_t i = 0; i < kEmpty.size(); ++i) advance();
            return {Tok::Empty, "<empty>", 0, 0.0, line, col};
        }
        throw ParseError("expected '<empty>'", line, col);
    }

    Token lex_number(int line, int col) {
        std::string out;
        if (text_[pos_] == '-' || text_[pos_] == '+') {
            out += text_[pos_];
            advance();
        }
        bool is_real = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                ((text_[pos_] == '-' || text_[pos_] == '+') && !out.empty() &&
                 (out.back() == 'e' || out.back() == 'E')))) {
            if (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E') {
                is_real = true;
            }
            out += text_[pos_];
            advance();
        }
        if (out.empty() || out == "-" || out == "+") {
            throw ParseError("malformed number", line, col);
        }
        Token t{is_real ? Tok::Real : Tok::Int, out, 0, 0.0, line, col};
        if (is_real) {
            t.rval = std::strtod(out.c_str(), nullptr);
        } else {
            t.ival = std::strtoll(out.c_str(), nullptr, 10);
        }
        return t;
    }

    Token lex_ident(int line, int col) {
        std::string out;
        // A leading '!' marks a negative (expected-rejection) call in a
        // node's method list, e.g. [m3, !m6].
        if (pos_ < text_.size() && text_[pos_] == '!') {
            out += '!';
            advance();
        }
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '_' || text_[pos_] == '~' || text_[pos_] == ':')) {
            out += text_[pos_];
            advance();
        }
        return {Tok::Ident, out, 0, 0.0, line, col};
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
};

// ------------------------------------------------------- Generic records

/// One parsed argument (possibly a bracketed list).
struct Arg {
    enum class Kind { Empty, Ident, String, Int, Real, List };
    Kind kind = Kind::Empty;
    std::string text;
    std::int64_t ival = 0;
    double rval = 0.0;
    std::vector<Arg> items;
    int line = 0;
    int column = 0;

    [[nodiscard]] bool is_numeric() const noexcept {
        return kind == Kind::Int || kind == Kind::Real;
    }
    [[nodiscard]] double number() const noexcept {
        return kind == Kind::Int ? static_cast<double>(ival) : rval;
    }
};

struct Record {
    std::string name;
    std::vector<Arg> args;
    int line = 0;
};

[[noreturn]] void bind_fail(const Record& r, const std::string& msg);
std::string text_of(const Arg& a);

class RecordParser {
public:
    explicit RecordParser(std::string_view text) : lexer_(text) { bump(); }

    std::vector<Record> parse_all() {
        std::vector<Record> out;
        while (cur_.kind != Tok::End) {
            out.push_back(parse_record());
        }
        return out;
    }

    /// Parse a whole `Assembly (<name>) { roles {…} wiring {…} exports {…} }`
    /// document.  Reuses the record machinery for everything inside the
    /// brace blocks, so comments/quoting/'<empty>' behave exactly as in
    /// flat t-specs.
    AssemblySpec parse_assembly_doc() {
        if (cur_.kind != Tok::Ident ||
            support::to_lower(cur_.text) != "assembly") {
            fail("expected Assembly block");
        }
        const Record header = parse_record();
        if (header.args.size() != 1) bind_fail(header, "expected (name)");
        AssemblySpec spec;
        spec.name = text_of(header.args[0]);
        if (spec.name.empty()) bind_fail(header, "assembly name must not be empty");

        expect(Tok::LBrace, "'{'");
        while (cur_.kind != Tok::RBrace) {
            if (cur_.kind != Tok::Ident) {
                fail("expected section name (roles, wiring, exports)");
            }
            const std::string section = support::to_lower(cur_.text);
            bump();
            expect(Tok::LBrace, "'{'");
            while (cur_.kind != Tok::RBrace) {
                bind_assembly_record(spec, section, parse_record());
            }
            expect(Tok::RBrace, "'}'");
        }
        expect(Tok::RBrace, "'}'");
        if (cur_.kind != Tok::End) fail("trailing input after assembly block");
        return spec;
    }

private:
    void bind_assembly_record(AssemblySpec& spec, const std::string& section,
                              const Record& r) {
        const std::string kind = support::to_lower(r.name);
        if (section == "roles") {
            if (kind != "role") bind_fail(r, "roles section takes Role records");
            if (r.args.size() != 2 && r.args.size() != 3) {
                bind_fail(r, "expected (id, class [, spec-file])");
            }
            RoleSpec role;
            role.id = text_of(r.args[0]);
            role.class_name = text_of(r.args[1]);
            if (r.args.size() == 3) role.spec_file = text_of(r.args[2]);
            if (role.id.empty() || role.class_name.empty()) {
                bind_fail(r, "role id and class must not be empty");
            }
            if (spec.find_role(role.id) != nullptr) {
                bind_fail(r, "duplicate role id '" + role.id + "'");
            }
            spec.roles.push_back(std::move(role));
            return;
        }
        if (section == "wiring") {
            if (kind != "wire") bind_fail(r, "wiring section takes Wire records");
            if (r.args.size() != 4 && r.args.size() != 5) {
                bind_fail(r, "expected (caller, method, callee, method [, emits|silent])");
            }
            WireSpec wire;
            wire.caller_role = text_of(r.args[0]);
            wire.caller_method = text_of(r.args[1]);
            wire.callee_role = text_of(r.args[2]);
            wire.callee_method = text_of(r.args[3]);
            if (r.args.size() == 5) {
                const std::string mode = support::to_lower(text_of(r.args[4]));
                if (mode == "emits") {
                    wire.must_emit = true;
                } else if (mode != "silent") {
                    bind_fail(r, "wire mode must be emits or silent, got '" +
                                     text_of(r.args[4]) + "'");
                }
            }
            spec.wiring.push_back(std::move(wire));
            return;
        }
        if (section == "exports") {
            if (kind != "export") {
                bind_fail(r, "exports section takes Export records");
            }
            if (r.args.size() != 2 && r.args.size() != 3) {
                bind_fail(r, "expected (role, method [, alias])");
            }
            ExportSpec exp;
            exp.role = text_of(r.args[0]);
            exp.method = text_of(r.args[1]);
            if (r.args.size() == 3) exp.alias = text_of(r.args[2]);
            spec.exports.push_back(std::move(exp));
            return;
        }
        bind_fail(r, "unknown assembly section '" + section + "'");
    }

    void bump() { cur_ = lexer_.next(); }

    [[noreturn]] void fail(const std::string& msg) const {
        throw ParseError(msg, cur_.line, cur_.column);
    }

    void expect(Tok kind, const char* what) {
        if (cur_.kind != kind) fail(std::string("expected ") + what);
        bump();
    }

    Record parse_record() {
        if (cur_.kind != Tok::Ident) fail("expected record name");
        Record r;
        r.name = cur_.text;
        r.line = cur_.line;
        bump();
        expect(Tok::LParen, "'('");
        if (cur_.kind != Tok::RParen) {
            r.args.push_back(parse_arg());
            while (cur_.kind == Tok::Comma) {
                bump();
                r.args.push_back(parse_arg());
            }
        }
        expect(Tok::RParen, "')'");
        return r;
    }

    Arg parse_arg() {
        Arg a;
        a.line = cur_.line;
        a.column = cur_.column;
        switch (cur_.kind) {
            case Tok::Empty:
                a.kind = Arg::Kind::Empty;
                bump();
                return a;
            case Tok::Ident:
                a.kind = Arg::Kind::Ident;
                a.text = cur_.text;
                bump();
                return a;
            case Tok::String:
                a.kind = Arg::Kind::String;
                a.text = cur_.text;
                bump();
                return a;
            case Tok::Int:
                a.kind = Arg::Kind::Int;
                a.ival = cur_.ival;
                a.text = cur_.text;
                bump();
                return a;
            case Tok::Real:
                a.kind = Arg::Kind::Real;
                a.rval = cur_.rval;
                a.text = cur_.text;
                bump();
                return a;
            case Tok::LBracket: {
                a.kind = Arg::Kind::List;
                bump();
                if (cur_.kind != Tok::RBracket) {
                    a.items.push_back(parse_arg());
                    while (cur_.kind == Tok::Comma) {
                        bump();
                        a.items.push_back(parse_arg());
                    }
                }
                expect(Tok::RBracket, "']'");
                return a;
            }
            default:
                fail("expected argument");
        }
    }

    Lexer lexer_;
    Token cur_;
};

// -------------------------------------------------------------- Binder

[[noreturn]] void bind_fail(const Record& r, const std::string& msg) {
    throw SpecError("record '" + r.name + "' (line " + std::to_string(r.line) +
                    "): " + msg);
}

std::string text_of(const Arg& a) {
    return a.kind == Arg::Kind::Empty ? std::string() : a.text;
}

bool yes_no(const Record& r, const Arg& a) {
    const std::string w = support::to_lower(text_of(a));
    if (w == "yes") return true;
    if (w == "no") return false;
    bind_fail(r, "expected Yes or No, got '" + text_of(a) + "'");
}

domain::Value arg_to_value(const Record& r, const Arg& a) {
    switch (a.kind) {
        case Arg::Kind::Int: return domain::Value::make_int(a.ival);
        case Arg::Kind::Real: return domain::Value::make_real(a.rval);
        case Arg::Kind::String:
        case Arg::Kind::Ident: return domain::Value::make_string(a.text);
        default: bind_fail(r, "unsupported value in set");
    }
}

/// Bind the tail of an Attribute/Parameter record (everything after the
/// type tag) into a TypedSlot domain.
void bind_domain(const Record& r, TypedSlot& slot, TypeTag tag,
                 const std::vector<Arg>& rest) {
    slot.type = tag;
    switch (tag) {
        case TypeTag::Range: {
            if (rest.size() != 2 || !rest[0].is_numeric() || !rest[1].is_numeric()) {
                bind_fail(r, "range type needs numeric lower and upper limits");
            }
            const bool real = rest[0].kind == Arg::Kind::Real ||
                              rest[1].kind == Arg::Kind::Real;
            if (real) {
                slot.domain = domain::real_range(rest[0].number(), rest[1].number());
            } else {
                slot.domain = domain::int_range(rest[0].ival, rest[1].ival);
            }
            return;
        }
        case TypeTag::Set: {
            if (rest.size() != 1 || rest[0].kind != Arg::Kind::List) {
                bind_fail(r, "set type needs a [value, ...] list");
            }
            std::vector<domain::Value> values;
            values.reserve(rest[0].items.size());
            for (const Arg& item : rest[0].items) values.push_back(arg_to_value(r, item));
            slot.domain = domain::value_set(std::move(values));
            return;
        }
        case TypeTag::String: {
            if (rest.empty()) {
                slot.domain = domain::string_domain(0, 16);
                return;
            }
            if (rest.size() == 1 && rest[0].kind == Arg::Kind::List) {
                // Fig. 3 style: string parameter with an explicit value set.
                std::vector<domain::Value> values;
                for (const Arg& item : rest[0].items) {
                    values.push_back(arg_to_value(r, item));
                }
                slot.domain = domain::value_set(std::move(values));
                return;
            }
            if (rest.size() == 2 && rest[0].kind == Arg::Kind::Int &&
                rest[1].kind == Arg::Kind::Int && rest[0].ival >= 0 &&
                rest[1].ival >= rest[0].ival) {
                slot.domain = domain::string_domain(
                    static_cast<std::size_t>(rest[0].ival),
                    static_cast<std::size_t>(rest[1].ival));
                return;
            }
            bind_fail(r, "string type takes nothing, [values...], or min,max lengths");
        }
        case TypeTag::Object:
        case TypeTag::Pointer: {
            if (rest.size() != 1 ||
                (rest[0].kind != Arg::Kind::String && rest[0].kind != Arg::Kind::Ident)) {
                bind_fail(r, "object/pointer type needs the pointee class name");
            }
            slot.class_name = rest[0].text;
            // Domain left null: completed by the tester (PointerDomain with
            // a completion hook) at driver-configuration time.
            return;
        }
    }
}

}  // namespace

ComponentSpec parse_tspec(std::string_view text) {
    RecordParser parser(text);
    const std::vector<Record> records = parser.parse_all();

    ComponentSpec spec;
    bool saw_class = false;
    std::map<std::string, int> declared_param_counts;

    for (const Record& r : records) {
        const std::string kind = support::to_lower(r.name);

        if (kind == "class") {
            if (saw_class) bind_fail(r, "more than one Class record");
            if (r.args.size() != 4) {
                bind_fail(r, "expected (name, abstract?, superclass, files)");
            }
            saw_class = true;
            spec.class_name = text_of(r.args[0]);
            spec.is_abstract = yes_no(r, r.args[1]);
            spec.superclass = text_of(r.args[2]);
            if (r.args[3].kind == Arg::Kind::List) {
                for (const Arg& f : r.args[3].items) {
                    spec.source_files.push_back(text_of(f));
                }
            } else if (r.args[3].kind != Arg::Kind::Empty) {
                spec.source_files.push_back(text_of(r.args[3]));
            }
            continue;
        }

        if (kind == "attribute") {
            if (r.args.size() < 2) bind_fail(r, "expected (name, type, ...)");
            TypedSlot slot;
            slot.name = text_of(r.args[0]);
            const auto tag = parse_type_tag(text_of(r.args[1]));
            if (!tag) bind_fail(r, "unknown type '" + text_of(r.args[1]) + "'");
            bind_domain(r, slot, *tag,
                        std::vector<Arg>(r.args.begin() + 2, r.args.end()));
            spec.attributes.push_back(std::move(slot));
            continue;
        }

        if (kind == "method") {
            if (r.args.size() != 5) {
                bind_fail(r, "expected (id, name, return, category, #params)");
            }
            MethodSpec m;
            m.id = text_of(r.args[0]);
            m.name = text_of(r.args[1]);
            m.return_type = text_of(r.args[2]);
            const auto cat = parse_method_category(text_of(r.args[3]));
            if (!cat) bind_fail(r, "unknown method category '" + text_of(r.args[3]) + "'");
            m.category = *cat;
            if (r.args[4].kind != Arg::Kind::Int || r.args[4].ival < 0) {
                bind_fail(r, "parameter count must be a non-negative integer");
            }
            declared_param_counts[m.id] = static_cast<int>(r.args[4].ival);
            if (spec.find_method(m.id) != nullptr) {
                bind_fail(r, "duplicate method id '" + m.id + "'");
            }
            spec.methods.push_back(std::move(m));
            continue;
        }

        if (kind == "parameter") {
            if (r.args.size() < 3) bind_fail(r, "expected (method, name, type, ...)");
            const std::string mid = text_of(r.args[0]);
            auto* method = const_cast<MethodSpec*>(spec.find_method(mid));
            if (method == nullptr) {
                bind_fail(r, "parameter for unknown method '" + mid + "'");
            }
            TypedSlot slot;
            slot.name = text_of(r.args[1]);
            const auto tag = parse_type_tag(text_of(r.args[2]));
            if (!tag) bind_fail(r, "unknown type '" + text_of(r.args[2]) + "'");
            bind_domain(r, slot, *tag,
                        std::vector<Arg>(r.args.begin() + 3, r.args.end()));
            method->parameters.push_back(std::move(slot));
            continue;
        }

        if (kind == "node") {
            if (r.args.size() != 4) {
                bind_fail(r, "expected (id, start?, #out, [methods])");
            }
            NodeSpec n;
            n.id = text_of(r.args[0]);
            n.is_start = yes_no(r, r.args[1]);
            if (r.args[2].kind != Arg::Kind::Int) {
                bind_fail(r, "out-degree must be an integer");
            }
            n.declared_out_degree = static_cast<int>(r.args[2].ival);
            if (r.args[3].kind != Arg::Kind::List) {
                bind_fail(r, "node methods must be a [m1, ...] list");
            }
            for (const Arg& m : r.args[3].items) n.method_ids.push_back(text_of(m));
            spec.nodes.push_back(std::move(n));
            continue;
        }

        if (kind == "edge") {
            if (r.args.size() != 2) bind_fail(r, "expected (from, to)");
            spec.edges.push_back(EdgeSpec{text_of(r.args[0]), text_of(r.args[1])});
            continue;
        }

        if (kind == "state") {
            if (r.args.size() != 1) bind_fail(r, "expected (name)");
            spec.states.push_back(text_of(r.args[0]));
            continue;
        }

        if (kind == "templateparam") {
            if (r.args.size() != 2 || r.args[1].kind != Arg::Kind::List) {
                bind_fail(r, "expected (name, [types...])");
            }
            std::vector<std::string> types;
            for (const Arg& t : r.args[1].items) types.push_back(text_of(t));
            spec.template_bindings[text_of(r.args[0])] = std::move(types);
            continue;
        }

        bind_fail(r, "unknown record kind");
    }

    if (!saw_class) {
        throw SpecError("t-spec has no Class record");
    }

    for (const auto& m : spec.methods) {
        const int declared = declared_param_counts[m.id];
        if (declared != static_cast<int>(m.parameters.size())) {
            throw SpecError("method '" + m.id + "' declares " +
                            std::to_string(declared) + " parameter(s) but " +
                            std::to_string(m.parameters.size()) +
                            " Parameter record(s) were given");
        }
    }

    return spec;
}

namespace {

std::string domain_tail(const TypedSlot& slot) {
    using domain::SetDomain;
    switch (slot.type) {
        case TypeTag::Range: {
            if (const auto* d =
                    dynamic_cast<const domain::IntRangeDomain*>(slot.domain.get())) {
                return std::to_string(d->lo()) + ", " + std::to_string(d->hi());
            }
            if (const auto* d =
                    dynamic_cast<const domain::RealRangeDomain*>(slot.domain.get())) {
                char buf[96];
                std::snprintf(buf, sizeof buf, "%g, %g", d->lo(), d->hi());
                return buf;
            }
            return "0, 0";
        }
        case TypeTag::Set: {
            const auto* d = dynamic_cast<const SetDomain*>(slot.domain.get());
            std::string out = "[";
            if (d != nullptr) {
                for (std::size_t i = 0; i < d->values().size(); ++i) {
                    if (i != 0) out += ", ";
                    const auto& v = d->values()[i];
                    out += v.kind() == domain::ValueKind::String
                               ? "'" + v.as_string() + "'"
                               : v.to_source();
                }
            }
            return out + "]";
        }
        case TypeTag::String: {
            if (const auto* d =
                    dynamic_cast<const domain::StringDomain*>(slot.domain.get())) {
                return std::to_string(d->min_len()) + ", " + std::to_string(d->max_len());
            }
            if (const auto* d = dynamic_cast<const SetDomain*>(slot.domain.get())) {
                std::string out = "[";
                for (std::size_t i = 0; i < d->values().size(); ++i) {
                    if (i != 0) out += ", ";
                    out += "'" + d->values()[i].as_string() + "'";
                }
                return out + "]";
            }
            return "0, 16";
        }
        case TypeTag::Object:
        case TypeTag::Pointer:
            return "'" + slot.class_name + "'";
    }
    return "";
}

}  // namespace

std::string print_tspec(const ComponentSpec& spec) {
    std::string out;
    auto q = [](const std::string& s) { return "'" + s + "'"; };
    auto opt = [&](const std::string& s) {
        return s.empty() ? std::string("<empty>") : q(s);
    };

    out += "Class (" + q(spec.class_name) + ", " + (spec.is_abstract ? "Yes" : "No") +
           ", " + opt(spec.superclass) + ", ";
    if (spec.source_files.empty()) {
        out += "<empty>";
    } else {
        out += "[";
        for (std::size_t i = 0; i < spec.source_files.size(); ++i) {
            if (i != 0) out += ", ";
            out += q(spec.source_files[i]);
        }
        out += "]";
    }
    out += ")\n\n";

    for (const auto& a : spec.attributes) {
        out += "Attribute (" + q(a.name) + ", " + to_string(a.type) + ", " +
               domain_tail(a) + ")\n";
    }
    if (!spec.attributes.empty()) out += "\n";

    for (const auto& m : spec.methods) {
        out += "Method (" + m.id + ", " + q(m.name) + ", " + opt(m.return_type) + ", " +
               to_string(m.category) + ", " + std::to_string(m.parameters.size()) +
               ")\n";
        for (const auto& p : m.parameters) {
            out += "Parameter (" + m.id + ", " + q(p.name) + ", " + to_string(p.type) +
                   ", " + domain_tail(p) + ")\n";
        }
    }
    if (!spec.methods.empty()) out += "\n";

    for (const auto& st : spec.states) {
        out += "State (" + q(st) + ")\n";
    }
    if (!spec.states.empty()) out += "\n";

    for (const auto& [name, types] : spec.template_bindings) {
        out += "TemplateParam (" + q(name) + ", [";
        for (std::size_t i = 0; i < types.size(); ++i) {
            if (i != 0) out += ", ";
            out += q(types[i]);
        }
        out += "])\n";
    }
    if (!spec.template_bindings.empty()) out += "\n";

    for (const auto& n : spec.nodes) {
        out += "Node (" + n.id + ", " + (n.is_start ? "Yes" : "No") + ", " +
               std::to_string(n.declared_out_degree) + ", [";
        for (std::size_t i = 0; i < n.method_ids.size(); ++i) {
            if (i != 0) out += ", ";
            out += n.method_ids[i];
        }
        out += "])\n";
    }
    if (!spec.nodes.empty()) out += "\n";

    for (const auto& e : spec.edges) {
        out += "Edge (" + e.from + ", " + e.to + ")\n";
    }
    return out;
}

// ------------------------------------------------------------- Assembly

bool operator==(const RoleSpec& a, const RoleSpec& b) {
    return a.id == b.id && a.class_name == b.class_name &&
           a.spec_file == b.spec_file;
}

bool operator==(const WireSpec& a, const WireSpec& b) {
    return a.caller_role == b.caller_role && a.caller_method == b.caller_method &&
           a.callee_role == b.callee_role && a.callee_method == b.callee_method &&
           a.must_emit == b.must_emit;
}

bool operator==(const ExportSpec& a, const ExportSpec& b) {
    return a.role == b.role && a.method == b.method && a.alias == b.alias;
}

bool operator==(const AssemblySpec& a, const AssemblySpec& b) {
    return a.name == b.name && a.roles == b.roles && a.wiring == b.wiring &&
           a.exports == b.exports;
}

AssemblySpec parse_assembly(std::string_view text) {
    RecordParser parser(text);
    AssemblySpec spec = parser.parse_assembly_doc();

    // Referential closure over the assembly's own roles.  Method-level
    // checks need the per-class specs and live in stc::assembly.
    if (spec.roles.empty()) {
        throw SpecError("assembly '" + spec.name + "' declares no roles");
    }
    for (const auto& w : spec.wiring) {
        if (spec.find_role(w.caller_role) == nullptr) {
            throw SpecError("wire caller names unknown role '" + w.caller_role + "'");
        }
        if (spec.find_role(w.callee_role) == nullptr) {
            throw SpecError("wire callee names unknown role '" + w.callee_role + "'");
        }
        if (w.caller_role == w.callee_role) {
            throw SpecError("wire in role '" + w.caller_role +
                            "' calls itself; self-wiring is not a hidden action");
        }
    }
    if (spec.exports.empty()) {
        throw SpecError("assembly '" + spec.name +
                        "' exports nothing; its interface would be empty");
    }
    std::map<std::string, int> aliases;
    for (const auto& e : spec.exports) {
        if (spec.find_role(e.role) == nullptr) {
            throw SpecError("export names unknown role '" + e.role + "'");
        }
        const std::string public_name =
            e.alias.empty() ? e.role + "." + e.method : e.alias;
        if (++aliases[public_name] > 1) {
            throw SpecError("duplicate public name '" + public_name +
                            "' on the assembly interface");
        }
    }
    return spec;
}

std::string print_assembly(const AssemblySpec& spec) {
    std::string out;
    auto q = [](const std::string& s) { return "'" + s + "'"; };

    out += "Assembly (" + q(spec.name) + ") {\n";
    out += "  roles {\n";
    for (const auto& r : spec.roles) {
        out += "    Role (" + r.id + ", " + q(r.class_name);
        if (!r.spec_file.empty()) out += ", " + q(r.spec_file);
        out += ")\n";
    }
    out += "  }\n";
    if (!spec.wiring.empty()) {
        out += "  wiring {\n";
        for (const auto& w : spec.wiring) {
            out += "    Wire (" + w.caller_role + ", " + w.caller_method + ", " +
                   w.callee_role + ", " + w.callee_method + ", " +
                   (w.must_emit ? "emits" : "silent") + ")\n";
        }
        out += "  }\n";
    }
    out += "  exports {\n";
    for (const auto& e : spec.exports) {
        out += "    Export (" + e.role + ", " + e.method;
        if (!e.alias.empty()) out += ", " + q(e.alias);
        out += ")\n";
    }
    out += "  }\n";
    out += "}\n";
    return out;
}

}  // namespace stc::tspec
