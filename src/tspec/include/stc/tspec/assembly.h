// Assembly blocks — the t-spec extension describing a *composition* of
// components (paper §6 gestures at interclass testing; PAPERS.md's
// "Compositional Specifications for ioco Testing" supplies the
// semantics).  An assembly names a set of roles (instances of
// per-class t-specs), wires role-to-role calls that become *hidden*
// internal actions of the composition, and exports the subset of role
// methods that remain observable on the assembly's public interface:
//
//   Assembly ('Shop') {
//     roles {
//       Role (wallet, 'Wallet')
//       Role (ledger, 'Ledger', 'ledger.tspec')   // optional spec file
//     }
//     wiring {
//       Wire (wallet, m4, ledger, m3, emits)      // hidden action; `emits`
//       Wire (wallet, m5, ledger, m3, emits)      // marks an ioco output
//     }                                           // obligation
//     exports {
//       Export (wallet, m4, 'Deposit')            // optional public alias
//     }
//   }
//
// Record syntax, '//' comments, quoting and '<empty>' are exactly the
// Fig. 3 t-spec lexicon (the same lexer is reused); only the brace
// block structure is new.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace stc::tspec {

/// One named instance of a component class inside the assembly.
struct RoleSpec {
    std::string id;          ///< role name, e.g. "wallet"
    std::string class_name;  ///< component class, e.g. "Wallet"
    /// Optional path of the role's own t-spec file, resolved relative
    /// to the assembly file by the caller; empty means the class is
    /// resolved against a built-in spec registry.
    std::string spec_file;
};

/// A role-to-role call: when `caller_role` executes `caller_method`,
/// the composition internally drives `callee_method` on `callee_role`.
/// In the synchronous product this pair becomes one hidden action —
/// neither half is separately observable on the assembly interface.
struct WireSpec {
    std::string caller_role;
    std::string caller_method;  ///< method id in the caller's t-spec (e.g. m4)
    std::string callee_role;
    std::string callee_method;  ///< method id in the callee's t-spec
    /// ioco output obligation: the hidden action must leave an
    /// observable trace (the callee's state report changes).  A mutant
    /// that silently absorbs the call violates quiescence.
    bool must_emit = false;
};

/// A role method that stays observable on the assembly interface.
struct ExportSpec {
    std::string role;
    std::string method;  ///< method id in the role's t-spec
    std::string alias;   ///< public name; empty = the method's own name
};

/// Parsed assembly block.  Syntactically valid and referentially
/// closed over its own roles (parse_assembly enforces that); deeper
/// validation — method ids existing in the component specs, wiring
/// acyclicity, product determinism — happens in stc::assembly where
/// the per-class specs are available.
struct AssemblySpec {
    std::string name;
    std::vector<RoleSpec> roles;
    std::vector<WireSpec> wiring;
    std::vector<ExportSpec> exports;

    [[nodiscard]] const RoleSpec* find_role(const std::string& id) const {
        for (const auto& r : roles) {
            if (r.id == id) return &r;
        }
        return nullptr;
    }
};

[[nodiscard]] bool operator==(const RoleSpec& a, const RoleSpec& b);
[[nodiscard]] bool operator==(const WireSpec& a, const WireSpec& b);
[[nodiscard]] bool operator==(const ExportSpec& a, const ExportSpec& b);
[[nodiscard]] bool operator==(const AssemblySpec& a, const AssemblySpec& b);

/// Parse an assembly t-spec text.  Throws stc::ParseError on syntax
/// errors and stc::SpecError on record-level inconsistencies (duplicate
/// role ids, wiring or exports naming unknown roles, duplicate public
/// aliases, an empty export set).
[[nodiscard]] AssemblySpec parse_assembly(std::string_view text);

/// Render an AssemblySpec back to assembly-block text (round-trip
/// companion: parse_assembly(print_assembly(s)) == s).
[[nodiscard]] std::string print_assembly(const AssemblySpec& spec);

}  // namespace stc::tspec
