// Parser for the t-spec text format of Fig. 3.
//
// The format is a flat sequence of records:
//
//   Class ( 'Product', No, <empty>, <empty> )   // name, abstract?, superclass, files
//   Attribute ('qty', range, 1, 99999)
//   Method (m1, 'Product', <empty>, constructor, 0)
//   Parameter (m5, 'n', string, ['p1', 'p2', 'p3'])
//   Node (n1, No, 1, [m1, m2])
//   Edge (n1, n4)
//   TemplateParam ('ClassType', ['int', 'CInt'])   // extension, §3.4.1
//   State ('loaded')                               // set/reset states, §3.3
//
// '//' starts a line comment.  Strings may be quoted with ' or ".
// '<empty>' is the explicit empty field of the paper's figure.
#pragma once

#include <string>
#include <string_view>

#include "stc/tspec/model.h"

namespace stc::tspec {

/// Parse a full t-spec text into a ComponentSpec.  Throws stc::ParseError
/// on syntax errors and stc::SpecError on record-level inconsistencies
/// (e.g. Parameter for an unknown method, declared parameter-count
/// mismatch).  The result is *not* semantically validated — call
/// ComponentSpec::validate()/ensure_valid() for that, matching the
/// paper's observation that spec defects are findable by the tester.
[[nodiscard]] ComponentSpec parse_tspec(std::string_view text);

/// Render a ComponentSpec back to t-spec text (round-trip companion of
/// parse_tspec; parse(print(s)) == s modulo formatting).
[[nodiscard]] std::string print_tspec(const ComponentSpec& spec);

}  // namespace stc::tspec
