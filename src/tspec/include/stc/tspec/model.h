// In-memory model of a t-spec — the test specification a producer embeds
// into a self-testable component (paper §3.2, Fig. 3).
//
// A t-spec describes (a) the component's interface: class info,
// attributes with value domains, methods with categories and typed
// parameters; and (b) its test model: the TFM nodes and edges.  The
// Driver Generator consumes this model; nothing downstream ever looks at
// the component's source code (the approach is specification-based).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stc/domain/domain.h"
#include "stc/tfm/graph.h"

namespace stc::tspec {

/// The t-spec's five allowable attribute/parameter types (Fig. 3).
enum class TypeTag { Range, Set, String, Object, Pointer };

[[nodiscard]] const char* to_string(TypeTag tag) noexcept;
[[nodiscard]] std::optional<TypeTag> parse_type_tag(const std::string& word);

/// Method category "relative to test reuse" (Fig. 3) — drives the
/// hierarchical incremental technique (§3.4.2): constructors/destructors
/// are excluded from reuse decisions; inherited / redefined / new
/// determine whether a parent's test cases can be reused.
enum class MethodCategory { Constructor, Destructor, New, Inherited, Redefined };

[[nodiscard]] const char* to_string(MethodCategory c) noexcept;
[[nodiscard]] std::optional<MethodCategory> parse_method_category(const std::string& word);

/// A typed value slot: an attribute of the class or a parameter of a
/// method, with its valid subdomain.
struct TypedSlot {
    std::string name;
    TypeTag type = TypeTag::Range;
    domain::DomainPtr domain;       ///< null only for Object/Pointer without completion
    std::string class_name;         ///< for Object/Pointer: the pointee class
};

/// One method of the component's interface.
struct MethodSpec {
    std::string id;                 ///< t-spec identifier, e.g. "m1"
    std::string name;               ///< C++ name, e.g. "UpdateQty"
    std::string return_type;        ///< "" == void / none (Fig. 3 "<empty>")
    MethodCategory category = MethodCategory::New;
    std::vector<TypedSlot> parameters;

    [[nodiscard]] bool is_constructor() const noexcept {
        return category == MethodCategory::Constructor;
    }
    [[nodiscard]] bool is_destructor() const noexcept {
        return category == MethodCategory::Destructor;
    }
    /// Signature string for logs and generated source: "Name(t1, t2)".
    [[nodiscard]] std::string signature() const;
};

/// A node method entry "!mX" marks a *negative* call: the transaction
/// deliberately drives the method outside its contract and expects the
/// precondition to reject it — the error-recovery transactions §3.4.1
/// singles out.  These helpers split the marker from the method id.
[[nodiscard]] bool is_negative_call(const std::string& entry);
[[nodiscard]] std::string strip_negative_marker(const std::string& entry);

/// One TFM node declaration (Fig. 3: id, starting?, declared out-degree,
/// methods).  The declared out-degree is redundant with the Edge records;
/// validation cross-checks it.
struct NodeSpec {
    std::string id;
    bool is_start = false;
    int declared_out_degree = 0;
    std::vector<std::string> method_ids;
};

/// One TFM link declaration.
struct EdgeSpec {
    std::string from;
    std::string to;
};

/// A semantic problem found by ComponentSpec::validate().
struct SpecDiagnostic {
    std::string where;   ///< offending record id/name
    std::string message;
};

/// The complete t-spec for one component (one class, per the paper's
/// scope; see §6 for the planned multi-class extension).
class ComponentSpec {
public:
    // -- Class record -------------------------------------------------
    std::string class_name;
    bool is_abstract = false;
    std::string superclass;                  ///< "" == none
    std::vector<std::string> source_files;

    // -- Interface description ----------------------------------------
    std::vector<TypedSlot> attributes;
    std::vector<MethodSpec> methods;

    // -- Template-class support (§3.4.1: the tester indicates the types
    //    to instantiate a generic class with) -------------------------
    std::map<std::string, std::vector<std::string>> template_bindings;

    // -- Predefined internal states (set/reset capability, §3.3) --------
    std::vector<std::string> states;

    // -- Test model -----------------------------------------------------
    std::vector<NodeSpec> nodes;
    std::vector<EdgeSpec> edges;

    // -- Lookup ---------------------------------------------------------
    [[nodiscard]] const MethodSpec* find_method(const std::string& id) const;
    [[nodiscard]] const MethodSpec* find_method_by_name(const std::string& name) const;
    [[nodiscard]] const NodeSpec* find_node(const std::string& id) const;
    [[nodiscard]] const TypedSlot* find_attribute(const std::string& name) const;

    /// All semantic problems: dangling method ids in nodes, dangling node
    /// ids in edges, out-degree mismatches, duplicate ids, missing
    /// constructor on start nodes, etc.  Empty result == valid.
    [[nodiscard]] std::vector<SpecDiagnostic> validate() const;

    /// Throwing variant of validate() for pipeline use.
    void ensure_valid() const;

    /// Build the TFM graph from the node/edge declarations.
    [[nodiscard]] tfm::Graph build_tfm() const;
};

}  // namespace stc::tspec
