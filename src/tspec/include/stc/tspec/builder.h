// Fluent builder for ComponentSpec — the programmatic alternative to
// writing t-spec text.  Component producers embed a t-spec into their
// component either as text (parsed with parse_tspec) or by constructing
// it with this builder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stc/tspec/model.h"

namespace stc::tspec {

/// Builds a ComponentSpec incrementally.  Methods return *this for
/// chaining.  Parameter helpers attach to the most recently added
/// method.  build() derives the declared node out-degrees from the edges
/// and semantically validates the result.
class SpecBuilder {
public:
    explicit SpecBuilder(std::string class_name);

    SpecBuilder& abstract(bool value = true);
    SpecBuilder& superclass(std::string name);
    SpecBuilder& source_file(std::string path);

    // -- Attributes ----------------------------------------------------
    SpecBuilder& attr_range(std::string name, std::int64_t lo, std::int64_t hi);
    SpecBuilder& attr_real_range(std::string name, double lo, double hi);
    SpecBuilder& attr_string(std::string name, std::size_t min_len, std::size_t max_len);
    SpecBuilder& attr_pointer(std::string name, std::string class_name);
    SpecBuilder& attr_object(std::string name, std::string class_name);
    SpecBuilder& attr_set(std::string name, std::vector<domain::Value> values);

    // -- Methods and parameters -----------------------------------------
    /// Start a new method; subsequent param_* calls attach to it.
    SpecBuilder& method(std::string id, std::string name, MethodCategory category,
                        std::string return_type = {});

    SpecBuilder& param_range(std::string name, std::int64_t lo, std::int64_t hi);
    SpecBuilder& param_real_range(std::string name, double lo, double hi);
    SpecBuilder& param_string(std::string name, std::size_t min_len,
                              std::size_t max_len);
    SpecBuilder& param_string_set(std::string name, std::vector<std::string> values);
    SpecBuilder& param_int_set(std::string name, std::vector<std::int64_t> values);
    SpecBuilder& param_pointer(std::string name, std::string class_name);
    SpecBuilder& param_object(std::string name, std::string class_name);

    // -- Template bindings ----------------------------------------------
    SpecBuilder& template_param(std::string name, std::vector<std::string> types);

    // -- Predefined internal states (set/reset, §3.3) --------------------
    SpecBuilder& state(std::string name);

    // -- Test model -------------------------------------------------------
    SpecBuilder& node(std::string id, bool is_start,
                      std::vector<std::string> method_ids);
    SpecBuilder& edge(std::string from, std::string to);

    /// Finalize: computes node out-degrees, validates, returns the spec.
    /// Throws stc::SpecError if the spec is inconsistent.
    [[nodiscard]] ComponentSpec build() const;

    /// Finalize without validation (for tests that exercise validate()).
    [[nodiscard]] ComponentSpec build_unchecked() const;

private:
    MethodSpec& current_method();
    SpecBuilder& add_param(TypedSlot slot);

    ComponentSpec spec_;
};

}  // namespace stc::tspec
