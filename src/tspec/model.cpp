#include "stc/tspec/model.h"

#include <set>

#include "stc/support/error.h"
#include "stc/support/strings.h"

namespace stc::tspec {

const char* to_string(TypeTag tag) noexcept {
    switch (tag) {
        case TypeTag::Range: return "range";
        case TypeTag::Set: return "set";
        case TypeTag::String: return "string";
        case TypeTag::Object: return "object";
        case TypeTag::Pointer: return "pointer";
    }
    return "?";
}

std::optional<TypeTag> parse_type_tag(const std::string& word) {
    const std::string w = support::to_lower(word);
    if (w == "range") return TypeTag::Range;
    if (w == "set") return TypeTag::Set;
    if (w == "string") return TypeTag::String;
    if (w == "object") return TypeTag::Object;
    if (w == "pointer") return TypeTag::Pointer;
    return std::nullopt;
}

const char* to_string(MethodCategory c) noexcept {
    switch (c) {
        case MethodCategory::Constructor: return "constructor";
        case MethodCategory::Destructor: return "destructor";
        case MethodCategory::New: return "new";
        case MethodCategory::Inherited: return "inherited";
        case MethodCategory::Redefined: return "redefined";
    }
    return "?";
}

std::optional<MethodCategory> parse_method_category(const std::string& word) {
    const std::string w = support::to_lower(word);
    if (w == "constructor") return MethodCategory::Constructor;
    if (w == "destructor") return MethodCategory::Destructor;
    if (w == "new") return MethodCategory::New;
    if (w == "inherited") return MethodCategory::Inherited;
    if (w == "redefined") return MethodCategory::Redefined;
    return std::nullopt;
}

std::string MethodSpec::signature() const {
    std::string out = name + "(";
    for (std::size_t i = 0; i < parameters.size(); ++i) {
        if (i != 0) out += ", ";
        out += to_string(parameters[i].type);
        if (!parameters[i].class_name.empty()) out += ":" + parameters[i].class_name;
        out += " " + parameters[i].name;
    }
    out += ")";
    return out;
}

bool is_negative_call(const std::string& entry) {
    return !entry.empty() && entry.front() == '!';
}

std::string strip_negative_marker(const std::string& entry) {
    return is_negative_call(entry) ? entry.substr(1) : entry;
}

const MethodSpec* ComponentSpec::find_method(const std::string& id) const {
    for (const auto& m : methods) {
        if (m.id == id) return &m;
    }
    return nullptr;
}

const MethodSpec* ComponentSpec::find_method_by_name(const std::string& name) const {
    for (const auto& m : methods) {
        if (m.name == name) return &m;
    }
    return nullptr;
}

const NodeSpec* ComponentSpec::find_node(const std::string& id) const {
    for (const auto& n : nodes) {
        if (n.id == id) return &n;
    }
    return nullptr;
}

const TypedSlot* ComponentSpec::find_attribute(const std::string& name) const {
    for (const auto& a : attributes) {
        if (a.name == name) return &a;
    }
    return nullptr;
}

std::vector<SpecDiagnostic> ComponentSpec::validate() const {
    std::vector<SpecDiagnostic> out;

    if (class_name.empty()) out.push_back({"Class", "class name is empty"});

    std::set<std::string> method_ids;
    for (const auto& m : methods) {
        if (m.id.empty()) out.push_back({m.name, "method with empty id"});
        if (!method_ids.insert(m.id).second) {
            out.push_back({m.id, "duplicate method id"});
        }
        for (const auto& p : m.parameters) {
            const bool structured = p.type == TypeTag::Object || p.type == TypeTag::Pointer;
            if (!structured && !p.domain) {
                out.push_back({m.id, "parameter '" + p.name + "' has no value domain"});
            }
            if (structured && p.class_name.empty()) {
                out.push_back({m.id, "structured parameter '" + p.name +
                                         "' does not name its class"});
            }
        }
    }

    std::set<std::string> node_ids;
    std::map<std::string, int> observed_out_degree;
    for (const auto& n : nodes) {
        if (!node_ids.insert(n.id).second) out.push_back({n.id, "duplicate node id"});
        observed_out_degree[n.id] = 0;
        if (n.method_ids.empty()) {
            out.push_back({n.id, "node groups no methods"});
        }
        for (const auto& entry : n.method_ids) {
            const std::string mid = strip_negative_marker(entry);
            if (method_ids.count(mid) == 0) {
                out.push_back({n.id, "node references unknown method id " + mid});
                continue;
            }
            if (is_negative_call(entry)) {
                const MethodSpec* m = find_method(mid);
                if (m != nullptr && (m->is_constructor() || m->is_destructor())) {
                    out.push_back({n.id,
                                   "negative call marker on constructor/destructor " +
                                       mid});
                }
            }
        }
        if (n.is_start) {
            const bool has_ctor = [&] {
                for (const auto& entry : n.method_ids) {
                    const MethodSpec* m = find_method(strip_negative_marker(entry));
                    if (m != nullptr && m->is_constructor()) return true;
                }
                return false;
            }();
            if (!has_ctor) {
                out.push_back({n.id, "starting node contains no constructor"});
            }
        }
    }

    for (const auto& e : edges) {
        if (node_ids.count(e.from) == 0) {
            out.push_back({e.from, "edge from unknown node"});
        } else {
            ++observed_out_degree[e.from];
        }
        if (node_ids.count(e.to) == 0) out.push_back({e.to, "edge to unknown node"});
    }

    for (const auto& n : nodes) {
        const auto it = observed_out_degree.find(n.id);
        const int observed = it == observed_out_degree.end() ? 0 : it->second;
        if (n.declared_out_degree >= 0 && observed != n.declared_out_degree) {
            out.push_back({n.id, "declared out-degree " +
                                     std::to_string(n.declared_out_degree) +
                                     " but " + std::to_string(observed) +
                                     " edge(s) present"});
        }
    }

    if (!nodes.empty()) {
        const bool has_start = [&] {
            for (const auto& n : nodes) {
                if (n.is_start) return true;
            }
            return false;
        }();
        if (!has_start) out.push_back({"TFM", "no starting node declared"});
    }

    return out;
}

void ComponentSpec::ensure_valid() const {
    const auto problems = validate();
    if (problems.empty()) return;
    std::string msg = "t-spec for '" + class_name + "' is invalid:";
    for (const auto& p : problems) msg += "\n  [" + p.where + "] " + p.message;
    throw SpecError(msg);
}

tfm::Graph ComponentSpec::build_tfm() const {
    ensure_valid();
    tfm::Graph g;
    for (const auto& n : nodes) {
        g.add_node(tfm::Node{n.id, n.is_start, n.method_ids});
    }
    for (const auto& e : edges) g.add_edge(e.from, e.to);
    return g;
}

}  // namespace stc::tspec
