#include "stc/fuzz/shrink.h"

#include <algorithm>
#include <vector>

#include "path_case.h"

namespace stc::fuzz {

namespace {

using detail::PathCase;
using detail::assemble;
using detail::reslice;

/// Candidate replacement values for one in-domain argument, smallest
/// first: a canonical zero when the domain admits it, then the domain's
/// declared boundary values.
std::vector<domain::Value> reduction_candidates(const domain::Domain& dom) {
    std::vector<domain::Value> out;
    domain::Value zero;
    switch (dom.kind()) {
        case domain::ValueKind::Int: zero = domain::Value::make_int(0); break;
        case domain::ValueKind::Real: zero = domain::Value::make_real(0.0); break;
        case domain::ValueKind::String: zero = domain::Value::make_string(""); break;
        default: return out;  // structured kinds are never value-shrunk
    }
    if (dom.contains(zero)) out.push_back(zero);
    for (const auto& b : dom.boundary_values()) {
        if (std::find(out.begin(), out.end(), b) == out.end()) out.push_back(b);
    }
    return out;
}

}  // namespace

ShrinkResult shrink_case(const tspec::ComponentSpec& spec, const tfm::Graph& graph,
                         const driver::TestCase& failing,
                         const Predicate& still_fails,
                         const ShrinkOptions& options) {
    const obs::SpanScope shrink_span(options.obs.tracer, "phase", "shrink-case");
    ShrinkResult result;
    result.minimized = failing;

    auto try_candidate = [&](const driver::TestCase& candidate) -> bool {
        if (result.steps >= options.max_steps) {
            result.budget_exhausted = true;
            return false;
        }
        ++result.steps;
        options.obs.metrics.add("shrink.steps");
        const obs::SpanScope step_span(options.obs.tracer, "shrink-step",
                                       candidate.transaction_text);
        return still_fails(candidate);
    };

    // --- Phase 1: ddmin over interior path nodes -------------------------
    PathCase pc;
    if (reslice(graph, result.minimized, &pc) && pc.path.size() > 2) {
        // `kept` indexes into pc.path/pc.groups; birth (0) and death
        // (last) never enter the removable set.
        std::vector<std::size_t> interior;
        for (std::size_t i = 1; i + 1 < pc.path.size(); ++i) interior.push_back(i);

        auto build = [&](const std::vector<std::size_t>& keep) -> PathCase {
            PathCase candidate;
            candidate.path.push_back(pc.path.front());
            candidate.groups.push_back(pc.groups.front());
            for (const std::size_t i : keep) {
                candidate.path.push_back(pc.path[i]);
                candidate.groups.push_back(pc.groups[i]);
            }
            candidate.path.push_back(pc.path.back());
            candidate.groups.push_back(pc.groups.back());
            return candidate;
        };

        std::size_t granularity = std::min<std::size_t>(2, interior.size());
        while (!interior.empty() && !result.budget_exhausted && granularity > 0) {
            const std::size_t chunk =
                (interior.size() + granularity - 1) / granularity;
            bool removed_some = false;
            for (std::size_t start = 0;
                 start < interior.size() && !result.budget_exhausted;
                 start += chunk) {
                // Complement test: drop interior[start, start+chunk).
                std::vector<std::size_t> keep;
                keep.reserve(interior.size());
                for (std::size_t i = 0; i < interior.size(); ++i) {
                    if (i < start || i >= start + chunk) keep.push_back(interior[i]);
                }
                const PathCase candidate_pc = build(keep);
                if (!graph.is_valid_transaction(candidate_pc.path)) continue;
                const driver::TestCase candidate =
                    assemble(graph, result.minimized, candidate_pc);
                if (!try_candidate(candidate)) continue;
                result.sequence_removals += interior.size() - keep.size();
                result.minimized = candidate;
                interior = keep;
                granularity = std::min<std::size_t>(
                    std::max<std::size_t>(granularity - 1, 2), interior.size());
                removed_some = true;
                break;  // re-chunk against the smaller interior
            }
            if (removed_some) continue;
            if (granularity >= interior.size()) break;  // 1-minimal
            granularity = std::min(granularity * 2, interior.size());
        }
        // Re-anchor the working copy: `pc` may be stale after removals.
        (void)reslice(graph, result.minimized, &pc);
    }

    // --- Phase 2: pull surviving argument values toward boundaries -------
    for (std::size_t c = 0;
         c < result.minimized.calls.size() && !result.budget_exhausted; ++c) {
        // Copy the per-call invariants out up front: the loop below
        // reassigns result.minimized, which frees the calls buffer any
        // reference into it would dangle over.  Accepting a candidate
        // never changes the call shape, only one argument value.
        if (result.minimized.calls[c].expect_rejection) {
            continue;  // args are out of domain on purpose
        }
        const std::string method_id = result.minimized.calls[c].method_id;
        const std::size_t arg_count = result.minimized.calls[c].arguments.size();
        const tspec::MethodSpec* method = spec.find_method(method_id);
        if (method == nullptr || method->parameters.size() != arg_count) {
            continue;
        }
        for (std::size_t a = 0; a < arg_count && !result.budget_exhausted; ++a) {
            const tspec::TypedSlot& slot = method->parameters[a];
            if (!slot.domain) continue;
            for (const domain::Value& v : reduction_candidates(*slot.domain)) {
                // Candidates are ranked smallest-first; once the current
                // value's own rank is reached, every later candidate is
                // worse, so stop (also makes re-shrinking a no-op).
                if (v == result.minimized.calls[c].arguments[a]) break;
                driver::TestCase candidate = result.minimized;
                candidate.calls[c].arguments[a] = v;
                if (try_candidate(candidate)) {
                    result.minimized = std::move(candidate);
                    ++result.value_reductions;
                    options.obs.metrics.add("shrink.value_reductions");
                    break;
                }
                if (result.budget_exhausted) break;
            }
        }
    }

    options.obs.metrics.add("shrink.cases");
    options.obs.metrics.add("shrink.sequence_removals",
                            result.sequence_removals);
    return result;
}

}  // namespace stc::fuzz
