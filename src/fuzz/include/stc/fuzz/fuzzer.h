// Coverage-guided fuzzing over TFM transactions.
//
// The Driver Generator's suites exercise each selected transaction once
// with one set of random values — systematic, but shallow.  The fuzzer
// iterates: starting from the generated suite as the seed population, it
// mutates transactions (re-draw argument values, extend or truncate the
// path with TFM-valid random walks, splice two population members at a
// shared node) and keeps every input that reaches new coverage — a new
// TFM node or link, a new per-node visit-count bucket, or a new verdict
// kind.  Mutants of interesting inputs are more likely to be interesting
// themselves, so the population concentrates on the component's deeper
// behaviours while every proposed sequence stays a structurally valid
// transaction (the paper's §3.2 definition of allowable method orders).
//
// A failing execution (assertion violation, crash, uncaught exception,
// contract-not-enforced) becomes a Finding: it is deduplicated by
// (verdict, failing method), minimized with the delta-debugging shrinker
// (shrink.h), and handed back for corpus persistence (corpus.h).
//
// Determinism: all randomness flows through one Pcg32 derived from
// FuzzOptions::seed; shrinking and persistence consume no randomness.
// Two runs with the same seed, iteration budget, and component are
// byte-identical — findings, statistics, corpus files, everything.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "stc/driver/generator.h"
#include "stc/driver/runner.h"
#include "stc/fuzz/corpus.h"
#include "stc/fuzz/shrink.h"
#include "stc/obs/context.h"
#include "stc/tspec/model.h"

namespace stc::fuzz {

/// Executes one test case and reports its result.  Abstracts the
/// execution environment: a plain TestRunner::run_case closure for
/// component faults, the same wrapped in a MutantActivation for fuzzing
/// against a mutant.
using CaseRunner = std::function<driver::TestResult(const driver::TestCase&)>;

struct FuzzOptions {
    std::uint64_t seed = 1;
    /// Test-case executions spent on exploration (shrinking has its own
    /// budget and is not counted here).
    std::size_t iterations = 1000;
    /// Options for the seed suite (enumeration bounds also cap mutated
    /// path lengths).
    driver::GeneratorOptions generator;
    /// Shrink budget per finding, in predicate evaluations.
    std::size_t max_shrink_steps = 512;
    /// Cap on distinct findings before the run stops early (0 = none).
    std::size_t max_findings = 0;
    /// Recorded in findings/corpus entries when fuzzing a mutant.
    std::string mutant_id;
    /// Observability: "fuzz-iteration" spans plus fuzz.* counters.
    obs::Context obs;
};

/// One deduplicated failure, already minimized.
struct Finding {
    driver::TestCase reproducer;   ///< shrunk
    driver::TestCase original;     ///< as first observed
    driver::Verdict verdict = driver::Verdict::Pass;
    std::string failed_method;     ///< normalized: name only, no args/marker
    std::string message;
    std::string mutant_id;         ///< copied from FuzzOptions::mutant_id
    std::size_t iteration = 0;     ///< exploration step that found it
    ShrinkResult shrink;           ///< shrink telemetry (steps, removals)

    /// The (verdict, method) dedupe key.
    [[nodiscard]] std::string key() const;

    /// Corpus form of this finding (single-case suite; suite.seed is set
    /// by the persister).
    [[nodiscard]] CorpusEntry to_corpus_entry(const std::string& class_name) const;
};

struct FuzzStats {
    std::size_t iterations = 0;       ///< exploration executions
    std::size_t executions = 0;       ///< total, incl. shrink re-runs
    std::size_t interesting = 0;      ///< inputs admitted to the population
    std::size_t population = 0;       ///< final population size
    std::size_t nodes_covered = 0;
    std::size_t edges_covered = 0;
    /// Executions per verdict kind, keyed by driver::to_string text.
    std::map<std::string, std::size_t> verdict_counts;

    /// Deterministic one-per-line rendering for reports and the CLI
    /// seed-stability gate.
    [[nodiscard]] std::string render() const;
};

struct FuzzResult {
    std::vector<Finding> findings;  ///< in discovery order
    FuzzStats stats;
};

/// The coverage-guided fuzz loop.
class Fuzzer {
public:
    explicit Fuzzer(tspec::ComponentSpec spec, FuzzOptions options = {});

    /// Tester completions for structured parameters (also used when
    /// mutators re-draw argument values).
    Fuzzer& completions(const driver::CompletionRegistry* registry);

    /// How to execute a candidate.  Required before run().
    Fuzzer& case_runner(CaseRunner runner);

    [[nodiscard]] FuzzResult run();

private:
    tspec::ComponentSpec spec_;
    FuzzOptions options_;
    const driver::CompletionRegistry* completions_ = nullptr;
    CaseRunner runner_;
};

/// Outcome of persisting one finding into a corpus directory.
struct PersistOutcome {
    std::string path;           ///< file written ("" when not reproducible)
    bool reproducible = false;  ///< reloaded+recompleted replay matched
};

/// Persist `entry` into `dir` under its canonical filename — but only
/// after proving the *persisted* form replays: the entry is serialized,
/// reloaded, its structured placeholders recompleted from `entry_seed`
/// (stored in the file), and re-run through `runner`; a verdict mismatch
/// (e.g. a pointer argument whose identity mattered) yields
/// reproducible=false and no file.
[[nodiscard]] PersistOutcome persist_entry(
    const std::string& dir, CorpusEntry entry,
    const driver::CompletionRegistry* completions, const CaseRunner& runner,
    std::uint64_t entry_seed);

}  // namespace stc::fuzz
