// Replayable regression corpus — persistence of minimized reproducers.
//
// Every failure the fuzzer (or the campaign shrinker) minimizes is
// saved as one corpus entry: the paper's "test cases ... stored in the
// component" idea extended to *failing* cases, so a shrunk finding
// becomes a permanent regression test that any consumer can replay.
// An entry is a concat-corpus header (recorded verdict, failing method,
// optionally the mutant that was active) followed by a standard
// concat-suite block holding exactly one test case (docs/FORMATS.md §7).
//
// Structured (pointer) arguments are saved as typed placeholders, like
// any frozen suite; replaying recompletes them deterministically from
// the entry's recorded seed, which is why the writer re-verifies the
// persisted form before committing it to the corpus.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stc/driver/runner.h"
#include "stc/driver/suite_io.h"

namespace stc::fuzz {

/// One minimized reproducer plus the behaviour it must replay to.
struct CorpusEntry {
    driver::TestSuite suite;  ///< exactly one test case
    driver::Verdict verdict = driver::Verdict::Pass;
    std::string failed_method;  ///< "Method called" of the recorded failure
    std::string mutant_id;      ///< active mutant ("" = fault in the component)
    std::string kill_reason;    ///< informational (campaign shrinks)

    [[nodiscard]] const driver::TestCase& reproducer() const;
};

/// Write `entry` in the concat-corpus text format.
void save_entry(std::ostream& os, const CorpusEntry& entry);

/// Parse an entry previously written by save_entry.  Throws stc::Error
/// on malformed input (bad magic, unknown verdict, missing suite).
[[nodiscard]] CorpusEntry load_entry(std::istream& is);

[[nodiscard]] CorpusEntry load_entry_file(const std::string& path);
void save_entry_file(const std::string& path, const CorpusEntry& entry);

/// Canonical, deterministic filename for an entry:
/// `<class>-<verdict>-<16-hex content hash>.suite`.  Byte-identical
/// entries map to the same name, so re-running a seeded fuzz campaign
/// rewrites — never duplicates — its reproducers.
[[nodiscard]] std::string entry_filename(const CorpusEntry& entry);

/// Sorted paths of every `*.suite` file in `dir` (empty when the
/// directory does not exist).
[[nodiscard]] std::vector<std::string> list_corpus(const std::string& dir);

}  // namespace stc::fuzz
