// Delta-debugging shrinker for failing transactions.
//
// A fuzz finding is rarely minimal: the mutated transaction that tripped
// an assertion usually carries method calls and argument magnitudes that
// have nothing to do with the fault.  shrink_case reduces a failing test
// case in two phases while preserving the failure (caller-supplied
// predicate):
//
//   1. Sequence minimization — ddmin (Zeller & Hildebrandt) over the
//      *interior* nodes of the transaction path.  Birth and death stay
//      pinned and every candidate must be a structurally valid
//      transaction of the TFM (Graph::is_valid_transaction), so the
//      shrinker only ever proposes call sequences a real client could
//      execute; structurally invalid candidates cost no predicate budget.
//   2. Value minimization — each surviving in-domain argument is pulled
//      toward a canonical small value (zero when the domain admits it,
//      then the domain's boundary values).  Rejection-call arguments are
//      deliberately out of domain and are left untouched.
//
// The predicate abstracts what "still fails" means: verdict equality for
// fuzz findings, oracle-classification equality for campaign kills.
// Shrinking is deterministic — no RNG — so a reproducer shrinks to the
// same bytes on every run.
#pragma once

#include <cstddef>
#include <functional>

#include "stc/driver/test_case.h"
#include "stc/obs/context.h"
#include "stc/tfm/graph.h"
#include "stc/tspec/model.h"

namespace stc::fuzz {

/// Returns true when the candidate still exhibits the target failure.
using Predicate = std::function<bool(const driver::TestCase&)>;

struct ShrinkOptions {
    /// Budget in predicate evaluations (test executions).  Structurally
    /// invalid ddmin candidates are rejected for free.
    std::size_t max_steps = 512;
    /// Observability: one "shrink-case" span, a "shrink-step" span per
    /// predicate evaluation, and step/removal/reduction counters.
    obs::Context obs;
};

struct ShrinkResult {
    driver::TestCase minimized;
    std::size_t steps = 0;               ///< predicate evaluations spent
    std::size_t sequence_removals = 0;   ///< path nodes removed by ddmin
    std::size_t value_reductions = 0;    ///< arguments simplified
    bool budget_exhausted = false;       ///< stopped early on max_steps
};

/// Minimize `failing` under `still_fails`.  The input case must satisfy
/// the predicate (callers check before shrinking); the result always
/// does — when nothing can be removed the input comes back verbatim.
[[nodiscard]] ShrinkResult shrink_case(const tspec::ComponentSpec& spec,
                                       const tfm::Graph& graph,
                                       const driver::TestCase& failing,
                                       const Predicate& still_fails,
                                       const ShrinkOptions& options = {});

}  // namespace stc::fuzz
