#include "stc/fuzz/fuzzer.h"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "path_case.h"
#include "stc/campaign/seed.h"  // header-only mixing (derived RNG streams)
#include "stc/driver/suite_io.h"
#include "stc/support/error.h"

namespace stc::fuzz {

namespace {

using detail::PathCase;
using detail::assemble;
using detail::reslice;

/// "AddHead(321)" -> "AddHead", "!Dec()" -> "Dec" — the stable identity
/// of a failing method for finding deduplication.
std::string normalize_method(const std::string& rendered) {
    std::string out = rendered.substr(0, rendered.find('('));
    if (!out.empty() && out.front() == '!') out.erase(0, 1);
    return out;
}

bool is_failure(driver::Verdict v) noexcept {
    switch (v) {
        case driver::Verdict::AssertionViolation:
        case driver::Verdict::Crash:
        case driver::Verdict::UncaughtException:
        case driver::Verdict::ContractNotEnforced:
        case driver::Verdict::ModelDivergence:
        case driver::Verdict::IllegalQuiescence:
            return true;
        case driver::Verdict::Pass:
        case driver::Verdict::SetupError:  // infrastructure, not the CUT
            return false;
    }
    return false;
}

/// Coverage novelty tracker.  An input is interesting when it reaches a
/// TFM node, link, per-node visit-count bucket (AFL-style, capped at 8),
/// or verdict kind no earlier input reached.
class CoverageMap {
public:
    bool observe(const std::vector<tfm::NodeIndex>& path, driver::Verdict v) {
        bool novel = false;
        std::map<tfm::NodeIndex, std::size_t> visits;
        for (const tfm::NodeIndex n : path) {
            novel |= nodes_.insert(n).second;
            ++visits[n];
        }
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            novel |= edges_.insert({path[i], path[i + 1]}).second;
        }
        for (const auto& [n, count] : visits) {
            novel |= buckets_.insert({n, std::min<std::size_t>(count, 8)}).second;
        }
        novel |= verdicts_.insert(driver::to_string(v)).second;
        return novel;
    }

    [[nodiscard]] std::size_t nodes() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t edges() const noexcept { return edges_.size(); }

private:
    std::set<tfm::NodeIndex> nodes_;
    std::set<std::pair<tfm::NodeIndex, tfm::NodeIndex>> edges_;
    std::set<std::pair<tfm::NodeIndex, std::size_t>> buckets_;
    std::set<std::string> verdicts_;
};

/// Synthesize the call group of one TFM node with freshly drawn values —
/// the value-mutation primitive, sharing the generator's §3.4.1 logic.
std::vector<driver::MethodCall> synth_group(const tspec::ComponentSpec& spec,
                                            const tfm::Graph& graph,
                                            tfm::NodeIndex node,
                                            const driver::CompletionRegistry* completions,
                                            support::Pcg32& rng,
                                            const obs::Context& obs) {
    std::vector<driver::MethodCall> calls;
    for (const std::string& entry : graph.node(node).method_ids) {
        const bool marked_negative = tspec::is_negative_call(entry);
        const std::string mid = tspec::strip_negative_marker(entry);
        const tspec::MethodSpec* method = spec.find_method(mid);
        if (method == nullptr) {
            throw SpecError("TFM node references unknown method id " + mid);
        }
        // Mutated values cycle through a random boundary/invalid ordinal;
        // a quarter of draws use the boundary policy for edge pressure.
        const std::size_t ordinal = rng.index(8);
        const auto policy = rng.chance(0.25) ? driver::ValuePolicy::Boundary
                                             : driver::ValuePolicy::Random;
        const bool negative =
            marked_negative && driver::DriverGenerator::can_reject(*method);
        bool needs_completion = false;
        calls.push_back(driver::synthesize_call(*method, rng, ordinal,
                                                completions, policy,
                                                &needs_completion, negative, obs));
    }
    return calls;
}

/// Follow the shortest-path-to-death chain from `from`, appending nodes
/// and fresh call groups.  Returns false when death is unreachable.
bool steer_to_death(const tspec::ComponentSpec& spec, const tfm::Graph& graph,
                    const std::vector<std::optional<tfm::NodeIndex>>& hops,
                    const driver::CompletionRegistry* completions,
                    support::Pcg32& rng, const obs::Context& obs,
                    std::size_t max_path_length, PathCase* pc) {
    tfm::NodeIndex current = pc->path.back();
    while (!graph.is_death(current)) {
        const auto hop = hops[current];
        if (!hop || pc->path.size() >= max_path_length) return false;
        current = *hop;
        pc->path.push_back(current);
        pc->groups.push_back(
            synth_group(spec, graph, current, completions, rng, obs));
    }
    return true;
}

}  // namespace

std::string Finding::key() const {
    return std::string(driver::to_string(verdict)) + "|" + failed_method;
}

CorpusEntry Finding::to_corpus_entry(const std::string& class_name) const {
    CorpusEntry entry;
    entry.suite.class_name = class_name;
    entry.suite.cases.push_back(reproducer);
    entry.verdict = verdict;
    entry.failed_method = failed_method;
    entry.mutant_id = mutant_id;
    return entry;
}

std::string FuzzStats::render() const {
    std::ostringstream os;
    os << "fuzz iterations " << iterations << "\n"
       << "fuzz executions " << executions << "\n"
       << "fuzz interesting " << interesting << "\n"
       << "fuzz population " << population << "\n"
       << "fuzz nodes-covered " << nodes_covered << "\n"
       << "fuzz edges-covered " << edges_covered << "\n";
    for (const auto& [name, count] : verdict_counts) {
        os << "fuzz verdict " << name << " " << count << "\n";
    }
    return os.str();
}

Fuzzer::Fuzzer(tspec::ComponentSpec spec, FuzzOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

Fuzzer& Fuzzer::completions(const driver::CompletionRegistry* registry) {
    completions_ = registry;
    return *this;
}

Fuzzer& Fuzzer::case_runner(CaseRunner runner) {
    runner_ = std::move(runner);
    return *this;
}

FuzzResult Fuzzer::run() {
    if (!runner_) throw Error("Fuzzer: case_runner is required before run()");
    spec_.ensure_valid();
    const obs::SpanScope run_span(options_.obs.tracer, "phase", "fuzz-run");

    const tfm::Graph graph = spec_.build_tfm();
    const auto hops = graph.next_hop_to_death();
    const std::size_t max_len = options_.generator.enumeration.max_path_length;

    // The exploration stream is decorrelated from the generator's seed so
    // mutated draws never replay the seed suite's value sequence.
    support::Pcg32 rng(campaign::splitmix64(options_.seed),
                       campaign::fnv1a64("stc.fuzz.explore"));

    driver::DriverGenerator generator(spec_, options_.generator);
    generator.completions(completions_);
    const driver::TestSuite seed_suite = generator.generate();

    FuzzResult out;
    CoverageMap coverage;
    std::vector<driver::TestCase> population;
    std::set<std::string> finding_keys;
    std::size_t synthetic_id = 0;

    auto execute = [&](const driver::TestCase& tc) -> driver::TestResult {
        ++out.stats.executions;
        options_.obs.metrics.add("fuzz.executions");
        return runner_(tc);
    };

    // One mutation attempt; nullopt when the chosen operator cannot apply
    // (no common splice node, death unreachable, length cap, ...).
    auto mutate_once = [&]() -> std::optional<driver::TestCase> {
        if (population.empty()) return std::nullopt;
        const driver::TestCase& base = population[rng.index(population.size())];
        PathCase pc;
        if (!reslice(graph, base, &pc)) return std::nullopt;

        const std::size_t op = rng.index(4);
        if (op == 0) {
            // Re-draw the argument values of one call group.
            const std::size_t g = rng.index(pc.path.size());
            pc.groups[g] = synth_group(spec_, graph, pc.path[g], completions_,
                                       rng, options_.obs);
        } else if (op == 1) {
            // Extend: keep a prefix, random-walk a few nodes, steer home.
            // A single-node transaction (birth node that is also a death
            // node) has no proper prefix to cut at.
            if (pc.path.size() < 2) return std::nullopt;
            const std::size_t cut = rng.index(pc.path.size() - 1);
            pc.path.resize(cut + 1);
            pc.groups.resize(cut + 1);
            const std::size_t extra = 1 + rng.index(3);
            for (std::size_t step = 0; step < extra; ++step) {
                const auto& next = graph.successors(pc.path.back());
                if (next.empty() || pc.path.size() >= max_len) break;
                const tfm::NodeIndex chosen = next[rng.index(next.size())];
                pc.path.push_back(chosen);
                pc.groups.push_back(synth_group(spec_, graph, chosen,
                                                completions_, rng, options_.obs));
            }
            if (!steer_to_death(spec_, graph, hops, completions_, rng,
                                options_.obs, max_len, &pc)) {
                return std::nullopt;
            }
        } else if (op == 2) {
            // Truncate: keep a prefix, then the shortest way to death.
            if (pc.path.size() < 2) return std::nullopt;
            const std::size_t cut = rng.index(pc.path.size() - 1);
            pc.path.resize(cut + 1);
            pc.groups.resize(cut + 1);
            if (!steer_to_death(spec_, graph, hops, completions_, rng,
                                options_.obs, max_len, &pc)) {
                return std::nullopt;
            }
        } else {
            // Splice: prefix of this member + suffix of another, joined at
            // a node both paths visit.
            const driver::TestCase& other =
                population[rng.index(population.size())];
            PathCase oc;
            if (!reslice(graph, other, &oc)) return std::nullopt;
            std::vector<std::pair<std::size_t, std::size_t>> joints;
            for (std::size_t i = 0; i < pc.path.size(); ++i) {
                for (std::size_t j = 0; j < oc.path.size(); ++j) {
                    if (pc.path[i] == oc.path[j]) joints.push_back({i, j});
                }
            }
            if (joints.empty()) return std::nullopt;
            const auto [i, j] = joints[rng.index(joints.size())];
            pc.path.resize(i + 1);
            pc.groups.resize(i + 1);
            pc.path.insert(pc.path.end(), oc.path.begin() + j + 1, oc.path.end());
            pc.groups.insert(pc.groups.end(), oc.groups.begin() + j + 1,
                             oc.groups.end());
            if (pc.path.size() > max_len) return std::nullopt;
        }

        if (!graph.is_valid_transaction(pc.path)) return std::nullopt;
        driver::TestCase mutated = assemble(graph, base, pc);
        mutated.id = "FZ" + std::to_string(synthetic_id++);
        return mutated;
    };

    std::size_t seed_cursor = 0;
    while (out.stats.iterations < options_.iterations) {
        if (options_.max_findings != 0 &&
            out.findings.size() >= options_.max_findings) {
            break;
        }
        const std::size_t iteration = out.stats.iterations;
        const obs::SpanScope iter_span(options_.obs.tracer, "fuzz-iteration",
                                       "it" + std::to_string(iteration));

        driver::TestCase input;
        if (seed_cursor < seed_suite.cases.size()) {
            input = seed_suite.cases[seed_cursor++];
        } else {
            std::optional<driver::TestCase> mutated;
            for (int attempt = 0; attempt < 4 && !mutated; ++attempt) {
                mutated = mutate_once();
            }
            if (!mutated) {
                // Degenerate population (e.g. nothing reslices): recycle
                // the seed suite so the budget still exercises the CUT.
                input = seed_suite.cases.empty()
                            ? driver::TestCase{}
                            : seed_suite.cases[iteration %
                                               seed_suite.cases.size()];
            } else {
                input = std::move(*mutated);
            }
        }
        if (input.calls.empty()) break;  // nothing runnable at all

        const driver::TestResult result = execute(input);
        ++out.stats.iterations;
        options_.obs.metrics.add("fuzz.iterations");
        ++out.stats.verdict_counts[driver::to_string(result.verdict)];

        if (coverage.observe(input.transaction.path, result.verdict)) {
            ++out.stats.interesting;
            options_.obs.metrics.add("fuzz.interesting");
            population.push_back(input);
        }

        if (!is_failure(result.verdict)) continue;
        Finding finding;
        finding.verdict = result.verdict;
        finding.failed_method = normalize_method(result.failed_method);
        finding.message = result.message;
        finding.iteration = iteration;
        finding.mutant_id = options_.mutant_id;
        if (!finding_keys.insert(finding.key()).second) continue;

        finding.original = input;
        const auto still_fails = [&](const driver::TestCase& candidate) {
            return execute(candidate).verdict == finding.verdict;
        };
        ShrinkOptions shrink_options;
        shrink_options.max_steps = options_.max_shrink_steps;
        shrink_options.obs = options_.obs;
        finding.shrink =
            shrink_case(spec_, graph, input, still_fails, shrink_options);
        finding.reproducer = finding.shrink.minimized;
        options_.obs.metrics.add("fuzz.findings");
        out.findings.push_back(std::move(finding));
    }

    out.stats.population = population.size();
    out.stats.nodes_covered = coverage.nodes();
    out.stats.edges_covered = coverage.edges();
    return out;
}

PersistOutcome persist_entry(const std::string& dir, CorpusEntry entry,
                             const driver::CompletionRegistry* completions,
                             const CaseRunner& runner,
                             std::uint64_t entry_seed) {
    entry.suite.seed = entry_seed;
    if (entry.suite.cases.size() != 1) {
        throw Error("persist_entry: corpus entry must hold exactly one case");
    }

    // Prove the persisted bytes replay: pointer arguments survive only as
    // placeholders, so the file is trusted only if reload + recompletion
    // (from the recorded seed) reproduces the recorded verdict.
    std::ostringstream text;
    save_entry(text, entry);
    std::istringstream in(text.str());
    CorpusEntry reloaded = load_entry(in);
    if (completions != nullptr) {
        (void)driver::recomplete_suite(reloaded.suite, *completions, entry_seed);
    }
    const driver::TestResult replay = runner(reloaded.suite.cases.front());
    if (replay.verdict != entry.verdict) return {};

    PersistOutcome out;
    out.reproducible = true;
    out.path = (dir.empty() ? std::string(".") : dir) + "/" + entry_filename(entry);
    save_entry_file(out.path, entry);
    return out;
}

}  // namespace stc::fuzz
