#include "path_case.h"

namespace stc::fuzz::detail {

bool reslice(const tfm::Graph& graph, const driver::TestCase& tc, PathCase* out) {
    out->path = tc.transaction.path;
    out->groups.clear();
    if (out->path.empty() || !graph.is_valid_transaction(out->path)) return false;
    std::size_t cursor = 0;
    for (const tfm::NodeIndex n : out->path) {
        const std::size_t width = graph.node(n).method_ids.size();
        if (cursor + width > tc.calls.size()) return false;
        out->groups.emplace_back(tc.calls.begin() + cursor,
                                 tc.calls.begin() + cursor + width);
        cursor += width;
    }
    return cursor == tc.calls.size();
}

driver::TestCase assemble(const tfm::Graph& graph, const driver::TestCase& base,
                          const PathCase& pc) {
    driver::TestCase tc = base;
    tc.transaction.path = pc.path;
    tc.transaction_text = graph.describe(tc.transaction);
    tc.calls.clear();
    for (const auto& group : pc.groups) {
        tc.calls.insert(tc.calls.end(), group.begin(), group.end());
    }
    return tc;
}

}  // namespace stc::fuzz::detail
