#include "stc/fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "stc/campaign/seed.h"  // header-only fnv1a64 (content hashing)
#include "stc/driver/wire_format.h"
#include "stc/support/error.h"
#include "stc/support/strings.h"

namespace stc::fuzz {

namespace {

constexpr const char* kMagic = "concat-corpus 1";
constexpr const char* kSuiteMagic = "concat-suite 1";

std::string hex16(std::uint64_t value) {
    static constexpr char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

/// Filenames must survive any filesystem: keep [A-Za-z0-9._-], map the
/// rest (e.g. "::" in qualified class names) to '_'.
std::string sanitize(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                        c == '_';
        out += ok ? c : '_';
    }
    return out.empty() ? std::string("entry") : out;
}

}  // namespace

const driver::TestCase& CorpusEntry::reproducer() const {
    if (suite.cases.size() != 1) {
        throw Error("corpus entry must hold exactly one test case, has " +
                    std::to_string(suite.cases.size()));
    }
    return suite.cases.front();
}

void save_entry(std::ostream& os, const CorpusEntry& entry) {
    os << kMagic << "\n";
    os << "verdict " << driver::to_string(entry.verdict) << "\n";
    if (!entry.failed_method.empty()) {
        os << "method " << driver::wire::encode(entry.failed_method) << "\n";
    }
    if (!entry.mutant_id.empty()) {
        os << "mutant " << driver::wire::encode(entry.mutant_id) << "\n";
    }
    if (!entry.kill_reason.empty()) {
        os << "reason " << driver::wire::encode(entry.kill_reason) << "\n";
    }
    save_suite(os, entry.suite);
}

CorpusEntry load_entry(std::istream& is) {
    CorpusEntry entry;
    std::string line;
    int lineno = 0;

    auto fail = [&](const std::string& message) -> void {
        throw Error("corpus line " + std::to_string(lineno) + ": " + message);
    };

    bool saw_magic = false;
    bool saw_verdict = false;
    while (std::getline(is, line)) {
        ++lineno;
        if (support::trim(line).empty()) continue;
        if (!saw_magic) {
            if (line != kMagic) throw Error("not a concat-corpus file (bad magic)");
            saw_magic = true;
            continue;
        }
        if (line == kSuiteMagic) {
            // The remainder of the stream is a standard suite block; hand
            // it to the suite loader verbatim (magic line re-attached).
            std::ostringstream rest;
            rest << line << "\n" << is.rdbuf();
            std::istringstream suite_in(rest.str());
            entry.suite = driver::load_suite(suite_in);
            if (!saw_verdict) fail("missing verdict header");
            if (entry.suite.cases.size() != 1) {
                fail("embedded suite must hold exactly one test case");
            }
            return entry;
        }
        if (support::starts_with(line, "verdict ")) {
            const auto v = driver::verdict_from_string(line.substr(8));
            if (!v) fail("unknown verdict '" + line.substr(8) + "'");
            entry.verdict = *v;
            saw_verdict = true;
        } else if (support::starts_with(line, "method ")) {
            entry.failed_method = driver::wire::decode(line.substr(7));
        } else if (support::starts_with(line, "mutant ")) {
            entry.mutant_id = driver::wire::decode(line.substr(7));
        } else if (support::starts_with(line, "reason ")) {
            entry.kill_reason = driver::wire::decode(line.substr(7));
        } else {
            fail("unrecognized header '" + line + "'");
        }
    }
    throw Error(saw_magic ? "corpus entry has no embedded suite"
                          : "not a concat-corpus file (empty)");
}

CorpusEntry load_entry_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot open corpus entry: " + path);
    try {
        return load_entry(in);
    } catch (const Error& e) {
        throw Error(path + ": " + e.what());
    }
}

void save_entry_file(const std::string& path, const CorpusEntry& entry) {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::filesystem::create_directories(p.parent_path());
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw Error("cannot write corpus entry: " + path);
    save_entry(out, entry);
    if (!out) throw Error("write failed for corpus entry: " + path);
}

std::string entry_filename(const CorpusEntry& entry) {
    std::ostringstream text;
    save_entry(text, entry);
    return sanitize(entry.suite.class_name) + "-" +
           driver::to_string(entry.verdict) + "-" +
           hex16(campaign::fnv1a64(text.str())) + ".suite";
}

std::vector<std::string> list_corpus(const std::string& dir) {
    std::vector<std::string> out;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) return out;
    for (const auto& e : it) {
        if (e.is_regular_file() && e.path().extension() == ".suite") {
            out.push_back(e.path().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace stc::fuzz
