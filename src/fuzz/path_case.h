// Internal: a test case resliced as one call group per transaction-path
// node — the shared granularity of the fuzz mutators and the ddmin
// shrinker.  Not installed; include via "path_case.h" within src/fuzz.
#pragma once

#include <vector>

#include "stc/driver/test_case.h"
#include "stc/tfm/graph.h"

namespace stc::fuzz::detail {

struct PathCase {
    std::vector<tfm::NodeIndex> path;
    std::vector<std::vector<driver::MethodCall>> groups;  // parallel to path
};

/// Reslice `tc` against the graph's per-node method layout.  Fails (and
/// leaves *out partially filled) when the path is not a valid
/// transaction or the call count does not line up — such cases are
/// executed but never mutated or sequence-shrunk.
[[nodiscard]] bool reslice(const tfm::Graph& graph, const driver::TestCase& tc,
                           PathCase* out);

/// Rebuild an executable case from a (possibly edited) PathCase, keeping
/// `base`'s identity fields (id, entry_state).
[[nodiscard]] driver::TestCase assemble(const tfm::Graph& graph,
                                        const driver::TestCase& base,
                                        const PathCase& pc);

}  // namespace stc::fuzz::detail
