// Dynamic value type flowing between the Driver Generator and the
// reflection layer.
//
// The paper's t-spec (Fig. 3) types parameters and attributes as one of
// {range, set, string, object, pointer}; generated test cases carry
// concrete values for the numeric and string kinds, while structured
// kinds (object/pointer) "must be completed manually by the tester"
// (§3.4.1).  Value models all five: numeric/string values directly,
// pointer/object values as opaque handles supplied by a completion hook.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace stc::domain {

/// Discriminator for Value. Mirrors the t-spec type system.
enum class ValueKind { Empty, Int, Real, String, Pointer, Object };

[[nodiscard]] const char* to_string(ValueKind kind) noexcept;

/// Opaque reference to a live object (used for object/pointer parameters
/// that the tester or a completion hook supplied).
struct ObjectRef {
    void* ptr = nullptr;
    std::string type_name;

    friend bool operator==(const ObjectRef&, const ObjectRef&) = default;
};

/// A dynamically typed value: the unit of data exchanged between the
/// driver, the reflection invokers, and the oracles.
class Value {
public:
    Value() = default;

    static Value make_int(std::int64_t v) { return Value(v); }
    static Value make_real(double v) { return Value(v); }
    static Value make_string(std::string v) { return Value(std::move(v)); }
    static Value make_pointer(void* p, std::string type_name = {});
    static Value make_object(void* p, std::string type_name = {});

    [[nodiscard]] ValueKind kind() const noexcept;
    [[nodiscard]] bool is_empty() const noexcept { return kind() == ValueKind::Empty; }

    /// Accessors throw stc::Error on kind mismatch.
    [[nodiscard]] std::int64_t as_int() const;
    [[nodiscard]] double as_real() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] void* as_pointer() const;
    [[nodiscard]] const ObjectRef& as_object() const;

    /// Numeric coercion: Int or Real -> double.
    [[nodiscard]] double as_number() const;

    /// Rendering for logs and generated source. Strings are quoted and
    /// escaped so the output can be pasted into C++ code (Fig. 6 shows
    /// the generated calls with literal arguments).
    [[nodiscard]] std::string to_source() const;

    /// Rendering for human-readable logs (strings unquoted).
    [[nodiscard]] std::string to_display() const;

    friend bool operator==(const Value&, const Value&) = default;

private:
    struct PointerTag {
        ObjectRef ref;
        friend bool operator==(const PointerTag&, const PointerTag&) = default;
    };

    explicit Value(std::int64_t v) : data_(v) {}
    explicit Value(double v) : data_(v) {}
    explicit Value(std::string v) : data_(std::move(v)) {}
    Value(PointerTag tag) : data_(std::move(tag)) {}
    Value(ObjectRef ref) : data_(std::move(ref)) {}

    std::variant<std::monostate, std::int64_t, double, std::string, PointerTag,
                 ObjectRef>
        data_;
};

}  // namespace stc::domain
