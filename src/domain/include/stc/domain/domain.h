// Value domains — the "valid subdomain" of each attribute/parameter in a
// t-spec (Fig. 3: allowable types are range, set, string, object,
// pointer).  The Driver Generator samples test inputs by "randomly
// selecting a value from the valid subdomain" (§3.4.1); object and
// pointer kinds are structured types that the tester completes manually
// (here: via a completion hook).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stc/domain/value.h"
#include "stc/support/rng.h"

namespace stc::domain {

/// Abstract value domain: a sampleable, checkable set of Values.
class Domain {
public:
    virtual ~Domain() = default;

    /// Uniformly sample one value from the domain.
    [[nodiscard]] virtual Value sample(support::Pcg32& rng) const = 0;

    /// Membership test (used by property tests and by oracle-side
    /// validation of recorded test cases).
    [[nodiscard]] virtual bool contains(const Value& v) const = 0;

    /// Kind of values this domain produces.
    [[nodiscard]] virtual ValueKind kind() const noexcept = 0;

    /// Human/spec readable description (also used when re-emitting a
    /// t-spec).
    [[nodiscard]] virtual std::string describe() const = 0;

    /// Boundary values of the domain (empty if not meaningful).  An
    /// extension over the paper's uniform sampling, used by the
    /// boundary-coverage generation policy.
    [[nodiscard]] virtual std::vector<Value> boundary_values() const { return {}; }

    /// Values just *outside* the domain (empty when none can be named,
    /// e.g. an unconstrained set).  Used to drive error-recovery
    /// transactions: a rejected call receives one of these.
    [[nodiscard]] virtual std::vector<Value> invalid_values() const { return {}; }
};

using DomainPtr = std::shared_ptr<const Domain>;

/// Closed integer interval [lo, hi] — the t-spec `range` type with
/// integral bounds ("for range types, indicates the lower/upper limit").
class IntRangeDomain final : public Domain {
public:
    IntRangeDomain(std::int64_t lo, std::int64_t hi);

    [[nodiscard]] Value sample(support::Pcg32& rng) const override;
    [[nodiscard]] bool contains(const Value& v) const override;
    [[nodiscard]] ValueKind kind() const noexcept override { return ValueKind::Int; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::vector<Value> boundary_values() const override;
    [[nodiscard]] std::vector<Value> invalid_values() const override;

    [[nodiscard]] std::int64_t lo() const noexcept { return lo_; }
    [[nodiscard]] std::int64_t hi() const noexcept { return hi_; }

private:
    std::int64_t lo_;
    std::int64_t hi_;
};

/// Closed real interval [lo, hi] — the t-spec `range` type with real
/// bounds (e.g. a price).
class RealRangeDomain final : public Domain {
public:
    RealRangeDomain(double lo, double hi);

    [[nodiscard]] Value sample(support::Pcg32& rng) const override;
    [[nodiscard]] bool contains(const Value& v) const override;
    [[nodiscard]] ValueKind kind() const noexcept override { return ValueKind::Real; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::vector<Value> boundary_values() const override;
    [[nodiscard]] std::vector<Value> invalid_values() const override;

    [[nodiscard]] double lo() const noexcept { return lo_; }
    [[nodiscard]] double hi() const noexcept { return hi_; }

private:
    double lo_;
    double hi_;
};

/// Explicit finite set of values — the t-spec `set` type.
class SetDomain final : public Domain {
public:
    explicit SetDomain(std::vector<Value> values);

    [[nodiscard]] Value sample(support::Pcg32& rng) const override;
    [[nodiscard]] bool contains(const Value& v) const override;
    [[nodiscard]] ValueKind kind() const noexcept override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::vector<Value> boundary_values() const override;

    [[nodiscard]] const std::vector<Value>& values() const noexcept { return values_; }

private:
    std::vector<Value> values_;
};

/// Random strings over an alphabet with a length interval — the t-spec
/// `string` type.
class StringDomain final : public Domain {
public:
    StringDomain(std::size_t min_len, std::size_t max_len,
                 std::string alphabet = default_alphabet());

    [[nodiscard]] static std::string default_alphabet();

    [[nodiscard]] Value sample(support::Pcg32& rng) const override;
    [[nodiscard]] bool contains(const Value& v) const override;
    [[nodiscard]] ValueKind kind() const noexcept override { return ValueKind::String; }
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::vector<Value> boundary_values() const override;
    [[nodiscard]] std::vector<Value> invalid_values() const override;

    [[nodiscard]] std::size_t min_len() const noexcept { return min_len_; }
    [[nodiscard]] std::size_t max_len() const noexcept { return max_len_; }

private:
    std::size_t min_len_;
    std::size_t max_len_;
    std::string alphabet_;
};

/// Structured type domain (t-spec `pointer` / `object`).  The paper
/// requires the tester to complete such parameters manually; a
/// completion hook plays the tester's role so suites remain executable.
/// Without a hook, sampling yields a null pointer placeholder.
class PointerDomain final : public Domain {
public:
    using Completion = std::function<Value(support::Pcg32&)>;

    explicit PointerDomain(std::string type_name, Completion completion = {});

    [[nodiscard]] Value sample(support::Pcg32& rng) const override;
    [[nodiscard]] bool contains(const Value& v) const override;
    [[nodiscard]] ValueKind kind() const noexcept override { return ValueKind::Pointer; }
    [[nodiscard]] std::string describe() const override;

    [[nodiscard]] const std::string& type_name() const noexcept { return type_name_; }
    [[nodiscard]] bool has_completion() const noexcept { return static_cast<bool>(completion_); }

private:
    std::string type_name_;
    Completion completion_;
};

/// Factory helpers.
[[nodiscard]] DomainPtr int_range(std::int64_t lo, std::int64_t hi);
[[nodiscard]] DomainPtr real_range(double lo, double hi);
[[nodiscard]] DomainPtr value_set(std::vector<Value> values);
[[nodiscard]] DomainPtr string_domain(std::size_t min_len, std::size_t max_len);
[[nodiscard]] DomainPtr pointer_domain(std::string type_name,
                                       PointerDomain::Completion completion = {});

}  // namespace stc::domain
