#include "stc/domain/domain.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "stc/support/contracts.h"
#include "stc/support/error.h"

namespace stc::domain {

// ---------------------------------------------------------------- IntRange

IntRangeDomain::IntRangeDomain(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi) {
    if (lo > hi) throw SpecError("int range with lo > hi");
}

Value IntRangeDomain::sample(support::Pcg32& rng) const {
    return Value::make_int(rng.uniform(lo_, hi_));
}

bool IntRangeDomain::contains(const Value& v) const {
    return v.kind() == ValueKind::Int && v.as_int() >= lo_ && v.as_int() <= hi_;
}

std::string IntRangeDomain::describe() const {
    return "range " + std::to_string(lo_) + ".." + std::to_string(hi_);
}

std::vector<Value> IntRangeDomain::boundary_values() const {
    std::vector<Value> out{Value::make_int(lo_), Value::make_int(hi_)};
    if (lo_ < 0 && hi_ > 0) out.push_back(Value::make_int(0));
    if (hi_ > lo_) {
        out.push_back(Value::make_int(lo_ + 1));
        out.push_back(Value::make_int(hi_ - 1));
    }
    return out;
}

std::vector<Value> IntRangeDomain::invalid_values() const {
    std::vector<Value> out;
    if (lo_ > std::numeric_limits<std::int64_t>::min()) {
        out.push_back(Value::make_int(lo_ - 1));
    }
    if (hi_ < std::numeric_limits<std::int64_t>::max()) {
        out.push_back(Value::make_int(hi_ + 1));
    }
    return out;
}

// --------------------------------------------------------------- RealRange

RealRangeDomain::RealRangeDomain(double lo, double hi) : lo_(lo), hi_(hi) {
    if (lo > hi) throw SpecError("real range with lo > hi");
}

Value RealRangeDomain::sample(support::Pcg32& rng) const {
    return Value::make_real(rng.uniform_real(lo_, hi_));
}

bool RealRangeDomain::contains(const Value& v) const {
    if (v.kind() != ValueKind::Real && v.kind() != ValueKind::Int) return false;
    const double x = v.as_number();
    return x >= lo_ && x <= hi_;
}

std::string RealRangeDomain::describe() const {
    char buf[96];
    std::snprintf(buf, sizeof buf, "range %g..%g", lo_, hi_);
    return buf;
}

std::vector<Value> RealRangeDomain::boundary_values() const {
    std::vector<Value> out{Value::make_real(lo_), Value::make_real(hi_)};
    if (lo_ < 0.0 && hi_ > 0.0) out.push_back(Value::make_real(0.0));
    return out;
}

std::vector<Value> RealRangeDomain::invalid_values() const {
    // Step a whole span outside so floating rounding cannot creep back in.
    const double span = hi_ - lo_ + 1.0;
    return {Value::make_real(lo_ - span), Value::make_real(hi_ + span)};
}

// --------------------------------------------------------------------- Set

SetDomain::SetDomain(std::vector<Value> values) : values_(std::move(values)) {
    if (values_.empty()) throw SpecError("set domain with no values");
    const ValueKind k = values_.front().kind();
    const bool uniform = std::all_of(values_.begin(), values_.end(),
                                     [k](const Value& v) { return v.kind() == k; });
    if (!uniform) throw SpecError("set domain mixes value kinds");
}

Value SetDomain::sample(support::Pcg32& rng) const {
    return values_[rng.index(values_.size())];
}

bool SetDomain::contains(const Value& v) const {
    return std::find(values_.begin(), values_.end(), v) != values_.end();
}

ValueKind SetDomain::kind() const noexcept { return values_.front().kind(); }

std::string SetDomain::describe() const {
    std::string out = "set {";
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (i != 0) out += ", ";
        out += values_[i].to_source();
    }
    out += "}";
    return out;
}

std::vector<Value> SetDomain::boundary_values() const { return values_; }

// ------------------------------------------------------------------ String

StringDomain::StringDomain(std::size_t min_len, std::size_t max_len,
                           std::string alphabet)
    : min_len_(min_len), max_len_(max_len), alphabet_(std::move(alphabet)) {
    if (min_len > max_len) throw SpecError("string domain with min_len > max_len");
    if (alphabet_.empty()) throw SpecError("string domain with empty alphabet");
}

std::string StringDomain::default_alphabet() {
    return "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
}

Value StringDomain::sample(support::Pcg32& rng) const {
    const auto len = static_cast<std::size_t>(
        rng.uniform(static_cast<std::int64_t>(min_len_),
                    static_cast<std::int64_t>(max_len_)));
    std::string s;
    s.reserve(len);
    for (std::size_t i = 0; i < len; ++i) s += alphabet_[rng.index(alphabet_.size())];
    return Value::make_string(std::move(s));
}

bool StringDomain::contains(const Value& v) const {
    if (v.kind() != ValueKind::String) return false;
    const std::string& s = v.as_string();
    if (s.size() < min_len_ || s.size() > max_len_) return false;
    return std::all_of(s.begin(), s.end(), [this](char c) {
        return alphabet_.find(c) != std::string::npos;
    });
}

std::string StringDomain::describe() const {
    return "string len " + std::to_string(min_len_) + ".." + std::to_string(max_len_);
}

std::vector<Value> StringDomain::boundary_values() const {
    std::vector<Value> out;
    out.push_back(Value::make_string(std::string(min_len_, alphabet_.front())));
    if (max_len_ != min_len_) {
        out.push_back(Value::make_string(std::string(max_len_, alphabet_.back())));
    }
    return out;
}

std::vector<Value> StringDomain::invalid_values() const {
    // One character too long (always invalid); too short only when a
    // minimum exists.
    std::vector<Value> out{
        Value::make_string(std::string(max_len_ + 1, alphabet_.front()))};
    if (min_len_ > 0) {
        out.push_back(Value::make_string(std::string(min_len_ - 1, alphabet_.front())));
    }
    return out;
}

// ----------------------------------------------------------------- Pointer

PointerDomain::PointerDomain(std::string type_name, Completion completion)
    : type_name_(std::move(type_name)), completion_(std::move(completion)) {}

Value PointerDomain::sample(support::Pcg32& rng) const {
    if (completion_) return completion_(rng);
    return Value::make_pointer(nullptr, type_name_);
}

bool PointerDomain::contains(const Value& v) const {
    return v.kind() == ValueKind::Pointer || v.kind() == ValueKind::Object;
}

std::string PointerDomain::describe() const {
    return "pointer to " + type_name_ + (completion_ ? " (completed)" : " (manual)");
}

// ----------------------------------------------------------------- Helpers

DomainPtr int_range(std::int64_t lo, std::int64_t hi) {
    return std::make_shared<IntRangeDomain>(lo, hi);
}

DomainPtr real_range(double lo, double hi) {
    return std::make_shared<RealRangeDomain>(lo, hi);
}

DomainPtr value_set(std::vector<Value> values) {
    return std::make_shared<SetDomain>(std::move(values));
}

DomainPtr string_domain(std::size_t min_len, std::size_t max_len) {
    return std::make_shared<StringDomain>(min_len, max_len);
}

DomainPtr pointer_domain(std::string type_name, PointerDomain::Completion completion) {
    return std::make_shared<PointerDomain>(std::move(type_name), std::move(completion));
}

}  // namespace stc::domain
