#include "stc/domain/value.h"

#include <cstdio>

#include "stc/support/error.h"
#include "stc/support/strings.h"

namespace stc::domain {

const char* to_string(ValueKind kind) noexcept {
    switch (kind) {
        case ValueKind::Empty: return "empty";
        case ValueKind::Int: return "int";
        case ValueKind::Real: return "real";
        case ValueKind::String: return "string";
        case ValueKind::Pointer: return "pointer";
        case ValueKind::Object: return "object";
    }
    return "?";
}

Value Value::make_pointer(void* p, std::string type_name) {
    return Value(PointerTag{ObjectRef{p, std::move(type_name)}});
}

Value Value::make_object(void* p, std::string type_name) {
    return Value(ObjectRef{p, std::move(type_name)});
}

ValueKind Value::kind() const noexcept {
    switch (data_.index()) {
        case 0: return ValueKind::Empty;
        case 1: return ValueKind::Int;
        case 2: return ValueKind::Real;
        case 3: return ValueKind::String;
        case 4: return ValueKind::Pointer;
        case 5: return ValueKind::Object;
        default: return ValueKind::Empty;
    }
}

namespace {
[[noreturn]] void kind_error(ValueKind want, ValueKind got) {
    throw Error(std::string("value kind mismatch: wanted ") + to_string(want) +
                ", got " + to_string(got));
}
}  // namespace

std::int64_t Value::as_int() const {
    if (const auto* p = std::get_if<std::int64_t>(&data_)) return *p;
    kind_error(ValueKind::Int, kind());
}

double Value::as_real() const {
    if (const auto* p = std::get_if<double>(&data_)) return *p;
    kind_error(ValueKind::Real, kind());
}

const std::string& Value::as_string() const {
    if (const auto* p = std::get_if<std::string>(&data_)) return *p;
    kind_error(ValueKind::String, kind());
}

void* Value::as_pointer() const {
    if (const auto* p = std::get_if<PointerTag>(&data_)) return p->ref.ptr;
    kind_error(ValueKind::Pointer, kind());
}

const ObjectRef& Value::as_object() const {
    if (const auto* p = std::get_if<ObjectRef>(&data_)) return *p;
    if (const auto* p = std::get_if<PointerTag>(&data_)) return p->ref;
    kind_error(ValueKind::Object, kind());
}

double Value::as_number() const {
    if (const auto* p = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*p);
    if (const auto* p = std::get_if<double>(&data_)) return *p;
    kind_error(ValueKind::Real, kind());
}

std::string Value::to_source() const {
    switch (kind()) {
        case ValueKind::Empty: return "/*empty*/";
        case ValueKind::Int: return std::to_string(std::get<std::int64_t>(data_));
        case ValueKind::Real: {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%g", std::get<double>(data_));
            std::string s = buf;
            // Keep it a double literal in generated source.
            if (s.find_first_of(".eE") == std::string::npos) s += ".0";
            return s;
        }
        case ValueKind::String:
            return support::cpp_string_literal(std::get<std::string>(data_));
        case ValueKind::Pointer: {
            const auto& ref = std::get<PointerTag>(data_).ref;
            if (ref.ptr == nullptr) return "nullptr";
            return "/* completed by tester: " + ref.type_name + "* */";
        }
        case ValueKind::Object:
            return "/* completed by tester: " + std::get<ObjectRef>(data_).type_name +
                   " */";
    }
    return "?";
}

std::string Value::to_display() const {
    switch (kind()) {
        case ValueKind::String: return std::get<std::string>(data_);
        case ValueKind::Pointer: {
            const auto& ref = std::get<PointerTag>(data_).ref;
            if (ref.ptr == nullptr) return "<null " + ref.type_name + "*>";
            char buf[32];
            std::snprintf(buf, sizeof buf, "%p", ref.ptr);
            return "<" + ref.type_name + "* " + buf + ">";
        }
        case ValueKind::Object: return "<object " + std::get<ObjectRef>(data_).type_name + ">";
        default: return to_source();
    }
}

}  // namespace stc::domain
