// Test-suite persistence.
//
// The paper's motivation for built-in tests is that a component "should
// be tested many times: by their producers, during development or
// maintenance, and by their consumers, every time they are reused".
// Saving the generated suite lets a consumer rerun the *identical* test
// cases against a new release (the regression scenario Table 3 warns
// about: "a new release of the library substitutes the old one").
//
// Structured (pointer/object) argument values are live pointers and do
// not persist; they are saved as typed placeholders and must be
// re-completed after loading (recomplete_suite), exactly like a freshly
// generated suite whose tester completions are pending.
#pragma once

#include <iosfwd>

#include "stc/driver/generator.h"

namespace stc::driver {

/// Write `suite` in the line-oriented concat-suite text format.
void save_suite(std::ostream& os, const TestSuite& suite);

/// Parse a suite previously written by save_suite.  Throws stc::Error on
/// malformed input.
[[nodiscard]] TestSuite load_suite(std::istream& is);

/// Re-complete the structured placeholders of a loaded suite with the
/// tester's completions (deterministic per seed).  Returns the number of
/// arguments completed; cases with no remaining placeholders have their
/// needs_completion flag cleared.
std::size_t recomplete_suite(TestSuite& suite, const CompletionRegistry& completions,
                             std::uint64_t seed);

}  // namespace stc::driver
