// Template (generic) class support — §3.4.1: "For template classes, it
// is necessary that the tester indicate a set of possible types that
// he/she wants to use to create an instance of that class."
//
// The t-spec carries those types in TemplateParam records; this module
// expands them into one concrete suite per instantiation.  The suite's
// class name is the instantiated name (e.g. "CStack<int>"), which is
// also the name under which the consumer registers the instantiation's
// reflection binding.
#pragma once

#include <string>
#include <vector>

#include "stc/driver/generator.h"

namespace stc::driver {

/// One concrete instantiation of a generic component.
struct TemplateInstantiation {
    /// Type names substituted per template parameter, in declaration
    /// order of the t-spec's TemplateParam records.
    std::vector<std::string> type_arguments;
    /// Instantiated class name, e.g. "CStack<int>".
    std::string instantiated_class;
    TestSuite suite;
};

/// Instantiated name for a set of type arguments: "Base<T1, T2>".
[[nodiscard]] std::string instantiated_name(
    const std::string& class_name, const std::vector<std::string>& type_arguments);

/// Expand a generic component's t-spec into per-instantiation suites:
/// the cartesian product of all TemplateParam type lists.  A spec with
/// no TemplateParam records yields exactly one instantiation with the
/// plain class name.  Each instantiation is generated with the same
/// options (same seed: suites are comparable across types).
[[nodiscard]] std::vector<TemplateInstantiation> generate_template_suites(
    const tspec::ComponentSpec& spec, GeneratorOptions options = {},
    const CompletionRegistry* completions = nullptr);

}  // namespace stc::driver
