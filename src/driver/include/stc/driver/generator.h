// The Driver Generator (§3.4.1) — the heart of the consumer-side
// methodology.
//
// "The Driver Generator creates test cases according to the transaction
// coverage criterion that requires exercising each individual transaction
// at least once. ... Values of input parameters for each method are also
// generated, by randomly selecting a value from the valid subdomain."
//
// Structured (object/pointer) parameters are completed by the tester; a
// CompletionRegistry plays that role programmatically so suites remain
// executable end-to-end.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "stc/domain/domain.h"
#include "stc/driver/test_case.h"
#include "stc/obs/context.h"
#include "stc/tfm/coverage.h"
#include "stc/tspec/model.h"

namespace stc::driver {

/// The tester's manual completions for structured parameter types,
/// keyed by pointee class name (t-spec Object/Pointer slots).
class CompletionRegistry {
public:
    using Completion = domain::PointerDomain::Completion;

    void provide(const std::string& class_name, Completion completion);
    [[nodiscard]] const Completion* find(const std::string& class_name) const;

private:
    std::map<std::string, Completion> completions_;
};

/// Value-selection policy.  The paper uses Random; Boundary additionally
/// cycles through domain boundary values (an ablation extension).
enum class ValuePolicy { Random, Boundary };

struct GeneratorOptions {
    std::uint64_t seed = 20010701;  ///< DSN 2001 vintage default
    tfm::EnumerationOptions enumeration;
    tfm::Criterion criterion = tfm::Criterion::AllTransactions;
    ValuePolicy value_policy = ValuePolicy::Random;
    /// Test cases generated per selected transaction (different random
    /// argument values each).
    std::size_t cases_per_transaction = 1;
    /// When the t-spec declares predefined states (State records) and
    /// the binding has the set/reset capability, additionally generate
    /// one variant per transaction per state, entering the transaction
    /// from that state instead of a fresh object (§3.3 extension).
    bool include_entry_states = false;
    /// Observability: a "generate-suite" phase span plus counters for
    /// synthesized cases and RNG value draws.  Disabled by default.
    obs::Context obs;
};

/// Synthesize one method call with generated argument values — the
/// §3.4.1 value-selection step, shared by the DriverGenerator and the
/// coverage-guided fuzzer (stc::fuzz).  `case_ordinal` indexes the
/// boundary/invalid value cycles; `expect_rejection` drives one
/// parameter outside its domain (negative call).  Sets *needs_completion
/// when a structured parameter had no completion hook.
[[nodiscard]] MethodCall synthesize_call(const tspec::MethodSpec& method,
                                         support::Pcg32& rng,
                                         std::size_t case_ordinal,
                                         const CompletionRegistry* completions,
                                         ValuePolicy policy,
                                         bool* needs_completion,
                                         bool expect_rejection = false,
                                         const obs::Context& obs = {});

/// Generates an executable TestSuite from a component's embedded t-spec.
class DriverGenerator {
public:
    DriverGenerator(tspec::ComponentSpec spec, GeneratorOptions options = {});

    /// Provide tester completions for structured parameters.
    DriverGenerator& completions(const CompletionRegistry* registry);

    /// Enumerate transactions, select per the criterion, and synthesize
    /// test cases with generated argument values.  Throws SpecError when
    /// the spec is invalid or a transaction's birth node lacks a usable
    /// constructor.
    [[nodiscard]] TestSuite generate() const;

    /// The transactions the suite would cover (before value generation);
    /// exposed for coverage analysis and the figure benches.
    [[nodiscard]] std::vector<tfm::Transaction> transactions() const;

    /// True when some parameter domain can name an out-of-domain value.
    [[nodiscard]] static bool can_reject(const tspec::MethodSpec& method);

private:
    tspec::ComponentSpec spec_;  // owned: callers may pass temporaries
    GeneratorOptions options_;
    const CompletionRegistry* completions_ = nullptr;
};

}  // namespace stc::driver
