// Test cases and test suites — the artifacts produced by the Driver
// Generator (§3.4.1, Figs. 6-7).
//
// One test case exercises one transaction: it creates the object with a
// constructor of the birth node, calls the methods along the path with
// the generated argument values, and destroys the object at the death
// node.  A suite bundles the test cases for one component together with
// the generation metadata (seed, model size) the paper reports (§4:
// "233 test cases ... for a test model composed of 16 nodes and 43
// links").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stc/domain/value.h"
#include "stc/tfm/graph.h"

namespace stc::driver {

/// One method invocation within a test case.
struct MethodCall {
    std::string method_id;    ///< t-spec id, e.g. "m5"
    std::string method_name;  ///< C++ name, e.g. "UpdateQty"
    std::vector<domain::Value> arguments;
    bool is_constructor = false;
    bool is_destructor = false;
    /// Negative (error-recovery) call: the arguments deliberately violate
    /// the contract and the component is expected to reject the call via
    /// a precondition, leaving the object usable (§3.4.1).
    bool expect_rejection = false;

    /// Rendering used in logs and generated source, e.g.
    /// `UpdateQty(321)` — matches the CurrentMethod strings of Fig. 6.
    [[nodiscard]] std::string render() const;
};

/// One generated test case (Fig. 6): named "TestCase<id number>" by the
/// Driver Generator.
struct TestCase {
    std::string id;                 ///< e.g. "TC0"
    tfm::Transaction transaction;   ///< the covered path
    std::string transaction_text;   ///< e.g. "n1 -> n4 -> n7"
    std::vector<MethodCall> calls;  ///< constructor first, destructor last
    bool needs_completion = false;  ///< has structured args the tester must fill
    /// Predefined internal state applied right after construction via the
    /// set/reset capability ("" = none; §3.3 mid-life entry testing).
    std::string entry_state;

    [[nodiscard]] const MethodCall& constructor_call() const;
};

/// An executable test suite (Fig. 7) plus generation metadata.
struct TestSuite {
    std::string class_name;
    std::uint64_t seed = 0;
    std::size_t model_nodes = 0;
    std::size_t model_links = 0;
    std::size_t transactions_enumerated = 0;
    std::vector<TestCase> cases;

    [[nodiscard]] std::size_t size() const noexcept { return cases.size(); }
};

}  // namespace stc::driver
