// Shared text wire-format helpers for the concat-* persistence formats
// (suite_io, golden_io, interclass system_io): percent-encoding of field
// separators and the typed Value encoding.
#pragma once

#include <cstdio>
#include <string>

#include "stc/domain/value.h"
#include "stc/support/error.h"

namespace stc::driver::wire {

/// Percent-encode '%', '|', and line breaks.
inline std::string encode(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '%' || c == '|' || c == '\n' || c == '\r') {
            char buf[8];
            std::snprintf(buf, sizeof buf, "%%%02x", static_cast<unsigned char>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

inline std::string decode(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '%' && i + 2 < s.size()) {
            out += static_cast<char>(std::stoi(s.substr(i + 1, 2), nullptr, 16));
            i += 2;
        } else {
            out += s[i];
        }
    }
    return out;
}

/// Typed value field: "I:42", "R:1.5", "S:text", "E:", "P:Class" (live
/// pointers do not persist — only the pointee class survives).
inline std::string encode_value(const domain::Value& v) {
    using domain::ValueKind;
    switch (v.kind()) {
        case ValueKind::Empty: return "E:";
        case ValueKind::Int: return "I:" + std::to_string(v.as_int());
        case ValueKind::Real: {
            char buf[64];
            std::snprintf(buf, sizeof buf, "R:%.17g", v.as_real());
            return buf;
        }
        case ValueKind::String: return "S:" + encode(v.as_string());
        case ValueKind::Pointer:
        case ValueKind::Object:
            return "P:" + encode(v.as_object().type_name);
    }
    return "E:";
}

inline domain::Value decode_value(const std::string& field, int lineno) {
    if (field.size() < 2 || field[1] != ':') {
        throw Error("line " + std::to_string(lineno) + ": bad value field '" + field +
                    "'");
    }
    const std::string payload = field.substr(2);
    switch (field[0]) {
        case 'E': return {};
        case 'I': return domain::Value::make_int(std::stoll(payload));
        case 'R': return domain::Value::make_real(std::stod(payload));
        case 'S': return domain::Value::make_string(decode(payload));
        case 'P': return domain::Value::make_pointer(nullptr, decode(payload));
        default:
            throw Error("line " + std::to_string(lineno) + ": unknown value kind '" +
                        field.substr(0, 1) + "'");
    }
}

}  // namespace stc::driver::wire
