// In-process test execution.
//
// Runs a generated TestSuite against the component under test through
// the reflection bindings, reproducing the control structure of the
// paper's generated driver (Fig. 6): activate test mode, create the CUT
// with the transaction's constructor, check the class invariant before
// each method call and after its return, call Reporter to store the
// object's internal state, destroy the CUT, and convert any exception
// (assertion violation, simulated crash, ...) into a recorded verdict
// with the name of the method that was executing.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stc/bit/assertions.h"
#include "stc/driver/lockstep.h"
#include "stc/driver/test_case.h"
#include "stc/obs/context.h"
#include "stc/reflect/class_binding.h"

namespace stc::driver {

/// Outcome of one test case.  The first three map onto the paper's kill
/// conditions for mutation analysis (§4): crash, assertion violation,
/// output difference (the latter judged later by an oracle against a
/// golden run — a runner alone can only report Pass).
enum class Verdict {
    Pass,
    AssertionViolation,  ///< BIT assertion raised (paper kill condition ii)
    Crash,               ///< CrashSignal: would have crashed the process (i)
    UncaughtException,   ///< any other exception escaping the CUT
    SetupError,          ///< constructor/binding failure before the test body
    ContractNotEnforced, ///< a negative call was ACCEPTED: the component
                         ///< failed to reject an out-of-contract input
    ModelDivergence,     ///< the run disagreed with the lockstep reference
                         ///< model (only with RunnerOptions::promote_divergence;
                         ///< campaigns keep divergence as a side channel)
    IllegalQuiescence,   ///< ioco: a call that must produce an observable
                         ///< output was silently absorbed (assembly-level
                         ///< bit::QuiescenceViolation)
};

[[nodiscard]] const char* to_string(Verdict v) noexcept;

/// Inverse of to_string; std::nullopt for unknown text.  Used by the
/// fuzz corpus loader to rehydrate recorded verdicts and by the
/// exhaustive round-trip tests.
[[nodiscard]] std::optional<Verdict> verdict_from_string(
    std::string_view text) noexcept;

/// All verdict values, for exhaustive iteration (round-trip tests,
/// reporters that must not silently drop a kind).
inline constexpr Verdict kAllVerdicts[] = {
    Verdict::Pass,       Verdict::AssertionViolation,
    Verdict::Crash,      Verdict::UncaughtException,
    Verdict::SetupError, Verdict::ContractNotEnforced,
    Verdict::ModelDivergence, Verdict::IllegalQuiescence,
};

struct TestResult {
    std::string case_id;
    Verdict verdict = Verdict::Pass;
    std::string message;         ///< failure text (er.msg in Fig. 6)
    std::string failed_method;   ///< "Method called: ..." in Fig. 6
    std::optional<bit::AssertionKind> assertion_kind;
    std::string report;          ///< Reporter output (observable state)
    std::string log;             ///< per-case log in the Fig. 6 format
    /// First disagreement with the lockstep reference model, when one
    /// was attached ("call 3 RemoveHead(): return expected ... got ...");
    /// empty otherwise.  A side channel: never part of report/log, so a
    /// run with a model attached produces byte-identical reports to one
    /// without — the differential oracle compares this field against
    /// the golden baseline's.
    std::string model_divergence;

    [[nodiscard]] bool passed() const noexcept { return verdict == Verdict::Pass; }
};

struct SuiteResult {
    std::vector<TestResult> results;
    std::string log;  ///< concatenation — the "Result.txt" of Fig. 6

    [[nodiscard]] std::size_t count(Verdict v) const noexcept;
    [[nodiscard]] std::size_t passed() const noexcept { return count(Verdict::Pass); }
    [[nodiscard]] std::size_t failed() const noexcept {
        return results.size() - passed();
    }
};

/// Observation hook announcing test-case call boundaries.  Implemented
/// by stc::mutation's coverage recorder: together with the mutation
/// layer's site sink it turns one golden run into a CoverageIndex keyed
/// by (test case, mutation site, first-hit call index).
///
/// Call-index convention: construction and the optional entry-state
/// application are index 0; body call `i` is `test_case.calls[i]`
/// (1-based, calls[0] being the constructor); the implicit wrap-up
/// destruction is index calls.size().
class CaseObserver {
public:
    virtual void on_case_begin(const TestCase& test_case) = 0;
    /// Entering call index `call_index` (fires before the call executes).
    virtual void on_call(std::size_t call_index) = 0;

protected:
    ~CaseObserver() = default;
};

/// Snapshot of a test case's execution front just before body call
/// `resume_call`: a behavioural copy of the CUT plus the observation
/// stream accumulated so far.  Produced by TestRunner::capture_case on
/// the un-mutated component; consumed by run_case_from, which replays
/// only the suffix.  Sharing one checkpoint across every case with an
/// identical birth prefix is the campaign's shared-prefix memoization
/// (stc/mutation/prune.h).
struct CaseCheckpoint {
    std::size_t resume_call = 0;
    std::shared_ptr<void> prototype;  ///< destroyed through the class binding
    std::string observations;         ///< observation log up to resume_call
};

struct RunnerOptions {
    bool check_invariants = true;   ///< invariant before/after every call (Fig. 6)
    bool capture_reports = true;    ///< call Reporter at end of each case
    bool observe_each_call = false; ///< additionally capture state after every call
    /// When non-empty, the suite log is also appended to this file — the
    /// literal "Result.txt" behaviour of the paper's generated drivers.
    std::string log_path;
    /// Lockstep reference model (stc::model): when set and valid, every
    /// test case mirrors its calls into a fresh model instance and
    /// records the first divergence in TestResult::model_divergence.
    /// Observation is read-only on the CUT, so attaching a model never
    /// changes verdicts, reports, or mutation hit tracking.  Non-owning;
    /// must outlive the runner.
    const ModelBinding* model = nullptr;
    /// Promote a divergence on an otherwise-PASSING case to
    /// Verdict::ModelDivergence (failed_method = the diverging call,
    /// message = the divergence).  Used by the fuzz/run paths, where
    /// verdicts are the signal; campaigns leave this off and classify
    /// the side channel differentially instead.
    bool promote_divergence = false;
    /// Observability: suite/test-case/method-call spans, verdict,
    /// assertion and invariant-check counters, per-case latency.  Disabled by
    /// default at near-zero cost; safe to share across runner copies on
    /// worker threads.
    obs::Context obs;
    /// Per-call progress hook for coverage capture.  Fires only on full
    /// runs (never on run_case_from resumes).  Non-owning; must outlive
    /// the runner.
    CaseObserver* observer = nullptr;
};

/// Executes test suites against registered class bindings.
class TestRunner {
public:
    explicit TestRunner(const reflect::Registry& registry, RunnerOptions options = {});

    [[nodiscard]] SuiteResult run(const TestSuite& suite) const;
    [[nodiscard]] TestResult run_case(const reflect::ClassBinding& binding,
                                      const TestCase& test_case) const;

    /// Run `test_case` un-mutated, capturing a CaseCheckpoint just before
    /// each body call index in `boundaries` (sorted ascending, each in
    /// [1, calls.size())).  Capture stops early when the case fails, a
    /// boundary lies past an explicit destructor, or a clone refuses; the
    /// returned vector holds whatever was captured.  Returns empty when
    /// the class has no cloner.
    [[nodiscard]] std::vector<CaseCheckpoint> capture_case(
        const reflect::ClassBinding& binding, const TestCase& test_case,
        const std::vector<std::size_t>& boundaries) const;

    /// Replay only the suffix of `test_case` from `checkpoint`.  The
    /// result is byte-identical to run_case whenever execution up to
    /// checkpoint.resume_call is equivalent to the capture run — the
    /// pruned campaign evaluator guarantees that through the coverage
    /// index (no mutation site of the active mutant is consulted before
    /// resume_call).  No model lockstep runs (callers gate memoization
    /// off when a model is attached).  A clone failure propagates as
    /// ReflectError: callers fall back to a full run_case.
    [[nodiscard]] TestResult run_case_from(
        const reflect::ClassBinding& binding, const TestCase& test_case,
        const CaseCheckpoint& checkpoint) const;

private:
    TestResult run_case_impl(const reflect::ClassBinding& binding,
                             const TestCase& test_case,
                             const CaseCheckpoint* resume,
                             const std::vector<std::size_t>* boundaries,
                             std::vector<CaseCheckpoint>* captured) const;

    const reflect::Registry& registry_;
    RunnerOptions options_;
};

}  // namespace stc::driver
