// In-process test execution.
//
// Runs a generated TestSuite against the component under test through
// the reflection bindings, reproducing the control structure of the
// paper's generated driver (Fig. 6): activate test mode, create the CUT
// with the transaction's constructor, check the class invariant before
// each method call and after its return, call Reporter to store the
// object's internal state, destroy the CUT, and convert any exception
// (assertion violation, simulated crash, ...) into a recorded verdict
// with the name of the method that was executing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stc/bit/assertions.h"
#include "stc/driver/lockstep.h"
#include "stc/driver/test_case.h"
#include "stc/obs/context.h"
#include "stc/reflect/class_binding.h"

namespace stc::driver {

/// Outcome of one test case.  The first three map onto the paper's kill
/// conditions for mutation analysis (§4): crash, assertion violation,
/// output difference (the latter judged later by an oracle against a
/// golden run — a runner alone can only report Pass).
enum class Verdict {
    Pass,
    AssertionViolation,  ///< BIT assertion raised (paper kill condition ii)
    Crash,               ///< CrashSignal: would have crashed the process (i)
    UncaughtException,   ///< any other exception escaping the CUT
    SetupError,          ///< constructor/binding failure before the test body
    ContractNotEnforced, ///< a negative call was ACCEPTED: the component
                         ///< failed to reject an out-of-contract input
    ModelDivergence,     ///< the run disagreed with the lockstep reference
                         ///< model (only with RunnerOptions::promote_divergence;
                         ///< campaigns keep divergence as a side channel)
};

[[nodiscard]] const char* to_string(Verdict v) noexcept;

/// Inverse of to_string; std::nullopt for unknown text.  Used by the
/// fuzz corpus loader to rehydrate recorded verdicts and by the
/// exhaustive round-trip tests.
[[nodiscard]] std::optional<Verdict> verdict_from_string(
    std::string_view text) noexcept;

/// All verdict values, for exhaustive iteration (round-trip tests,
/// reporters that must not silently drop a kind).
inline constexpr Verdict kAllVerdicts[] = {
    Verdict::Pass,       Verdict::AssertionViolation,
    Verdict::Crash,      Verdict::UncaughtException,
    Verdict::SetupError, Verdict::ContractNotEnforced,
    Verdict::ModelDivergence,
};

struct TestResult {
    std::string case_id;
    Verdict verdict = Verdict::Pass;
    std::string message;         ///< failure text (er.msg in Fig. 6)
    std::string failed_method;   ///< "Method called: ..." in Fig. 6
    std::optional<bit::AssertionKind> assertion_kind;
    std::string report;          ///< Reporter output (observable state)
    std::string log;             ///< per-case log in the Fig. 6 format
    /// First disagreement with the lockstep reference model, when one
    /// was attached ("call 3 RemoveHead(): return expected ... got ...");
    /// empty otherwise.  A side channel: never part of report/log, so a
    /// run with a model attached produces byte-identical reports to one
    /// without — the differential oracle compares this field against
    /// the golden baseline's.
    std::string model_divergence;

    [[nodiscard]] bool passed() const noexcept { return verdict == Verdict::Pass; }
};

struct SuiteResult {
    std::vector<TestResult> results;
    std::string log;  ///< concatenation — the "Result.txt" of Fig. 6

    [[nodiscard]] std::size_t count(Verdict v) const noexcept;
    [[nodiscard]] std::size_t passed() const noexcept { return count(Verdict::Pass); }
    [[nodiscard]] std::size_t failed() const noexcept {
        return results.size() - passed();
    }
};

struct RunnerOptions {
    bool check_invariants = true;   ///< invariant before/after every call (Fig. 6)
    bool capture_reports = true;    ///< call Reporter at end of each case
    bool observe_each_call = false; ///< additionally capture state after every call
    /// When non-empty, the suite log is also appended to this file — the
    /// literal "Result.txt" behaviour of the paper's generated drivers.
    std::string log_path;
    /// Lockstep reference model (stc::model): when set and valid, every
    /// test case mirrors its calls into a fresh model instance and
    /// records the first divergence in TestResult::model_divergence.
    /// Observation is read-only on the CUT, so attaching a model never
    /// changes verdicts, reports, or mutation hit tracking.  Non-owning;
    /// must outlive the runner.
    const ModelBinding* model = nullptr;
    /// Promote a divergence on an otherwise-PASSING case to
    /// Verdict::ModelDivergence (failed_method = the diverging call,
    /// message = the divergence).  Used by the fuzz/run paths, where
    /// verdicts are the signal; campaigns leave this off and classify
    /// the side channel differentially instead.
    bool promote_divergence = false;
    /// Observability: suite/test-case/method-call/invariant-check spans,
    /// verdict and assertion counters, per-case latency.  Disabled by
    /// default at near-zero cost; safe to share across runner copies on
    /// worker threads.
    obs::Context obs;
};

/// Executes test suites against registered class bindings.
class TestRunner {
public:
    explicit TestRunner(const reflect::Registry& registry, RunnerOptions options = {});

    [[nodiscard]] SuiteResult run(const TestSuite& suite) const;
    [[nodiscard]] TestResult run_case(const reflect::ClassBinding& binding,
                                      const TestCase& test_case) const;

private:
    const reflect::Registry& registry_;
    RunnerOptions options_;
};

}  // namespace stc::driver
