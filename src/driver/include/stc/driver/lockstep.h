// Lockstep reference models — the differential-oracle seam of the
// runner (stc::model provides the concrete models).
//
// The paper's oracle is explicitly partial: embedded assertions plus
// hand-validated golden outputs.  A reference model closes part of the
// gap by re-executing every method call of a test case against a cheap,
// obviously-correct implementation of the component's *specified*
// behaviour (Brinkmeyer's executable-specification conformance idea)
// and comparing, after each call,
//   - the predicted return value (rendered exactly like the runner's
//     observation log renders the live return), and
//   - an abstracted projection of the observable state, produced on the
//     model side by abstract_state() and on the live side by a
//     read-only ModelBinding::project of the object under test.
// The first mismatch is a *model divergence*: recorded verbatim on the
// TestResult (side channel, never in the report/log, so runs with and
// without a model stay byte-identical) and optionally promoted to
// Verdict::ModelDivergence for engines that treat verdicts as signals
// (the fuzzer's interest map, the shrinker's predicate).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stc/domain/value.h"
#include "stc/driver/test_case.h"

namespace stc::driver {

/// Outcome of mirroring one call into the reference model.
struct ModelPrediction {
    /// False when the model cannot predict this call (unknown method,
    /// unsupported argument shape).  The runner then disengages the
    /// model for the rest of the case — an unmodeled call is a modelling
    /// gap, never a divergence.
    bool modeled = false;
    /// Whether the call is expected to produce an observable return
    /// value (the runner only logs non-empty returns).
    bool has_return = false;
    /// Expected observation-log rendering of the return value, exactly
    /// as the runner's render_return would print the live one
    /// ("<object>", "12", "CInt(7)", ...).  Meaningful iff has_return.
    std::string rendered_return;
};

/// A reference model instance, mirroring the life of ONE object under
/// test (one per test case; never shared across cases or threads).
class LockstepModel {
public:
    virtual ~LockstepModel() = default;

    /// Mirror the constructor call.  Returns false when the argument
    /// shape is not modeled (the runner disengages, silently).
    virtual bool construct(const std::vector<domain::Value>& args) = 0;

    /// Mirror a predefined entry state (§3.3 mid-life entry).  Returns
    /// false for states the model does not know.
    virtual bool apply_state(const std::string& state) = 0;

    /// Mirror one (non-constructor, non-destructor) method call that
    /// the live object executed successfully, and predict its rendered
    /// return value.  Must be deterministic and exception-free.
    virtual ModelPrediction apply(const MethodCall& call) = 0;

    /// Deterministic abstraction of the model's observable state, in
    /// the same format the paired ModelBinding::project produces for
    /// the live object (e.g. "count=2 [CInt(3), CInt(7)]").
    [[nodiscard]] virtual std::string abstract_state() const = 0;
};

/// How a runner binds a reference model to a class under test.
struct ModelBinding {
    /// Fresh model per test case.
    std::function<std::unique_ptr<LockstepModel>()> factory;
    /// Project the live object's observable state into the same
    /// abstraction abstract_state() produces.  MUST be read-only on the
    /// object (only uninstrumented const accessors) and must never
    /// throw — a projection that cannot complete (corrupted structure)
    /// returns a deterministic marker such as "<fault>" instead, which
    /// simply never matches a healthy model state.
    std::function<std::string(const void* object)> project;

    [[nodiscard]] bool valid() const noexcept {
        return static_cast<bool>(factory) && static_cast<bool>(project);
    }
};

}  // namespace stc::driver
