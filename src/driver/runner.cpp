#include "stc/driver/runner.h"

#include <chrono>
#include <fstream>
#include <sstream>

#include "stc/bit/built_in_test.h"
#include "stc/support/error.h"

namespace stc::driver {

const char* to_string(Verdict v) noexcept {
    switch (v) {
        case Verdict::Pass: return "pass";
        case Verdict::AssertionViolation: return "assertion-violation";
        case Verdict::Crash: return "crash";
        case Verdict::UncaughtException: return "uncaught-exception";
        case Verdict::SetupError: return "setup-error";
        case Verdict::ContractNotEnforced: return "contract-not-enforced";
        case Verdict::ModelDivergence: return "model-divergence";
        case Verdict::IllegalQuiescence: return "illegal-quiescence";
    }
    return "?";
}

std::optional<Verdict> verdict_from_string(std::string_view text) noexcept {
    for (const Verdict v : kAllVerdicts) {
        if (text == to_string(v)) return v;
    }
    return std::nullopt;
}

std::size_t SuiteResult::count(Verdict v) const noexcept {
    std::size_t n = 0;
    for (const auto& r : results) n += r.verdict == v ? 1 : 0;
    return n;
}

TestRunner::TestRunner(const reflect::Registry& registry, RunnerOptions options)
    : registry_(registry), options_(options) {}

namespace {

/// Owns the CUT for the duration of one test case; destruction is
/// best-effort (a corrupted object may crash again while dying, which the
/// paper's per-process drivers simply absorbed at exit).
class CutGuard {
public:
    CutGuard(const reflect::ClassBinding& binding, void* object) noexcept
        : binding_(binding), object_(object) {}

    ~CutGuard() { reset(); }

    CutGuard(const CutGuard&) = delete;
    CutGuard& operator=(const CutGuard&) = delete;

    [[nodiscard]] void* get() const noexcept { return object_; }
    [[nodiscard]] bool alive() const noexcept { return object_ != nullptr; }

    void reset() noexcept {
        if (object_ != nullptr) {
            try {
                binding_.destroy(object_);
            } catch (...) {
                // Swallow: the object was already failing; this mirrors the
                // paper's crashed-driver handling.
            }
            object_ = nullptr;
        }
    }

private:
    const reflect::ClassBinding& binding_;
    void* object_;
};

std::string capture_state(const reflect::ClassBinding& binding, void* object) {
    bit::BuiltInTest* bit_view = binding.as_bit(object);
    if (bit_view == nullptr) return {};
    try {
        return bit_view->report();
    } catch (...) {
        return "<Reporter failed>";
    }
}

void check_invariant(const reflect::ClassBinding& binding, void* object) {
    bit::BuiltInTest* bit_view = binding.as_bit(object);
    if (bit_view != nullptr) bit_view->InvariantTest();
}

/// Deterministic rendering of a return value for the observation log.
/// Raw addresses never appear (they vary run to run); a pointer is
/// reduced to its null/non-null shape, which *is* deterministic for a
/// fixed call sequence.
std::string render_return(const domain::Value& v) {
    switch (v.kind()) {
        case domain::ValueKind::Pointer:
            return v.as_pointer() == nullptr ? "<null>" : "<object>";
        case domain::ValueKind::Object:
            return "<object>";
        default:
            return v.to_display();
    }
}

}  // namespace

TestResult TestRunner::run_case(const reflect::ClassBinding& binding,
                                const TestCase& test_case) const {
    return run_case_impl(binding, test_case, nullptr, nullptr, nullptr);
}

std::vector<CaseCheckpoint> TestRunner::capture_case(
    const reflect::ClassBinding& binding, const TestCase& test_case,
    const std::vector<std::size_t>& boundaries) const {
    std::vector<CaseCheckpoint> out;
    if (boundaries.empty() || !binding.has_cloner()) return out;
    (void)run_case_impl(binding, test_case, nullptr, &boundaries, &out);
    return out;
}

TestResult TestRunner::run_case_from(const reflect::ClassBinding& binding,
                                     const TestCase& test_case,
                                     const CaseCheckpoint& checkpoint) const {
    return run_case_impl(binding, test_case, &checkpoint, nullptr, nullptr);
}

TestResult TestRunner::run_case_impl(const reflect::ClassBinding& binding,
                                     const TestCase& test_case,
                                     const CaseCheckpoint* resume,
                                     const std::vector<std::size_t>* boundaries,
                                     std::vector<CaseCheckpoint>* captured) const {
    TestResult result;
    result.case_id = test_case.id;

    using ObsClock = std::chrono::steady_clock;
    const bool metered = options_.obs.metrics.enabled();
    const ObsClock::time_point case_start =
        metered ? ObsClock::now() : ObsClock::time_point{};
    const obs::SpanScope case_span(options_.obs.tracer, "test-case",
                                   test_case.id);

    const bit::TestModeGuard test_mode;
    std::ostringstream log;
    std::ostringstream observations;  // return values (+ per-call state)
    std::string state_report;         // object state before death

    std::string current_method = "<none>";
    auto record_failure = [&](Verdict verdict, const std::string& message) {
        result.verdict = verdict;
        result.message = message;
        result.failed_method = current_method;
        // Fig. 6 failure block: test case name, error message, method name.
        log << "TestCase " << test_case.id << "\n"
            << message << "\n"
            << "Method called: " << current_method << "\n";
    };
    auto finish = [&] {
        result.report = observations.str() + state_report;
        result.log = log.str();
        if (metered) {
            options_.obs.metrics.add(std::string("runner.verdict.") +
                                     to_string(result.verdict));
            options_.obs.metrics.observe_ms(
                "runner.case_ms",
                std::chrono::duration<double, std::milli>(ObsClock::now() -
                                                          case_start)
                    .count());
        }
    };

    // Invariant evaluations are counted (runner.invariant_checks), not
    // traced: one span per InvariantTest() ran after every method call
    // and was over half of a campaign trace's volume — finer than the
    // method-call granularity the trace promises, and heavy enough to
    // distort the streamed-telemetry path it was meant to observe.
    auto observe_invariant = [&](void* object) {
        options_.obs.metrics.add("runner.invariant_checks");
        check_invariant(binding, object);
    };

    CaseObserver* const observer =
        resume == nullptr ? options_.observer : nullptr;
    if (observer != nullptr) observer->on_case_begin(test_case);

    // --- Construction (or checkpoint resume) -------------------------------
    const MethodCall* ctor = nullptr;
    void* raw = nullptr;
    if (resume != nullptr) {
        // Clone failures propagate uncaught: the caller falls back to a
        // full run rather than recording a fabricated verdict.
        raw = binding.clone(resume->prototype.get());
        observations << resume->observations;
        current_method = "<resume>";
    } else {
        try {
            ctor = &test_case.constructor_call();
        } catch (const Error& e) {
            record_failure(Verdict::SetupError, e.what());
            finish();
            return result;
        }

        current_method = ctor->render();
        try {
            raw = binding.construct(ctor->arguments);
        } catch (const bit::AssertionViolation& av) {
            result.assertion_kind = av.assertion_kind();
            record_failure(Verdict::AssertionViolation, av.what());
            finish();
            return result;
        } catch (const bit::QuiescenceViolation& qv) {
            record_failure(Verdict::IllegalQuiescence, qv.what());
            finish();
            return result;
        } catch (const CrashSignal& cs) {
            record_failure(Verdict::Crash, cs.what());
            finish();
            return result;
        } catch (const ReflectError& re) {
            record_failure(Verdict::SetupError, re.what());
            finish();
            return result;
        } catch (const std::exception& e) {
            record_failure(Verdict::UncaughtException, e.what());
            finish();
            return result;
        }
    }

    CutGuard cut(binding, raw);

    // --- Lockstep reference model (differential oracle seam) ---------------
    // Mirrors every successful call into a fresh model instance and
    // records the first disagreement.  Strictly read-only on the CUT:
    // the projection uses uninstrumented const accessors only, so the
    // live run (verdicts, reports, mutation hits) is byte-identical
    // with or without a model attached.
    std::unique_ptr<LockstepModel> model;
    bool model_engaged = false;
    std::string diverged_method;
    auto model_diverge = [&](const std::string& method, std::size_t call_index,
                             const char* aspect, const std::string& expected,
                             const std::string& actual) {
        std::ostringstream os;
        os << "call " << call_index << " " << method << ": " << aspect
           << " expected \"" << expected << "\" got \"" << actual << "\"";
        result.model_divergence = os.str();
        diverged_method = method;
        options_.obs.metrics.add("model.divergences");
        model_engaged = false;  // first divergence is the finding; stop there
    };
    auto model_compare_state = [&](const std::string& method,
                                   std::size_t call_index) {
        if (!model_engaged) return;
        const std::string live = options_.model->project(cut.get());
        const std::string predicted = model->abstract_state();
        if (live != predicted) {
            model_diverge(method, call_index, "state", predicted, live);
        }
    };
    if (resume == nullptr && options_.model != nullptr &&
        options_.model->valid()) {
        try {
            model = options_.model->factory();
            model_engaged =
                model != nullptr && model->construct(ctor->arguments);
            if (model_engaged) {
                const obs::SpanScope span(options_.obs.tracer, "model-compare",
                                          ctor->method_name);
                options_.obs.metrics.add("model.compares");
                model_compare_state(ctor->render(), 0);
            }
        } catch (...) {
            model_engaged = false;  // a broken model must never fail the run
        }
    }

    // --- Optional mid-life entry: apply the predefined state (§3.3) -------
    // A checkpoint resume skips this: entry-state application is part of
    // call index 0, already folded into the checkpointed prefix.
    if (resume == nullptr && !test_case.entry_state.empty()) {
        current_method = "<set-state:" + test_case.entry_state + ">";
        try {
            binding.apply_state(cut.get(), test_case.entry_state);
        } catch (const ReflectError& re) {
            record_failure(Verdict::SetupError, re.what());
            finish();
            return result;
        } catch (const bit::AssertionViolation& av) {
            result.assertion_kind = av.assertion_kind();
            record_failure(Verdict::AssertionViolation, av.what());
            finish();
            return result;
        } catch (const bit::QuiescenceViolation& qv) {
            record_failure(Verdict::IllegalQuiescence, qv.what());
            finish();
            return result;
        } catch (const std::exception& e) {
            record_failure(Verdict::UncaughtException, e.what());
            finish();
            return result;
        }
        if (model_engaged) {
            try {
                model_engaged = model->apply_state(test_case.entry_state);
                model_compare_state(current_method, 0);
            } catch (...) {
                model_engaged = false;
            }
        }
    }

    // --- Checkpoint capture (prefix memoization producer) ------------------
    // A checkpoint at boundary k snapshots the CUT and observation stream
    // *before* body call k executes.  Cloning happens with no mutant
    // active; a refusal stops further capture (suffix runs stay full).
    std::size_t next_boundary = 0;
    bool capturing = captured != nullptr && boundaries != nullptr;
    auto snapshot = [&](std::size_t call_index) -> bool {
        if (!cut.alive()) return false;
        void* copy = nullptr;
        try {
            copy = binding.clone(cut.get());
        } catch (...) {
            return false;
        }
        captured->push_back(CaseCheckpoint{
            call_index,
            std::shared_ptr<void>(copy,
                                  [b = &binding](void* p) {
                                      try {
                                          b->destroy(p);
                                      } catch (...) {
                                      }
                                  }),
            observations.str()});
        return true;
    };

    // --- Body: methods along the transaction, invariant around each -------
    try {
        const std::size_t first_call =
            resume != nullptr ? resume->resume_call : 1;
        for (std::size_t i = first_call; i < test_case.calls.size(); ++i) {
            if (observer != nullptr) observer->on_call(i);
            if (capturing) {
                while (next_boundary < boundaries->size() &&
                       (*boundaries)[next_boundary] < i) {
                    ++next_boundary;
                }
                if (next_boundary < boundaries->size() &&
                    (*boundaries)[next_boundary] == i) {
                    capturing = snapshot(i);
                    ++next_boundary;
                }
            }
            const MethodCall& call = test_case.calls[i];
            current_method = call.render();
            options_.obs.metrics.add("runner.method_calls");
            const obs::SpanScope call_span(options_.obs.tracer, "method-call",
                                           call.method_name);

            if (call.is_destructor) {
                // Observable state is captured before death (Fig. 6 calls
                // Reporter, then deletes the CUT).
                if (options_.capture_reports) {
                    state_report = capture_state(binding, cut.get());
                }
                cut.reset();
                continue;
            }

            if (!cut.alive()) {
                throw SpecError("method call after destructor in transaction " +
                                test_case.transaction_text);
            }

            if (call.expect_rejection) {
                // Error-recovery call: the contract must reject it and the
                // object must remain usable afterwards.
                bool rejected = false;
                try {
                    (void)binding.invoke(cut.get(), call.method_name,
                                         call.arguments);
                } catch (const bit::AssertionViolation& av) {
                    rejected = av.assertion_kind() ==
                               bit::AssertionKind::Precondition;
                    if (!rejected) throw;  // invariant/post break: real failure
                }
                if (!rejected) {
                    record_failure(Verdict::ContractNotEnforced,
                                   "out-of-contract call was accepted");
                    break;
                }
                observations << call.method_name << " -> <rejected>\n";
                if (options_.check_invariants) observe_invariant(cut.get());
                continue;
            }

            if (options_.check_invariants) observe_invariant(cut.get());
            const domain::Value rv =
                binding.invoke(cut.get(), call.method_name, call.arguments);
            if (options_.check_invariants) observe_invariant(cut.get());

            if (model_engaged) {
                const obs::SpanScope span(options_.obs.tracer, "model-compare",
                                          call.method_name);
                options_.obs.metrics.add("model.compares");
                try {
                    const ModelPrediction prediction = model->apply(call);
                    if (!prediction.modeled) {
                        model_engaged = false;  // modelling gap, not a finding
                    } else {
                        const std::string actual =
                            rv.is_empty() ? std::string() : render_return(rv);
                        const std::string expected =
                            prediction.has_return ? prediction.rendered_return
                                                  : std::string();
                        if (expected != actual) {
                            model_diverge(call.render(), i, "return", expected,
                                          actual);
                        } else {
                            model_compare_state(call.render(), i);
                        }
                    }
                } catch (...) {
                    model_engaged = false;
                }
            }

            if (!rv.is_empty()) {
                observations << call.method_name << " -> " << render_return(rv)
                             << "\n";
            }
            if (options_.observe_each_call) {
                observations << capture_state(binding, cut.get()) << "\n";
            }
        }

        // Transactions whose death node has no explicit destructor method
        // still end with the object's destruction (delete CUT in Fig. 6).
        if (result.verdict == Verdict::Pass) {
            if (cut.alive()) {
                if (observer != nullptr) {
                    observer->on_call(test_case.calls.size());
                }
                if (options_.capture_reports) {
                    state_report = capture_state(binding, cut.get());
                }
                cut.reset();
            }
            if (options_.promote_divergence &&
                !result.model_divergence.empty()) {
                current_method = diverged_method;
                record_failure(Verdict::ModelDivergence,
                               result.model_divergence);
            } else {
                log << "TestCase " << test_case.id << " OK!\n";
            }
        }
    } catch (const bit::AssertionViolation& av) {
        result.assertion_kind = av.assertion_kind();
        record_failure(Verdict::AssertionViolation, av.what());
        if (options_.capture_reports && cut.alive()) {
            state_report = capture_state(binding, cut.get());
        }
    } catch (const bit::QuiescenceViolation& qv) {
        record_failure(Verdict::IllegalQuiescence, qv.what());
        if (options_.capture_reports && cut.alive()) {
            state_report = capture_state(binding, cut.get());
        }
    } catch (const CrashSignal& cs) {
        record_failure(Verdict::Crash, cs.what());
        // No state report: the object is presumed corrupted beyond observation.
    } catch (const ReflectError& re) {
        record_failure(Verdict::SetupError, re.what());
    } catch (const std::exception& e) {
        record_failure(Verdict::UncaughtException, e.what());
        if (options_.capture_reports && cut.alive()) {
            state_report = capture_state(binding, cut.get());
        }
    }

    finish();
    return result;
}

SuiteResult TestRunner::run(const TestSuite& suite) const {
    const reflect::ClassBinding& binding = registry_.at(suite.class_name);

    const obs::SpanScope suite_span(options_.obs.tracer, "suite-run",
                                    suite.class_name);
    // Assertion evaluations are counted per thread (thread_local stats),
    // so the delta below attributes correctly even when several runner
    // copies execute on campaign workers concurrently.
    const bool metered = options_.obs.metrics.enabled();
    const auto& assertion_stats = bit::AssertionStats::instance();
    const std::uint64_t checked_before =
        metered ? assertion_stats.total_checked() : 0;
    const std::uint64_t violated_before =
        metered ? assertion_stats.total_violated() : 0;

    SuiteResult out;
    out.results.reserve(suite.cases.size());
    std::ostringstream log;
    for (const TestCase& tc : suite.cases) {
        TestResult r = run_case(binding, tc);
        log << r.log;
        if (!r.report.empty()) log << r.report << "\n";
        log << "\n";
        out.results.push_back(std::move(r));
    }
    out.log = log.str();

    if (metered) {
        options_.obs.metrics.add("runner.suites");
        options_.obs.metrics.add(
            "bit.assertions_checked",
            assertion_stats.total_checked() - checked_before);
        options_.obs.metrics.add(
            "bit.assertions_violated",
            assertion_stats.total_violated() - violated_before);
    }

    if (!options_.log_path.empty()) {
        std::ofstream file(options_.log_path, std::ios::app);
        if (!file) {
            throw Error("cannot open log file: " + options_.log_path);
        }
        file << out.log;
    }
    return out;
}

}  // namespace stc::driver
