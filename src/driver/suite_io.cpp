#include "stc/driver/suite_io.h"

#include <istream>
#include <ostream>

#include "stc/driver/wire_format.h"
#include "stc/support/error.h"
#include "stc/support/strings.h"

namespace stc::driver {

namespace {

using wire::decode;
using wire::decode_value;
using wire::encode;
using wire::encode_value;

constexpr const char* kMagic = "concat-suite 1";

}  // namespace

void save_suite(std::ostream& os, const TestSuite& suite) {
    os << kMagic << "\n";
    os << "class " << suite.class_name << "\n";
    os << "seed " << suite.seed << "\n";
    os << "model " << suite.model_nodes << " " << suite.model_links << " "
       << suite.transactions_enumerated << "\n";
    for (const TestCase& tc : suite.cases) {
        os << "case " << tc.id << "|" << encode(tc.transaction_text) << "|";
        for (std::size_t i = 0; i < tc.transaction.path.size(); ++i) {
            if (i != 0) os << ",";
            os << tc.transaction.path[i];
        }
        os << "|" << (tc.needs_completion ? 1 : 0) << "|" << encode(tc.entry_state)
           << "\n";
        for (const MethodCall& call : tc.calls) {
            os << "call " << call.method_id << "|" << encode(call.method_name) << "|"
               << (call.is_constructor ? 1 : 0) << "|" << (call.is_destructor ? 1 : 0)
               << "|" << (call.expect_rejection ? 1 : 0);
            for (const auto& arg : call.arguments) os << "|" << encode_value(arg);
            os << "\n";
        }
        os << "end\n";
    }
}

TestSuite load_suite(std::istream& is) {
    TestSuite suite;
    std::string line;
    int lineno = 0;

    auto next_line = [&]() -> bool {
        while (std::getline(is, line)) {
            ++lineno;
            if (!support::trim(line).empty()) return true;
        }
        return false;
    };
    auto fail = [&](const std::string& message) -> void {
        throw Error("suite line " + std::to_string(lineno) + ": " + message);
    };

    if (!next_line() || line != kMagic) {
        throw Error("not a concat-suite file (bad magic)");
    }

    TestCase* current = nullptr;
    while (next_line()) {
        if (support::starts_with(line, "class ")) {
            suite.class_name = line.substr(6);
        } else if (support::starts_with(line, "seed ")) {
            suite.seed = std::stoull(line.substr(5));
        } else if (support::starts_with(line, "model ")) {
            const auto fields = support::split(line.substr(6), ' ');
            if (fields.size() != 3) fail("model line needs 3 fields");
            suite.model_nodes = std::stoull(fields[0]);
            suite.model_links = std::stoull(fields[1]);
            suite.transactions_enumerated = std::stoull(fields[2]);
        } else if (support::starts_with(line, "case ")) {
            const auto fields = support::split(line.substr(5), '|');
            if (fields.size() != 4 && fields.size() != 5) {
                fail("case line needs 4 or 5 fields");
            }
            TestCase tc;
            tc.id = fields[0];
            tc.transaction_text = decode(fields[1]);
            if (!fields[2].empty()) {
                for (const auto& idx : support::split(fields[2], ',')) {
                    tc.transaction.path.push_back(std::stoull(idx));
                }
            }
            tc.needs_completion = fields[3] == "1";
            if (fields.size() == 5) tc.entry_state = decode(fields[4]);
            suite.cases.push_back(std::move(tc));
            current = &suite.cases.back();
        } else if (support::starts_with(line, "call ")) {
            if (current == nullptr) fail("call outside a case");
            const auto fields = support::split(line.substr(5), '|');
            if (fields.size() < 4) fail("call line needs at least 4 fields");
            MethodCall call;
            call.method_id = fields[0];
            call.method_name = decode(fields[1]);
            call.is_constructor = fields[2] == "1";
            call.is_destructor = fields[3] == "1";
            // Field 4 is the rejection flag ("0"/"1"); argument fields
            // always carry a kind prefix ("I:", ...), so plain "0"/"1"
            // is unambiguous (and keeps pre-flag files loadable).
            std::size_t first_arg = 4;
            if (fields.size() > 4 && (fields[4] == "0" || fields[4] == "1")) {
                call.expect_rejection = fields[4] == "1";
                first_arg = 5;
            }
            for (std::size_t i = first_arg; i < fields.size(); ++i) {
                call.arguments.push_back(decode_value(fields[i], lineno));
            }
            current->calls.push_back(std::move(call));
        } else if (line == "end") {
            current = nullptr;
        } else {
            fail("unrecognized record '" + line + "'");
        }
    }
    return suite;
}

std::size_t recomplete_suite(TestSuite& suite, const CompletionRegistry& completions,
                             std::uint64_t seed) {
    support::Pcg32 rng(seed);
    std::size_t completed = 0;
    for (TestCase& tc : suite.cases) {
        bool pending = false;
        for (MethodCall& call : tc.calls) {
            for (auto& arg : call.arguments) {
                if (arg.kind() != domain::ValueKind::Pointer || arg.as_pointer() != nullptr) {
                    continue;
                }
                const std::string& cls = arg.as_object().type_name;
                const auto* completion = completions.find(cls);
                if (completion != nullptr && *completion) {
                    arg = (*completion)(rng);
                    ++completed;
                } else {
                    pending = true;
                }
            }
        }
        tc.needs_completion = pending;
    }
    return completed;
}

}  // namespace stc::driver
