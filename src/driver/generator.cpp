#include "stc/driver/generator.h"

#include "stc/support/error.h"

namespace stc::driver {

std::string MethodCall::render() const {
    std::string out = (expect_rejection ? "!" : "") + method_name + "(";
    for (std::size_t i = 0; i < arguments.size(); ++i) {
        if (i != 0) out += ", ";
        out += arguments[i].to_source();
    }
    out += ")";
    return out;
}

const MethodCall& TestCase::constructor_call() const {
    if (calls.empty() || !calls.front().is_constructor) {
        throw SpecError("test case " + id + " does not start with a constructor");
    }
    return calls.front();
}

void CompletionRegistry::provide(const std::string& class_name, Completion completion) {
    completions_[class_name] = std::move(completion);
}

const CompletionRegistry::Completion* CompletionRegistry::find(
    const std::string& class_name) const {
    const auto it = completions_.find(class_name);
    return it == completions_.end() ? nullptr : &it->second;
}

DriverGenerator::DriverGenerator(tspec::ComponentSpec spec, GeneratorOptions options)
    : spec_(std::move(spec)), options_(options) {}

DriverGenerator& DriverGenerator::completions(const CompletionRegistry* registry) {
    completions_ = registry;
    return *this;
}

std::vector<tfm::Transaction> DriverGenerator::transactions() const {
    const tfm::Graph graph = spec_.build_tfm();
    auto all = graph.enumerate_transactions(options_.enumeration);
    const auto selected = tfm::select_transactions(graph, all, options_.criterion);
    std::vector<tfm::Transaction> out;
    out.reserve(selected.size());
    for (std::size_t i : selected) out.push_back(all[i]);
    return out;
}

MethodCall synthesize_call(const tspec::MethodSpec& method, support::Pcg32& rng,
                           std::size_t case_ordinal,
                           const CompletionRegistry* completions,
                           ValuePolicy policy, bool* needs_completion,
                           bool expect_rejection, const obs::Context& obs) {
    MethodCall call;
    call.method_id = method.id;
    call.method_name = method.name;
    call.is_constructor = method.is_constructor();
    call.is_destructor = method.is_destructor();
    call.expect_rejection = expect_rejection;

    // A negative call drives exactly one parameter outside its declared
    // domain — the first one whose domain can name an invalid value.
    bool violation_placed = false;

    for (const tspec::TypedSlot& p : method.parameters) {
        if (expect_rejection && !violation_placed && p.domain) {
            const auto invalid = p.domain->invalid_values();
            if (!invalid.empty()) {
                call.arguments.push_back(invalid[case_ordinal % invalid.size()]);
                violation_placed = true;
                continue;
            }
        }
        if (p.domain) {
            if (policy == ValuePolicy::Boundary) {
                const auto boundary = p.domain->boundary_values();
                if (!boundary.empty()) {
                    call.arguments.push_back(boundary[case_ordinal % boundary.size()]);
                    continue;
                }
            }
            obs.metrics.add("generator.value_draws");
            call.arguments.push_back(p.domain->sample(rng));
            continue;
        }
        // Structured parameter: completed by the tester (§3.4.1).
        const CompletionRegistry::Completion* completion =
            completions == nullptr ? nullptr : completions->find(p.class_name);
        if (completion != nullptr && *completion) {
            obs.metrics.add("generator.value_draws");
            call.arguments.push_back((*completion)(rng));
        } else {
            call.arguments.push_back(domain::Value::make_pointer(nullptr, p.class_name));
            *needs_completion = true;
        }
    }
    return call;
}

bool DriverGenerator::can_reject(const tspec::MethodSpec& method) {
    for (const tspec::TypedSlot& p : method.parameters) {
        if (p.domain && !p.domain->invalid_values().empty()) return true;
    }
    return false;
}

TestSuite DriverGenerator::generate() const {
    spec_.ensure_valid();
    const obs::SpanScope generate_span(options_.obs.tracer, "phase",
                                       "generate-suite");
    const tfm::Graph graph = spec_.build_tfm();

    TestSuite suite;
    suite.class_name = spec_.class_name;
    suite.seed = options_.seed;
    suite.model_nodes = graph.node_count();
    suite.model_links = graph.edge_count();

    const auto all = graph.enumerate_transactions(options_.enumeration);
    suite.transactions_enumerated = all.size();
    const auto selected = tfm::select_transactions(graph, all, options_.criterion);

    support::Pcg32 rng(options_.seed);
    std::size_t next_id = 0;

    for (std::size_t index : selected) {
        const tfm::Transaction& t = all[index];
        const auto method_ids = graph.method_sequence(t);

        for (std::size_t rep = 0; rep < options_.cases_per_transaction; ++rep) {
            TestCase tc;
            tc.id = "TC" + std::to_string(next_id++);
            tc.transaction = t;
            tc.transaction_text = graph.describe(t);

            for (const std::string& entry : method_ids) {
                const bool negative = tspec::is_negative_call(entry);
                const std::string mid = tspec::strip_negative_marker(entry);
                const tspec::MethodSpec* method = spec_.find_method(mid);
                if (method == nullptr) {
                    throw SpecError("transaction references unknown method id " + mid);
                }
                if (negative && !can_reject(*method)) {
                    throw SpecError("negative call !" + mid +
                                    ": no parameter domain can produce an "
                                    "out-of-domain value");
                }
                tc.calls.push_back(synthesize_call(
                    *method, rng, rep, completions_, options_.value_policy,
                    &tc.needs_completion, negative, options_.obs));
            }

            if (tc.calls.empty() || !tc.calls.front().is_constructor) {
                throw SpecError("transaction " + tc.transaction_text +
                                " does not begin with a constructor");
            }

            if (options_.include_entry_states) {
                // Mid-life entry variants: the same transaction entered
                // from each predefined internal state (set/reset, §3.3).
                for (const std::string& state : spec_.states) {
                    TestCase variant = tc;
                    variant.id = "TC" + std::to_string(next_id++);
                    variant.entry_state = state;
                    suite.cases.push_back(std::move(variant));
                }
            }
            suite.cases.push_back(std::move(tc));
        }
    }
    if (options_.obs.metrics.enabled()) {
        options_.obs.metrics.add("generator.cases", suite.cases.size());
        options_.obs.metrics.add("generator.suites");
    }
    return suite;
}

}  // namespace stc::driver
