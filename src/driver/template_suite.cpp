#include "stc/driver/template_suite.h"

#include "stc/support/error.h"

namespace stc::driver {

std::string instantiated_name(const std::string& class_name,
                              const std::vector<std::string>& type_arguments) {
    if (type_arguments.empty()) return class_name;
    std::string out = class_name + "<";
    for (std::size_t i = 0; i < type_arguments.size(); ++i) {
        if (i != 0) out += ", ";
        out += type_arguments[i];
    }
    out += ">";
    return out;
}

std::vector<TemplateInstantiation> generate_template_suites(
    const tspec::ComponentSpec& spec, GeneratorOptions options,
    const CompletionRegistry* completions) {
    // Cartesian product over the TemplateParam lists (std::map keeps the
    // parameter order deterministic by name; a t-spec with one parameter
    // — the common case — is unaffected).
    std::vector<std::vector<std::string>> argument_sets{{}};
    for (const auto& [param, types] : spec.template_bindings) {
        if (types.empty()) {
            throw SpecError("template parameter '" + param +
                            "' has no instantiation types");
        }
        std::vector<std::vector<std::string>> next;
        next.reserve(argument_sets.size() * types.size());
        for (const auto& prefix : argument_sets) {
            for (const auto& type : types) {
                auto extended = prefix;
                extended.push_back(type);
                next.push_back(std::move(extended));
            }
        }
        argument_sets = std::move(next);
    }

    std::vector<TemplateInstantiation> out;
    out.reserve(argument_sets.size());
    for (auto& args : argument_sets) {
        TemplateInstantiation inst;
        inst.type_arguments = args;
        inst.instantiated_class = instantiated_name(spec.class_name, args);

        DriverGenerator generator(spec, options);
        if (completions != nullptr) generator.completions(completions);
        inst.suite = generator.generate();
        inst.suite.class_name = inst.instantiated_class;
        out.push_back(std::move(inst));
    }
    return out;
}

}  // namespace stc::driver
