// stc::assembly — compositional testing of component assemblies.
//
// Given per-class t-specs (stc::tspec) and an assembly block naming
// roles, role-to-role wiring and the exported interface, this module
// computes the *synchronous product* TFM of the composition:
//
//   - a product state is the tuple of per-role TFM nodes;
//   - an exported action steps the owning role along one of its TFM
//     links, then the wiring closure fires: every wire whose caller is
//     that (role, method) pair steps the callee role too, as a hidden
//     internal action, recursively (chains of wires compose; cyclic
//     chains are rejected statically);
//   - only exported actions remain observable — the hidden actions are
//     the tau-steps of the ioco literature, and wires marked `emits`
//     carry an output obligation whose violation at run time is the
//     Verdict::IllegalQuiescence of the conformance oracle;
//   - assembly death is the joint death of every role: enabled exactly
//     in the product states where each role's current node links to one
//     of its death nodes.
//
// The result is an ordinary tspec::ComponentSpec whose TFM nodes are
// the *reachable* product states (unreachable tuples are pruned during
// the breadth-first construction and reported in the stats), so every
// downstream consumer — transaction enumeration, test generation,
// mutation campaigns, `concat assemble validate/dot/transactions` —
// works on assemblies unchanged.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "stc/tspec/assembly.h"
#include "stc/tspec/model.h"

namespace stc::assembly {

struct ProductOptions {
    /// Explosion guard: construction aborts (SpecError) when more than
    /// this many distinct product tuples become reachable.  The fuzz
    /// harness leans on this to keep adversarial inputs cheap.
    std::size_t max_states = 20000;
};

struct ProductStats {
    /// |nodes(role 1)| * ... * |nodes(role n)|: every conceivable tuple.
    std::size_t conceivable_tuples = 0;
    /// Tuples actually reachable from the joint birth state — the
    /// pruning headline (conceivable - reachable tuples never become
    /// product nodes).
    std::size_t reachable_tuples = 0;
    std::size_t product_nodes = 0;  ///< synthesized TFM nodes (incl. birth/death)
    std::size_t product_edges = 0;
    std::size_t hidden_wires = 0;   ///< wires in the assembly description
    /// Hidden-action steps taken during construction (tau-transitions
    /// folded into observable product links).
    std::size_t hidden_steps = 0;
    /// Non-fatal observations: exports never enabled, hidden actions
    /// blocked in particular states (the export is disabled there), TFM
    /// diagnostics of the synthesized graph.
    std::vector<std::string> notes;
};

struct Product {
    tspec::ComponentSpec spec;  ///< the synchronous product as a t-spec
    ProductStats stats;
};

/// Compute the synchronous product of `assembly` over `role_specs`
/// (keyed by role id; every role must be present and its class name
/// must match).  Throws stc::SpecError on semantic errors: missing or
/// mismatched role specs, wires or exports naming unknown methods or
/// constructors/destructors, cyclic hidden-action chains, a
/// nondeterministic product (one state, one exported action, two
/// successor states), unreachable assembly death, or a state-count
/// explosion past `options.max_states`.
[[nodiscard]] Product build_product(
    const tspec::AssemblySpec& assembly,
    const std::map<std::string, tspec::ComponentSpec>& role_specs,
    const ProductOptions& options = {});

/// Human-readable stats block for `concat assemble` (one "key: value"
/// line each, stable order).
[[nodiscard]] std::string describe(const ProductStats& stats);

}  // namespace stc::assembly
