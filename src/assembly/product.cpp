#include "stc/assembly/product.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <optional>
#include <sstream>
#include <utility>

#include "stc/support/error.h"
#include "stc/tfm/graph.h"

namespace stc::assembly {

namespace {

/// Cap on recorded per-state notes (blocked hidden actions): product
/// construction stays cheap on adversarial inputs and the stats block
/// stays readable.
constexpr std::size_t kMaxStateNotes = 50;

struct Role {
    const tspec::RoleSpec* decl = nullptr;
    const tspec::ComponentSpec* spec = nullptr;
    tfm::Graph graph;
    tfm::NodeIndex birth = 0;
    std::vector<bool> can_die;  ///< node links to one of the role's death nodes
};

/// Successors of `from` whose method group contains `method` as a real
/// (non-negative) call: the TFM links this action may take.  Returns
/// the count and the first hit; >1 means the product is
/// nondeterministic for this action in this state.
std::pair<std::size_t, tfm::NodeIndex> step_candidates(const tfm::Graph& g,
                                                       tfm::NodeIndex from,
                                                       const std::string& method) {
    std::size_t count = 0;
    tfm::NodeIndex hit = 0;
    for (const tfm::NodeIndex s : g.successors(from)) {
        for (const std::string& entry : g.node(s).method_ids) {
            if (!tspec::is_negative_call(entry) && entry == method) {
                if (count++ == 0) hit = s;
                break;
            }
        }
    }
    return {count, hit};
}

using Tuple = std::vector<tfm::NodeIndex>;

struct Builder {
    const tspec::AssemblySpec& assembly;
    const ProductOptions& options;
    std::vector<Role> roles;
    ProductStats stats;

    /// (caller role index, caller method) -> callee steps, declaration order.
    std::map<std::pair<std::size_t, std::string>,
             std::vector<std::pair<std::size_t, std::string>>>
        triggers;

    struct ExportedAction {
        std::size_t role = 0;
        std::string method;           ///< method id in the role's t-spec
        std::string product_method;   ///< method id in the product t-spec
        std::string public_name;      ///< name on the assembly interface
    };
    std::vector<ExportedAction> actions;

    std::size_t state_notes = 0;

    [[nodiscard]] std::string tuple_text(const Tuple& t) const {
        std::string out = "(";
        for (std::size_t i = 0; i < roles.size(); ++i) {
            if (i != 0) out += ", ";
            out += roles[i].decl->id + "=" + roles[i].graph.node(t[i]).id;
        }
        return out + ")";
    }

    void note_blocked(const std::string& public_name, std::size_t role_idx,
                      const std::string& method, const Tuple& t) {
        if (state_notes == kMaxStateNotes) {
            stats.notes.push_back("further blocked-action notes suppressed");
        }
        if (state_notes++ >= kMaxStateNotes) return;
        stats.notes.push_back("export '" + public_name + "' disabled in " +
                              tuple_text(t) + ": hidden action " +
                              roles[role_idx].decl->id + "." + method +
                              " has no TFM link there");
    }

    /// Advance `role_idx` on a hidden `method`, then fire its chained
    /// wires.  False = blocked somewhere down the chain (the observable
    /// action is disabled in this state).
    bool apply_hidden(std::size_t role_idx, const std::string& method, Tuple& t,
                      const std::string& public_name, const Tuple& origin) {
        const auto [count, hit] =
            step_candidates(roles[role_idx].graph, t[role_idx], method);
        if (count == 0) {
            note_blocked(public_name, role_idx, method, origin);
            return false;
        }
        if (count > 1) {
            throw SpecError("assembly '" + assembly.name +
                            "' product is nondeterministic: hidden action " +
                            roles[role_idx].decl->id + "." + method + " in " +
                            tuple_text(t) + " has " + std::to_string(count) +
                            " TFM links");
        }
        t[role_idx] = hit;
        ++stats.hidden_steps;
        const auto it = triggers.find({role_idx, method});
        if (it != triggers.end()) {
            for (const auto& [callee, callee_method] : it->second) {
                if (!apply_hidden(callee, callee_method, t, public_name, origin)) {
                    return false;
                }
            }
        }
        return true;
    }

    /// Fire exported action `k` from tuple `t`; nullopt when disabled.
    std::optional<Tuple> fire(std::size_t k, const Tuple& t) {
        const ExportedAction& a = actions[k];
        const auto [count, hit] =
            step_candidates(roles[a.role].graph, t[a.role], a.method);
        if (count == 0) return std::nullopt;
        if (count > 1) {
            throw SpecError("assembly '" + assembly.name +
                            "' product is nondeterministic: exported action '" +
                            a.public_name + "' in " + tuple_text(t) + " has " +
                            std::to_string(count) + " TFM links");
        }
        Tuple next = t;
        next[a.role] = hit;
        const auto it = triggers.find({a.role, a.method});
        if (it != triggers.end()) {
            for (const auto& [callee, callee_method] : it->second) {
                if (!apply_hidden(callee, callee_method, next, a.public_name, t)) {
                    return std::nullopt;
                }
            }
        }
        return next;
    }

    [[nodiscard]] bool death_enabled(const Tuple& t) const {
        for (std::size_t i = 0; i < roles.size(); ++i) {
            if (!roles[i].can_die[t[i]]) return false;
        }
        return true;
    }
};

/// Reject wiring whose hidden-action chains can loop: wire edges
/// (caller role.method) -> (callee role.method) composed transitively
/// must form a DAG, or closure would never terminate.
void check_wiring_acyclic(const tspec::AssemblySpec& assembly) {
    std::map<std::string, std::vector<std::string>> graph;
    for (const auto& w : assembly.wiring) {
        graph[w.caller_role + "." + w.caller_method].push_back(
            w.callee_role + "." + w.callee_method);
    }
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::vector<std::pair<std::string, std::size_t>> dfs;
    for (const auto& [start, _] : graph) {
        if (color[start] != 0) continue;
        dfs.push_back({start, 0});
        color[start] = 1;
        while (!dfs.empty()) {
            auto& [node, next] = dfs.back();
            const auto it = graph.find(node);
            if (it == graph.end() || next >= it->second.size()) {
                color[node] = 2;
                dfs.pop_back();
                continue;
            }
            const std::string& succ = it->second[next++];
            if (color[succ] == 1) {
                throw SpecError("assembly '" + assembly.name +
                                "' has a cyclic hidden-action chain through " +
                                succ);
            }
            if (color[succ] == 0) {
                color[succ] = 1;
                dfs.push_back({succ, 0});
            }
        }
    }
}

}  // namespace

Product build_product(
    const tspec::AssemblySpec& assembly,
    const std::map<std::string, tspec::ComponentSpec>& role_specs,
    const ProductOptions& options) {
    Builder b{assembly, options, {}, {}, {}, {}, 0};
    b.stats.hidden_wires = assembly.wiring.size();

    // --- Roles: spec lookup, validation, per-role TFM --------------------
    std::map<std::string, std::size_t> role_index;
    std::size_t conceivable = 1;
    for (const auto& decl : assembly.roles) {
        const auto it = role_specs.find(decl.id);
        if (it == role_specs.end()) {
            throw SpecError("assembly '" + assembly.name + "': no t-spec for role '" +
                            decl.id + "'");
        }
        if (it->second.class_name != decl.class_name) {
            throw SpecError("role '" + decl.id + "' declares class '" +
                            decl.class_name + "' but its t-spec describes '" +
                            it->second.class_name + "'");
        }
        Role role;
        role.decl = &decl;
        role.spec = &it->second;
        role.graph = it->second.build_tfm();  // ensure_valid() inside
        const auto births = role.graph.birth_nodes();
        if (births.size() != 1) {
            throw SpecError("role '" + decl.id + "' needs exactly one starting node, has " +
                            std::to_string(births.size()));
        }
        role.birth = births.front();
        role.can_die.assign(role.graph.node_count(), false);
        for (tfm::NodeIndex n = 0; n < role.graph.node_count(); ++n) {
            for (const tfm::NodeIndex s : role.graph.successors(n)) {
                if (role.graph.is_death(s)) {
                    role.can_die[n] = true;
                    break;
                }
            }
        }
        role_index[decl.id] = b.roles.size();
        b.roles.push_back(std::move(role));
        const std::size_t nodes = b.roles.back().graph.node_count();
        if (nodes != 0 &&
            conceivable > std::numeric_limits<std::size_t>::max() / nodes) {
            conceivable = std::numeric_limits<std::size_t>::max();
        } else {
            conceivable *= nodes;
        }
    }
    b.stats.conceivable_tuples = conceivable;

    // --- Wiring: method existence, no ctor/dtor, acyclic chains ----------
    auto plain_method = [&](std::size_t role_idx, const std::string& id,
                            const char* what) -> const tspec::MethodSpec* {
        const Role& role = b.roles[role_idx];
        const tspec::MethodSpec* m = role.spec->find_method(id);
        if (m == nullptr) {
            throw SpecError(std::string(what) + " names unknown method '" + id +
                            "' of role '" + role.decl->id + "'");
        }
        if (m->is_constructor() || m->is_destructor()) {
            throw SpecError(std::string(what) + " may not name the constructor or "
                            "destructor of role '" + role.decl->id +
                            "' (birth and death are composed, not wired)");
        }
        return m;
    };
    auto resolve_role = [&](const std::string& id,
                            const char* what) -> std::size_t {
        const auto it = role_index.find(id);
        if (it == role_index.end()) {
            throw SpecError(std::string(what) + " names unknown role '" + id + "'");
        }
        return it->second;
    };
    for (const auto& w : assembly.wiring) {
        const std::size_t caller = resolve_role(w.caller_role, "wire caller");
        const std::size_t callee = resolve_role(w.callee_role, "wire callee");
        (void)plain_method(caller, w.caller_method, "wire caller");
        (void)plain_method(callee, w.callee_method, "wire callee");
        b.triggers[{caller, w.caller_method}].push_back({callee, w.callee_method});
    }
    check_wiring_acyclic(assembly);

    // --- Exports: the product's observable interface ---------------------
    std::map<std::string, int> public_names;
    for (const auto& e : assembly.exports) {
        const std::size_t role_idx = resolve_role(e.role, "export");
        const tspec::MethodSpec* m = plain_method(role_idx, e.method, "export");
        Builder::ExportedAction action;
        action.role = role_idx;
        action.method = e.method;
        action.product_method = "m" + std::to_string(b.actions.size() + 3);
        action.public_name = e.alias.empty() ? m->name : e.alias;
        if (++public_names[action.public_name] > 1) {
            throw SpecError("assembly '" + assembly.name +
                            "' exports two methods as '" + action.public_name +
                            "'; give one an alias");
        }
        b.actions.push_back(std::move(action));
    }

    // --- Breadth-first product exploration (reachable tuples only) ------
    Tuple start;
    start.reserve(b.roles.size());
    for (const Role& role : b.roles) start.push_back(role.birth);

    std::map<Tuple, std::size_t> tuple_ids;
    std::vector<Tuple> tuples;
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> transitions;
    std::deque<std::size_t> frontier;
    auto intern = [&](const Tuple& t) {
        const auto [it, fresh] = tuple_ids.try_emplace(t, tuples.size());
        if (fresh) {
            if (tuples.size() >= options.max_states) {
                throw SpecError("assembly '" + assembly.name +
                                "' product exceeds " +
                                std::to_string(options.max_states) +
                                " reachable states");
            }
            tuples.push_back(t);
            transitions.emplace_back();
            frontier.push_back(it->second);
        }
        return it->second;
    };
    (void)intern(start);
    std::vector<bool> action_seen(b.actions.size(), false);
    while (!frontier.empty()) {
        const std::size_t id = frontier.front();
        frontier.pop_front();
        for (std::size_t k = 0; k < b.actions.size(); ++k) {
            const Tuple from = tuples[id];  // copy: intern may reallocate
            const auto next = b.fire(k, from);
            if (!next) continue;
            action_seen[k] = true;
            const std::size_t to = intern(*next);  // may grow `transitions`
            transitions[id].push_back({k, to});
        }
    }
    b.stats.reachable_tuples = tuples.size();
    for (std::size_t k = 0; k < b.actions.size(); ++k) {
        if (!action_seen[k]) {
            b.stats.notes.push_back("export '" + b.actions[k].public_name +
                                    "' is never enabled in any reachable state");
        }
    }

    bool any_death = false;
    for (const Tuple& t : tuples) {
        if (b.death_enabled(t)) {
            any_death = true;
            break;
        }
    }
    if (!any_death) {
        throw SpecError("assembly '" + assembly.name +
                        "' can never die: no reachable state lets every role "
                        "reach a death node");
    }

    // --- Synthesize the product t-spec -----------------------------------
    // Node identity is (entering action, tuple): each product node
    // groups exactly one method, so test generation over the product is
    // unambiguous.  Ids follow discovery order (BFS tuple order, then
    // export declaration order) and are therefore deterministic.
    tspec::ComponentSpec spec;
    spec.class_name = assembly.name;

    tspec::MethodSpec ctor;
    ctor.id = "m1";
    ctor.name = assembly.name;
    ctor.category = tspec::MethodCategory::Constructor;
    spec.methods.push_back(std::move(ctor));
    tspec::MethodSpec dtor;
    dtor.id = "m2";
    dtor.name = "~" + assembly.name;
    dtor.category = tspec::MethodCategory::Destructor;
    spec.methods.push_back(std::move(dtor));
    for (const auto& action : b.actions) {
        tspec::MethodSpec m = *b.roles[action.role].spec->find_method(action.method);
        m.id = action.product_method;
        m.name = action.public_name;
        m.category = tspec::MethodCategory::New;
        spec.methods.push_back(std::move(m));
    }

    std::map<std::pair<std::size_t, std::size_t>, std::string> pnode_ids;
    std::size_t next_node = 1;
    auto node_id = [&] { return "p" + std::to_string(next_node++); };
    const std::string birth_id = node_id();
    // Targets in deterministic discovery order.
    for (std::size_t id = 0; id < tuples.size(); ++id) {
        for (const auto& [k, to] : transitions[id]) {
            pnode_ids.try_emplace({k, to}, "");
        }
    }
    for (std::size_t id = 0; id < tuples.size(); ++id) {
        for (const auto& [k, to] : transitions[id]) {
            auto& slot = pnode_ids[{k, to}];
            if (slot.empty()) slot = node_id();
        }
    }
    const std::string death_id = node_id();

    auto emit_node = [&](const std::string& id, bool is_start,
                         const std::string& method) {
        tspec::NodeSpec n;
        n.id = id;
        n.is_start = is_start;
        n.method_ids.push_back(method);
        spec.nodes.push_back(std::move(n));
    };
    auto emit_edges_from = [&](const std::string& from, std::size_t tuple_id) {
        for (const auto& [k, to] : transitions[tuple_id]) {
            spec.edges.push_back(tspec::EdgeSpec{from, pnode_ids.at({k, to})});
        }
        if (b.death_enabled(tuples[tuple_id])) {
            spec.edges.push_back(tspec::EdgeSpec{from, death_id});
        }
    };

    emit_node(birth_id, true, "m1");
    emit_edges_from(birth_id, 0);
    // Nodes in id order: walk the same discovery order again.
    std::map<std::string, std::pair<std::size_t, std::size_t>> by_id;
    for (const auto& [key, id] : pnode_ids) by_id[id] = key;
    std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>> ordered(
        by_id.begin(), by_id.end());
    std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& c) {
        // "p2" < "p10": compare numerically past the 'p'.
        return std::stoul(a.first.substr(1)) < std::stoul(c.first.substr(1));
    });
    for (const auto& [id, key] : ordered) {
        emit_node(id, false, b.actions[key.first].product_method);
        emit_edges_from(id, key.second);
    }
    emit_node(death_id, false, "m2");

    for (auto& n : spec.nodes) {
        int out = 0;
        for (const auto& e : spec.edges) out += e.from == n.id ? 1 : 0;
        n.declared_out_degree = out;
    }

    b.stats.product_nodes = spec.nodes.size();
    b.stats.product_edges = spec.edges.size();

    // Structural diagnostics of the synthesized TFM, surfaced as notes
    // (`concat assemble validate` prints them).  The construction
    // guarantees a birth and a reachable death; traps (states that can
    // no longer reach death) are possible when role protocols diverge
    // and show up here.
    for (const auto& d : spec.build_tfm().diagnose()) {
        b.stats.notes.push_back(std::string("tfm: ") + tfm::to_string(d.kind) +
                                (d.node_id.empty() ? "" : " at " + d.node_id) +
                                (d.detail.empty() ? "" : ": " + d.detail));
    }

    Product out;
    out.spec = std::move(spec);
    out.stats = std::move(b.stats);
    return out;
}

std::string describe(const ProductStats& stats) {
    std::ostringstream os;
    os << "conceivable tuples: " << stats.conceivable_tuples << "\n"
       << "reachable tuples:   " << stats.reachable_tuples << "\n"
       << "pruned tuples:      "
       << (stats.conceivable_tuples >= stats.reachable_tuples
               ? stats.conceivable_tuples - stats.reachable_tuples
               : 0)
       << "\n"
       << "product nodes:      " << stats.product_nodes << "\n"
       << "product edges:      " << stats.product_edges << "\n"
       << "hidden wires:       " << stats.hidden_wires << "\n"
       << "hidden steps:       " << stats.hidden_steps << "\n";
    for (const auto& note : stats.notes) os << "note: " << note << "\n";
    return os.str();
}

}  // namespace stc::assembly
