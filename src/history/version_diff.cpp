#include "stc/history/version_diff.h"

#include <set>

#include "stc/support/error.h"

namespace stc::history {

const char* to_string(MethodChange change) noexcept {
    switch (change) {
        case MethodChange::Unchanged: return "unchanged";
        case MethodChange::SignatureChanged: return "signature-changed";
        case MethodChange::DomainChanged: return "domain-changed";
        case MethodChange::Added: return "added";
        case MethodChange::Removed: return "removed";
    }
    return "?";
}

MethodChange SpecDelta::change_of(const std::string& method_id) const {
    const auto it = methods.find(method_id);
    // A method the delta has never heard of behaves like a removal: the
    // frozen case cannot be trusted against the new release.
    return it == methods.end() ? MethodChange::Removed : it->second;
}

bool SpecDelta::any_changes() const noexcept {
    if (model_changed) return true;
    for (const auto& [id, change] : methods) {
        if (change != MethodChange::Unchanged) return true;
    }
    return false;
}

namespace {

/// Domain identity proxy: the printable description captures type and
/// bounds; identical descriptions mean identical generation behaviour.
std::string domain_signature(const tspec::TypedSlot& slot) {
    std::string out = std::string(to_string(slot.type)) + ":" + slot.class_name;
    if (slot.domain) out += ":" + slot.domain->describe();
    return out;
}

bool same_signature(const tspec::MethodSpec& a, const tspec::MethodSpec& b) {
    if (a.name != b.name || a.category != b.category ||
        a.parameters.size() != b.parameters.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.parameters.size(); ++i) {
        if (a.parameters[i].type != b.parameters[i].type ||
            a.parameters[i].class_name != b.parameters[i].class_name) {
            return false;
        }
    }
    return true;
}

bool same_domains(const tspec::MethodSpec& a, const tspec::MethodSpec& b) {
    for (std::size_t i = 0; i < a.parameters.size(); ++i) {
        if (domain_signature(a.parameters[i]) != domain_signature(b.parameters[i])) {
            return false;
        }
    }
    return true;
}

bool same_model(const tspec::ComponentSpec& a, const tspec::ComponentSpec& b) {
    if (a.nodes.size() != b.nodes.size() || a.edges.size() != b.edges.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.nodes.size(); ++i) {
        if (a.nodes[i].id != b.nodes[i].id ||
            a.nodes[i].is_start != b.nodes[i].is_start ||
            a.nodes[i].method_ids != b.nodes[i].method_ids) {
            return false;
        }
    }
    for (std::size_t i = 0; i < a.edges.size(); ++i) {
        if (a.edges[i].from != b.edges[i].from || a.edges[i].to != b.edges[i].to) {
            return false;
        }
    }
    return true;
}

}  // namespace

SpecDelta diff_specs(const tspec::ComponentSpec& old_spec,
                     const tspec::ComponentSpec& new_spec) {
    if (old_spec.class_name != new_spec.class_name) {
        throw SpecError("diff_specs compares releases of one class, got '" +
                        old_spec.class_name + "' vs '" + new_spec.class_name + "'");
    }

    SpecDelta delta;
    for (const auto& old_method : old_spec.methods) {
        const tspec::MethodSpec* new_method = new_spec.find_method(old_method.id);
        if (new_method == nullptr) {
            delta.methods[old_method.id] = MethodChange::Removed;
        } else if (!same_signature(old_method, *new_method)) {
            delta.methods[old_method.id] = MethodChange::SignatureChanged;
        } else if (!same_domains(old_method, *new_method)) {
            delta.methods[old_method.id] = MethodChange::DomainChanged;
        } else {
            delta.methods[old_method.id] = MethodChange::Unchanged;
        }
    }
    for (const auto& new_method : new_spec.methods) {
        if (old_spec.find_method(new_method.id) == nullptr) {
            delta.methods[new_method.id] = MethodChange::Added;
        }
    }
    delta.model_changed = !same_model(old_spec, new_spec);
    return delta;
}

const char* to_string(ReplayDecision d) noexcept {
    switch (d) {
        case ReplayDecision::StillValid: return "still-valid";
        case ReplayDecision::Regenerate: return "regenerate";
        case ReplayDecision::Obsolete: return "obsolete";
    }
    return "?";
}

ReplayDecision classify_case(const driver::TestCase& test_case,
                             const SpecDelta& delta) {
    bool needs_regeneration = false;
    for (const auto& call : test_case.calls) {
        switch (delta.change_of(call.method_id)) {
            case MethodChange::Removed:
                return ReplayDecision::Obsolete;
            case MethodChange::SignatureChanged:
            case MethodChange::DomainChanged:
                needs_regeneration = true;
                break;
            case MethodChange::Unchanged:
            case MethodChange::Added:
                break;
        }
    }
    return needs_regeneration ? ReplayDecision::Regenerate
                              : ReplayDecision::StillValid;
}

ReplayPlan replan_suite(const driver::TestSuite& frozen, const SpecDelta& delta) {
    ReplayPlan out;
    out.still_valid.class_name = frozen.class_name;
    out.still_valid.seed = frozen.seed;
    out.still_valid.model_nodes = frozen.model_nodes;
    out.still_valid.model_links = frozen.model_links;
    out.still_valid.transactions_enumerated = frozen.transactions_enumerated;

    for (const driver::TestCase& tc : frozen.cases) {
        switch (classify_case(tc, delta)) {
            case ReplayDecision::StillValid:
                out.still_valid.cases.push_back(tc);
                break;
            case ReplayDecision::Regenerate:
                out.regenerate.push_back(tc);
                break;
            case ReplayDecision::Obsolete:
                out.obsolete.push_back(tc);
                break;
        }
    }
    return out;
}

}  // namespace stc::history
