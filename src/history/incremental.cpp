#include "stc/history/incremental.h"

#include <istream>
#include <ostream>

#include "stc/support/error.h"
#include "stc/support/strings.h"

namespace stc::history {

const char* to_string(ReuseDecision d) noexcept {
    switch (d) {
        case ReuseDecision::ReusedNotRerun: return "reused";
        case ReuseDecision::Retest: return "retest";
    }
    return "?";
}

IncrementalPlanner::IncrementalPlanner(tspec::ComponentSpec subclass_spec)
    : spec_(std::move(subclass_spec)) {}

TransactionClassification IncrementalPlanner::classify(
    const std::vector<std::string>& method_ids) const {
    TransactionClassification out;
    for (const std::string& mid : method_ids) {
        const tspec::MethodSpec* m = spec_.find_method(mid);
        if (m == nullptr) {
            throw SpecError("transaction references unknown method id " + mid);
        }
        // Constructors and destructors are not part of the reuse decision
        // (§3.4.2: "except for the constructor and destructor methods,
        // which for this reason are not part of a test case").
        if (m->is_constructor() || m->is_destructor()) continue;
        if (m->category == tspec::MethodCategory::New ||
            m->category == tspec::MethodCategory::Redefined) {
            out.triggering_methods.push_back(mid);
        }
    }
    out.decision = out.triggering_methods.empty() ? ReuseDecision::ReusedNotRerun
                                                  : ReuseDecision::Retest;
    return out;
}

IncrementalPlan IncrementalPlanner::plan(const driver::TestSuite& full_suite) const {
    IncrementalPlan out;
    out.incremental.class_name = full_suite.class_name;
    out.incremental.seed = full_suite.seed;
    out.incremental.model_nodes = full_suite.model_nodes;
    out.incremental.model_links = full_suite.model_links;
    out.incremental.transactions_enumerated = full_suite.transactions_enumerated;

    for (const driver::TestCase& tc : full_suite.cases) {
        std::vector<std::string> mids;
        mids.reserve(tc.calls.size());
        for (const auto& call : tc.calls) mids.push_back(call.method_id);

        const auto cls = classify(mids);
        if (cls.decision == ReuseDecision::Retest) {
            out.incremental.cases.push_back(tc);
        } else {
            out.reused.push_back(tc);
        }
    }
    return out;
}

driver::TestSuite adopt_parent_suite(const driver::TestSuite& parent_suite,
                                     const tspec::ComponentSpec& child_spec) {
    driver::TestSuite out;
    out.class_name = child_spec.class_name;
    out.seed = parent_suite.seed;
    out.model_nodes = parent_suite.model_nodes;
    out.model_links = parent_suite.model_links;
    out.transactions_enumerated = parent_suite.transactions_enumerated;

    // Child constructors by arity, destructor by category.
    auto child_ctor_for = [&child_spec](std::size_t arity) -> const tspec::MethodSpec* {
        for (const auto& m : child_spec.methods) {
            if (m.is_constructor() && m.parameters.size() == arity) return &m;
        }
        return nullptr;
    };
    const tspec::MethodSpec* child_dtor = nullptr;
    for (const auto& m : child_spec.methods) {
        if (m.is_destructor()) child_dtor = &m;
    }

    std::size_t next_id = 0;
    for (const driver::TestCase& parent_case : parent_suite.cases) {
        driver::TestCase adopted = parent_case;
        adopted.id = "A" + std::to_string(next_id);
        bool adoptable = true;

        for (auto& call : adopted.calls) {
            if (call.is_constructor) {
                const tspec::MethodSpec* ctor = child_ctor_for(call.arguments.size());
                if (ctor == nullptr) {
                    adoptable = false;
                    break;
                }
                call.method_id = ctor->id;
                call.method_name = ctor->name;
                continue;
            }
            if (call.is_destructor) {
                if (child_dtor == nullptr) {
                    adoptable = false;
                    break;
                }
                call.method_id = child_dtor->id;
                call.method_name = child_dtor->name;
                continue;
            }
            // Ordinary calls must be inherited unmodified in the child.
            const tspec::MethodSpec* m = child_spec.find_method_by_name(call.method_name);
            if (m == nullptr ||
                m->category != tspec::MethodCategory::Inherited ||
                m->parameters.size() != call.arguments.size()) {
                adoptable = false;
                break;
            }
            call.method_id = m->id;
        }

        if (adoptable) {
            ++next_id;
            out.cases.push_back(std::move(adopted));
        }
    }
    return out;
}

std::vector<tspec::SpecDiagnostic> validate_hierarchy(
    const tspec::ComponentSpec& parent, const tspec::ComponentSpec& child) {
    std::vector<tspec::SpecDiagnostic> out;

    if (child.superclass != parent.class_name) {
        out.push_back({child.class_name,
                       "superclass is '" + child.superclass + "', expected '" +
                           parent.class_name + "' (single inheritance assumed)"});
    }

    for (const auto& m : child.methods) {
        if (m.is_constructor() || m.is_destructor()) continue;
        const tspec::MethodSpec* pm = parent.find_method_by_name(m.name);

        switch (m.category) {
            case tspec::MethodCategory::Inherited:
            case tspec::MethodCategory::Redefined: {
                if (pm == nullptr) {
                    out.push_back({m.id, "marked " +
                                             std::string(to_string(m.category)) +
                                             " but parent has no method '" + m.name +
                                             "'"});
                    break;
                }
                // Constraint (ii): a modified method keeps the parent's
                // argument list.
                if (pm->parameters.size() != m.parameters.size()) {
                    out.push_back({m.id, "redefinition changes the signature of '" +
                                             m.name + "' (" +
                                             std::to_string(pm->parameters.size()) +
                                             " -> " +
                                             std::to_string(m.parameters.size()) +
                                             " parameters)"});
                }
                break;
            }
            case tspec::MethodCategory::New: {
                if (pm != nullptr) {
                    out.push_back({m.id, "marked new but parent already defines '" +
                                             m.name + "'"});
                }
                break;
            }
            default:
                break;
        }
    }
    return out;
}

TestHistory TestHistory::from_suite(const driver::TestSuite& suite,
                                    const IncrementalPlanner* planner) {
    TestHistory out;
    for (const auto& tc : suite.cases) {
        HistoryEntry e;
        e.case_id = tc.id;
        e.transaction_text = tc.transaction_text;
        for (const auto& call : tc.calls) e.method_ids.push_back(call.method_id);
        if (planner != nullptr) {
            e.decision = planner->classify(e.method_ids).decision;
        }
        out.add(std::move(e));
    }
    return out;
}

void TestHistory::add(HistoryEntry entry) { entries_.push_back(std::move(entry)); }

const HistoryEntry* TestHistory::find(const std::string& case_id) const {
    for (const auto& e : entries_) {
        if (e.case_id == case_id) return &e;
    }
    return nullptr;
}

void TestHistory::save(std::ostream& os) const {
    for (const auto& e : entries_) {
        os << e.case_id << '|' << e.transaction_text << '|'
           << support::join(e.method_ids, ",") << '|' << to_string(e.decision) << '\n';
    }
}

TestHistory TestHistory::load(std::istream& is) {
    TestHistory out;
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (support::trim(line).empty()) continue;
        const auto fields = support::split(line, '|');
        if (fields.size() != 4) {
            throw Error("test history line " + std::to_string(lineno) +
                        ": expected 4 '|' separated fields");
        }
        HistoryEntry e;
        e.case_id = fields[0];
        e.transaction_text = fields[1];
        if (!fields[2].empty()) e.method_ids = support::split(fields[2], ',');
        if (fields[3] == "reused") {
            e.decision = ReuseDecision::ReusedNotRerun;
        } else if (fields[3] == "retest") {
            e.decision = ReuseDecision::Retest;
        } else {
            throw Error("test history line " + std::to_string(lineno) +
                        ": unknown decision '" + fields[3] + "'");
        }
        out.add(std::move(e));
    }
    return out;
}

}  // namespace stc::history
