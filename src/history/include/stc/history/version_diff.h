// Maintenance-time test reuse: diffing two *releases* of the same
// component's t-spec.
//
// The paper applies Harrold et al.'s incremental technique along the
// inheritance axis (§3.4.2); the identical bookkeeping answers the
// maintenance question its Table 3 discussion raises ("a new release of
// the library substitutes the old one"): which frozen test cases are
// still valid against the new release, which must be regenerated
// (signatures or value domains changed), and which are obsolete
// (methods removed).  The paper's own assumption applies: "specification
// changes imply that the tester updates assertions and t-spec" — the
// diff works on the two t-specs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "stc/driver/test_case.h"
#include "stc/tspec/model.h"

namespace stc::history {

/// How one method changed between releases.
enum class MethodChange {
    Unchanged,
    SignatureChanged,  ///< name / parameter count / parameter types differ
    DomainChanged,     ///< same signature, but a value domain was re-declared
    Added,             ///< only in the new release
    Removed,           ///< only in the old release
};

[[nodiscard]] const char* to_string(MethodChange change) noexcept;

/// Spec-level delta between two releases of the same class.
struct SpecDelta {
    std::map<std::string, MethodChange> methods;  ///< by method id
    bool model_changed = false;  ///< TFM nodes/edges differ

    [[nodiscard]] MethodChange change_of(const std::string& method_id) const;
    [[nodiscard]] bool any_changes() const noexcept;
};

/// Compare two t-specs of the same class.  Throws stc::SpecError when
/// the class names differ (that is not a release, it is a different
/// component).
[[nodiscard]] SpecDelta diff_specs(const tspec::ComponentSpec& old_spec,
                                   const tspec::ComponentSpec& new_spec);

/// What to do with a frozen test case against the new release.
enum class ReplayDecision {
    StillValid,  ///< touches only unchanged methods: rerun as-is
    Regenerate,  ///< touches changed signatures/domains: values are stale
    Obsolete,    ///< touches removed methods: drop
};

[[nodiscard]] const char* to_string(ReplayDecision d) noexcept;

/// Partition of a frozen suite under a release delta.
struct ReplayPlan {
    driver::TestSuite still_valid;             ///< rerunnable unchanged
    std::vector<driver::TestCase> regenerate;  ///< transactions to regenerate
    std::vector<driver::TestCase> obsolete;    ///< dropped

    [[nodiscard]] std::size_t reusable() const noexcept {
        return still_valid.cases.size();
    }
};

[[nodiscard]] ReplayDecision classify_case(const driver::TestCase& test_case,
                                           const SpecDelta& delta);

[[nodiscard]] ReplayPlan replan_suite(const driver::TestSuite& frozen,
                                      const SpecDelta& delta);

}  // namespace stc::history
