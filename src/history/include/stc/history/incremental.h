// Hierarchical incremental testing (§3.4.2).
//
// Harrold et al.'s technique associates each test case with the feature
// it tests and incrementally updates a parent's testing history for a
// subclass.  The paper adapts it: a test case is associated with a
// *transaction*.  A subclass transaction composed only of methods
// inherited without modification (constructors and destructors excluded)
// keeps its parent test case and is NOT rerun; transactions containing
// new or redefined methods enter the subclass's test set — reusing the
// parent's test case when the specification did not change, or freshly
// generated for new methods.
//
// Table 3 of the paper demonstrates the risk of this economy: faults
// later introduced into the base class can survive under the subclass's
// incremental suite.  The planner here is what the Table 3 bench uses to
// derive that incremental suite.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stc/driver/test_case.h"
#include "stc/tspec/model.h"

namespace stc::history {

/// What to do with a subclass transaction's test case.
enum class ReuseDecision {
    ReusedNotRerun,  ///< all methods inherited unmodified: keep parent's case
    Retest,          ///< contains new/redefined methods: in the subclass set
};

[[nodiscard]] const char* to_string(ReuseDecision d) noexcept;

struct TransactionClassification {
    ReuseDecision decision = ReuseDecision::ReusedNotRerun;
    /// The new/redefined method ids that forced a Retest (empty when
    /// ReusedNotRerun).
    std::vector<std::string> triggering_methods;
};

/// Partition of a full suite per the incremental technique.
struct IncrementalPlan {
    driver::TestSuite incremental;           ///< test cases that must run
    std::vector<driver::TestCase> reused;    ///< parent-covered, not rerun

    [[nodiscard]] std::size_t new_cases() const noexcept {
        return incremental.cases.size();
    }
    [[nodiscard]] std::size_t reused_cases() const noexcept { return reused.size(); }
};

/// Classifies subclass transactions using the method categories embedded
/// in the subclass's t-spec (constructor/destructor excluded, per §3.4.2).
class IncrementalPlanner {
public:
    explicit IncrementalPlanner(tspec::ComponentSpec subclass_spec);

    [[nodiscard]] TransactionClassification classify(
        const std::vector<std::string>& method_ids) const;

    [[nodiscard]] IncrementalPlan plan(const driver::TestSuite& full_suite) const;

private:
    tspec::ComponentSpec spec_;  // owned: callers may pass temporaries
};

/// Adopt a parent class's test suite for a subclass (§3.4.2's reuse
/// direction): test cases whose methods are all inherited unmodified are
/// rewritten to run against the subclass — the constructor/destructor
/// calls (which "are not part of a test case") are swapped for the
/// subclass's same-arity ones, everything else is kept verbatim.
///
/// Rerunning the adopted suite is what the paper's conclusion asks for:
/// "the need to retest inherited features in the context of a subclass,
/// even if they don't interact with modified or newly introduced
/// features" — the countermeasure to the Table 3 gap.  Cases that cannot
/// be adopted (methods not inherited, no matching constructor) are
/// dropped; the returned suite contains only runnable cases.
[[nodiscard]] driver::TestSuite adopt_parent_suite(
    const driver::TestSuite& parent_suite, const tspec::ComponentSpec& child_spec);

/// Harrold-style constraints on the inheritance relation (§3.4.2): single
/// inheritance, redefinitions keep the parent's signature, attributes
/// are private to the class.  Returns violations; empty == conforming.
[[nodiscard]] std::vector<tspec::SpecDiagnostic> validate_hierarchy(
    const tspec::ComponentSpec& parent, const tspec::ComponentSpec& child);

/// Persistent testing history: one line per test case recording the
/// transaction it exercises and the reuse decision (Harrold et al.'s
/// testing history, keyed by transaction per the paper's adaptation).
struct HistoryEntry {
    std::string case_id;
    std::string transaction_text;
    std::vector<std::string> method_ids;
    ReuseDecision decision = ReuseDecision::Retest;
};

class TestHistory {
public:
    TestHistory() = default;

    /// Build from a suite; decisions computed by `planner` when given,
    /// otherwise every entry is Retest (a fresh class with no parent).
    static TestHistory from_suite(const driver::TestSuite& suite,
                                  const IncrementalPlanner* planner = nullptr);

    void add(HistoryEntry entry);
    [[nodiscard]] const std::vector<HistoryEntry>& entries() const noexcept {
        return entries_;
    }
    [[nodiscard]] const HistoryEntry* find(const std::string& case_id) const;

    /// Text serialization (one record per line, '|' separated).
    void save(std::ostream& os) const;
    static TestHistory load(std::istream& is);

private:
    std::vector<HistoryEntry> entries_;
};

}  // namespace stc::history
