#include "stc/mutation/engine.h"

#include <chrono>

namespace stc::mutation {

const char* to_string(MutantFate fate) noexcept {
    switch (fate) {
        case MutantFate::Killed: return "killed";
        case MutantFate::Alive: return "alive";
        case MutantFate::EquivalentPresumed: return "equivalent";
        case MutantFate::NotCovered: return "not-covered";
    }
    return "?";
}

std::optional<MutantFate> fate_from_string(std::string_view text) noexcept {
    for (const MutantFate fate :
         {MutantFate::Killed, MutantFate::Alive, MutantFate::EquivalentPresumed,
          MutantFate::NotCovered}) {
        if (text == to_string(fate)) return fate;
    }
    return std::nullopt;
}

std::size_t MutationRun::killed() const noexcept {
    std::size_t n = 0;
    for (const auto& o : outcomes) n += o.fate == MutantFate::Killed ? 1 : 0;
    return n;
}

std::size_t MutationRun::equivalent() const noexcept {
    std::size_t n = 0;
    for (const auto& o : outcomes) {
        n += o.fate == MutantFate::EquivalentPresumed ? 1 : 0;
    }
    return n;
}

std::size_t MutationRun::kills_by(oracle::KillReason reason) const noexcept {
    std::size_t n = 0;
    for (const auto& o : outcomes) {
        n += (o.fate == MutantFate::Killed && o.reason == reason) ? 1 : 0;
    }
    return n;
}

std::size_t MutationRun::kills_model_only() const noexcept {
    std::size_t n = 0;
    for (const auto& o : outcomes) {
        n += (o.fate == MutantFate::Killed && o.model_only) ? 1 : 0;
    }
    return n;
}

std::size_t MutationRun::kills_synthesized() const noexcept {
    std::size_t n = 0;
    for (const auto& o : outcomes) {
        n += (o.fate == MutantFate::Killed && o.synthesized) ? 1 : 0;
    }
    return n;
}

std::size_t MutationRun::not_covered() const noexcept {
    std::size_t n = 0;
    for (const auto& o : outcomes) n += o.fate == MutantFate::NotCovered ? 1 : 0;
    return n;
}

double MutationRun::score() const noexcept {
    const std::size_t denom = total() - equivalent();
    if (denom == 0) return 1.0;
    return static_cast<double>(killed()) / static_cast<double>(denom);
}

double MutationRun::covered_score() const noexcept {
    const std::size_t denom = total() - equivalent() - not_covered();
    if (denom == 0) return 1.0;
    return static_cast<double>(killed()) / static_cast<double>(denom);
}

MutationEngine::MutationEngine(const reflect::Registry& bindings, EngineOptions options)
    : bindings_(bindings), options_(std::move(options)) {}

MutationRun MutationEngine::run(const driver::TestSuite& suite,
                                const std::vector<Mutant>& mutants,
                                const driver::TestSuite* probe_suite) const {
    const driver::TestRunner runner(bindings_, options_.runner);

    // Probe runs observe every call, maximizing output-diff sensitivity —
    // the "try hard before declaring equivalent" role of the paper's
    // manual analysis.
    driver::RunnerOptions probe_opts = options_.runner;
    probe_opts.observe_each_call = true;
    const driver::TestRunner probe_runner(bindings_, probe_opts);

    SuiteExecutor run_probe;
    if (probe_suite != nullptr) {
        run_probe = [&probe_runner, probe_suite] {
            return probe_runner.run(*probe_suite);
        };
    }
    return run_with([&runner, &suite] { return runner.run(suite); }, mutants,
                    run_probe);
}

MutationRun MutationEngine::run_with(const SuiteExecutor& run_suite,
                                     const std::vector<Mutant>& mutants,
                                     const SuiteExecutor& run_probe) const {
    if (!run_suite) throw ContractError("mutation engine needs a suite executor");

    MutationRun out;

    // Baseline ("original program", outputs validated before experiments).
    out.golden = oracle::GoldenRecord::from(run_suite());
    out.baseline_clean = out.golden.all_passed();

    oracle::GoldenRecord probe_golden;
    if (run_probe) probe_golden = oracle::GoldenRecord::from(run_probe());

    out.outcomes.reserve(mutants.size());
    for (const Mutant& mutant : mutants) {
        out.outcomes.push_back(evaluate_mutant(mutant, run_suite, out.golden,
                                               run_probe, probe_golden, options_));
    }

    return out;
}

MutantOutcome evaluate_mutant(const Mutant& mutant,
                              const MutationEngine::SuiteExecutor& run_suite,
                              const oracle::GoldenRecord& golden,
                              const MutationEngine::SuiteExecutor& run_probe,
                              const oracle::GoldenRecord& probe_golden,
                              const EngineOptions& options) {
    auto& controller = MutationController::instance();

    using ObsClock = std::chrono::steady_clock;
    const bool metered = options.obs.metrics.enabled();
    const ObsClock::time_point eval_start =
        metered ? ObsClock::now() : ObsClock::time_point{};
    const obs::SpanScope eval_span(options.obs.tracer, "mutant-evaluation",
                                   mutant.id());
    const auto meter_fate = [&](const MutantOutcome& outcome) {
        if (!metered) return;
        options.obs.metrics.add(std::string("mutation.fate.") +
                                to_string(outcome.fate));
        options.obs.metrics.observe_ms(
            "mutation.eval_ms",
            std::chrono::duration<double, std::milli>(ObsClock::now() -
                                                      eval_start)
                .count());
    };

    MutantOutcome outcome;
    outcome.mutant = &mutant;

    {
        const MutantActivation activation(mutant);
        const driver::SuiteResult mutated = run_suite();
        outcome.hit_by_suite = controller.hit();
        // Both legs of the differential classification come from the
        // SAME mutated run — the model is a passive side channel, so
        // "what would the assertion-only oracle have said" needs no
        // second execution.
        const oracle::DifferentialKill differential =
            oracle::classify_suite_differential(golden, mutated, options.oracle,
                                                options.manual_oracle,
                                                options.obs);
        outcome.reason = differential.with_model;
        outcome.model_only = differential.model_only();
    }

    if (outcome.reason != oracle::KillReason::None) {
        outcome.fate = MutantFate::Killed;
        meter_fate(outcome);
        return outcome;
    }

    // Survivor: equivalence probing.
    if (!run_probe) {
        outcome.fate =
            outcome.hit_by_suite ? MutantFate::Alive : MutantFate::NotCovered;
        meter_fate(outcome);
        return outcome;
    }

    bool probe_hit = false;
    oracle::KillReason probe_reason = oracle::KillReason::None;
    {
        const MutantActivation activation(mutant);
        const driver::SuiteResult probed = run_probe();
        probe_hit = controller.hit();
        // The probe always uses the full oracle: equivalence is about
        // behaviour, not about which detector the evaluated suite used.
        probe_reason = oracle::classify_suite(probe_golden, probed, {}, {},
                                              options.obs);
    }

    if (probe_reason != oracle::KillReason::None) {
        outcome.fate = MutantFate::Alive;  // killable, just not by `suite`
        outcome.killed_by_probe = true;
    } else if (probe_hit) {
        outcome.fate = MutantFate::EquivalentPresumed;
    } else {
        outcome.fate = MutantFate::NotCovered;
    }
    meter_fate(outcome);
    return outcome;
}

}  // namespace stc::mutation
