#include "stc/mutation/frame.h"

namespace stc::mutation {

const MutFrame::Slot& MutFrame::find_slot(std::string_view name) const {
    for (std::size_t i = 0; i < count_; ++i) {
        if (name == slots_[i].name) return slots_[i];
    }
    throw ContractError("instrumentation bug: variable '" + std::string(name) +
                        "' is not bound in frame of " + descriptor_.qualified_name());
}

std::int64_t MutFrame::read_int(std::string_view name) const {
    const Slot& s = find_slot(name);
    switch (s.kind) {
        case SlotKind::I8: return *static_cast<const std::int8_t*>(s.address);
        case SlotKind::I16: return *static_cast<const std::int16_t*>(s.address);
        case SlotKind::I32: return *static_cast<const std::int32_t*>(s.address);
        case SlotKind::I64: return *static_cast<const std::int64_t*>(s.address);
        case SlotKind::U8: return *static_cast<const std::uint8_t*>(s.address);
        case SlotKind::U16: return *static_cast<const std::uint16_t*>(s.address);
        case SlotKind::U32: return *static_cast<const std::uint32_t*>(s.address);
        case SlotKind::U64:
            return static_cast<std::int64_t>(
                *static_cast<const std::uint64_t*>(s.address));
        default:
            throw ContractError("variable '" + std::string(name) +
                                "' is not integral in " + descriptor_.qualified_name());
    }
}

double MutFrame::read_real(std::string_view name) const {
    const Slot& s = find_slot(name);
    switch (s.kind) {
        case SlotKind::F32: return *static_cast<const float*>(s.address);
        case SlotKind::F64: return *static_cast<const double*>(s.address);
        default:
            throw ContractError("variable '" + std::string(name) +
                                "' is not floating point in " +
                                descriptor_.qualified_name());
    }
}

void* MutFrame::read_ptr(std::string_view name) const {
    const Slot& s = find_slot(name);
    if (s.kind != SlotKind::Ptr) {
        throw ContractError("variable '" + std::string(name) + "' is not a pointer in " +
                            descriptor_.qualified_name());
    }
    return *static_cast<void* const*>(s.address);
}

}  // namespace stc::mutation
