#include "stc/mutation/prune.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <sstream>

namespace stc::mutation {

namespace {

/// Identity-exact encoding of one argument value.  Pointer/object
/// arguments encode their *address*: two prefixes only share a
/// checkpoint when they pass the very same objects, which is the only
/// sharing that is sound without knowing the component's semantics
/// (value-equal but distinct elements could later be distinguished by
/// identity, e.g. CObList::Find).
void encode_value(std::ostringstream& os, const domain::Value& v) {
    switch (v.kind()) {
        case domain::ValueKind::Empty: os << "e;"; break;
        case domain::ValueKind::Int: os << "i" << v.as_int() << ";"; break;
        case domain::ValueKind::Real: os << "r" << v.as_number() << ";"; break;
        case domain::ValueKind::String: os << "s" << v.as_string() << ";"; break;
        case domain::ValueKind::Pointer: os << "p" << v.as_pointer() << ";"; break;
        case domain::ValueKind::Object:
            os << "o" << v.as_object().ptr << ";";
            break;
    }
}

/// Signature of a case's birth prefix: entry state plus calls[0..depth).
/// Cases with equal signatures execute identically up to body call
/// `depth`, so a checkpoint captured from one serves them all.
std::string prefix_signature(const driver::TestCase& tc, std::size_t depth) {
    std::ostringstream os;
    os << tc.entry_state << '\x1f';
    for (std::size_t j = 0; j < depth && j < tc.calls.size(); ++j) {
        const driver::MethodCall& call = tc.calls[j];
        os << call.method_name << '(';
        for (const domain::Value& v : call.arguments) encode_value(os, v);
        os << ')' << (call.expect_rejection ? '!' : '.')
           << (call.is_destructor ? '~' : '.') << '\x1f';
    }
    return os.str();
}

std::vector<CasePlan> build_ladders(
    const driver::TestRunner& runner, const reflect::ClassBinding& binding,
    const driver::TestSuite& suite, const CoverageIndex& coverage,
    const PrunePlanOptions& options,
    std::map<std::string, driver::CaseCheckpoint>& cache) {
    std::vector<CasePlan> plans(suite.cases.size());
    for (std::size_t i = 0; i < suite.cases.size(); ++i) {
        const driver::TestCase& tc = suite.cases[i];
        const CoverageIndex::CaseCoverage* cc = coverage.find(tc.id);
        if (cc == nullptr || tc.calls.size() < 2) continue;

        // Candidate boundaries: the case's distinct first-hit call
        // indices.  A checkpoint anywhere else would either be unusable
        // (past every first hit) or dominated by one of these.
        std::set<std::size_t> bounds;
        const std::size_t deepest = tc.calls.size() - 1;
        for (const auto& [key, h] : cc->first_hit) {
            if (h >= options.min_resume_call && h <= deepest) bounds.insert(h);
        }

        std::vector<driver::CaseCheckpoint>& ladder = plans[i].checkpoints;
        std::vector<std::size_t> need;
        std::size_t kept = 0;
        for (const std::size_t k : bounds) {
            if (kept >= options.max_checkpoints_per_case) break;
            ++kept;
            const auto it = cache.find(prefix_signature(tc, k));
            if (it != cache.end()) {
                driver::CaseCheckpoint shared = it->second;
                shared.resume_call = k;  // same prefix, this case's depth
                ladder.push_back(std::move(shared));
            } else {
                need.push_back(k);
            }
        }
        if (!need.empty()) {
            for (driver::CaseCheckpoint& cp :
                 runner.capture_case(binding, tc, need)) {
                cache.emplace(prefix_signature(tc, cp.resume_call), cp);
                ladder.push_back(std::move(cp));
            }
        }
        std::sort(ladder.begin(), ladder.end(),
                  [](const driver::CaseCheckpoint& a,
                     const driver::CaseCheckpoint& b) {
                      return a.resume_call < b.resume_call;
                  });
    }
    return plans;
}

/// Run one covering case, resumed from the deepest usable checkpoint.
driver::TestResult run_one(const driver::TestRunner& runner,
                           const reflect::ClassBinding& binding,
                           const driver::TestCase& tc,
                           const CoverageIndex& coverage,
                           const std::vector<CasePlan>& plans, std::size_t index,
                           const Mutant& mutant, PruneStats& stats) {
    ++stats.executed_pairs;
    const driver::CaseCheckpoint* best = nullptr;
    if (index < plans.size()) {
        // Sound resume depth: at or before the first call that consults
        // the mutant's site (execution is un-mutated until then).
        const std::optional<std::size_t> bound = coverage.first_hit(tc.id, mutant);
        if (bound.has_value()) {
            for (const driver::CaseCheckpoint& cp : plans[index].checkpoints) {
                if (cp.resume_call > *bound) break;
                best = &cp;
            }
        }
    }
    if (best != nullptr) {
        try {
            driver::TestResult r = runner.run_case_from(binding, tc, *best);
            ++stats.memoized_pairs;
            stats.memoized_calls += best->resume_call - 1;
            return r;
        } catch (const ReflectError&) {
            // Clone refused at evaluation time: full run is always sound.
        }
    }
    return runner.run_case(binding, tc);
}

std::vector<std::size_t> covering_indices(const CoverageIndex& coverage,
                                          const driver::TestSuite& suite,
                                          const Mutant& mutant) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < suite.cases.size(); ++i) {
        if (coverage.covers(suite.cases[i].id, mutant)) out.push_back(i);
    }
    return out;
}

}  // namespace

PrunePlan build_prune_plan(const driver::TestRunner& runner,
                           const reflect::ClassBinding& binding,
                           const driver::TestSuite& suite, CoverageIndex coverage,
                           const driver::TestRunner* probe_runner,
                           const driver::TestSuite* probe_suite,
                           CoverageIndex probe_coverage,
                           const PrunePlanOptions& options) {
    PrunePlan plan;
    plan.coverage = std::move(coverage);
    plan.probe_coverage = std::move(probe_coverage);
    plan.case_plans.resize(suite.cases.size());
    if (probe_suite != nullptr) {
        plan.probe_case_plans.resize(probe_suite->cases.size());
    }
    if (!options.memoize || !binding.has_cloner()) return plan;

    {
        std::map<std::string, driver::CaseCheckpoint> cache;
        plan.case_plans =
            build_ladders(runner, binding, suite, plan.coverage, options, cache);
    }
    if (probe_suite != nullptr && probe_runner != nullptr) {
        std::map<std::string, driver::CaseCheckpoint> cache;
        plan.probe_case_plans = build_ladders(*probe_runner, binding, *probe_suite,
                                              plan.probe_coverage, options, cache);
    }
    return plan;
}

MutantOutcome evaluate_mutant_pruned(
    const Mutant& mutant, const driver::TestRunner& runner,
    const reflect::ClassBinding& binding, const driver::TestSuite& suite,
    const oracle::GoldenRecord& golden, const driver::TestRunner* probe_runner,
    const driver::TestSuite* probe_suite,
    const oracle::GoldenRecord& probe_golden, const PrunePlan& plan,
    const EngineOptions& options, PruneStats* stats) {
    if (options.manual_oracle) {
        throw ContractError(
            "pruned evaluation cannot honour a manual oracle; run unpruned");
    }
    auto& controller = MutationController::instance();

    using ObsClock = std::chrono::steady_clock;
    const bool metered = options.obs.metrics.enabled();
    const ObsClock::time_point eval_start =
        metered ? ObsClock::now() : ObsClock::time_point{};
    const obs::SpanScope eval_span(options.obs.tracer, "mutant-evaluation",
                                   mutant.id());
    const auto meter_fate = [&](const MutantOutcome& outcome) {
        if (!metered) return;
        options.obs.metrics.add(std::string("mutation.fate.") +
                                to_string(outcome.fate));
        options.obs.metrics.observe_ms(
            "mutation.eval_ms",
            std::chrono::duration<double, std::milli>(ObsClock::now() -
                                                      eval_start)
                .count());
    };

    PruneStats local;
    MutantOutcome outcome;
    outcome.mutant = &mutant;

    const std::vector<std::size_t> covering =
        covering_indices(plan.coverage, suite, mutant);
    local.pruned_pairs +=
        static_cast<std::uint64_t>(suite.cases.size() - covering.size());

    if (!covering.empty()) {
        const MutantActivation activation(mutant);
        driver::SuiteResult mutated;
        mutated.results.reserve(covering.size());
        for (const std::size_t index : covering) {
            mutated.results.push_back(run_one(runner, binding,
                                              suite.cases[index], plan.coverage,
                                              plan.case_plans, index, mutant,
                                              local));
        }
        outcome.hit_by_suite = controller.hit();
        const oracle::DifferentialKill differential =
            oracle::classify_suite_differential(golden, mutated, options.oracle,
                                                {}, options.obs);
        outcome.reason = differential.with_model;
        outcome.model_only = differential.model_only();
    }

    const auto finish = [&](MutantFate fate) {
        outcome.fate = fate;
        meter_fate(outcome);
        if (stats != nullptr) *stats += local;
        return outcome;
    };

    if (outcome.reason != oracle::KillReason::None) {
        return finish(MutantFate::Killed);
    }

    if (probe_runner == nullptr || probe_suite == nullptr) {
        return finish(outcome.hit_by_suite ? MutantFate::Alive
                                           : MutantFate::NotCovered);
    }

    const std::vector<std::size_t> probe_covering =
        covering_indices(plan.probe_coverage, *probe_suite, mutant);
    local.pruned_pairs += static_cast<std::uint64_t>(probe_suite->cases.size() -
                                                     probe_covering.size());

    bool probe_hit = false;
    oracle::KillReason probe_reason = oracle::KillReason::None;
    if (!probe_covering.empty()) {
        const MutantActivation activation(mutant);
        driver::SuiteResult probed;
        probed.results.reserve(probe_covering.size());
        for (const std::size_t index : probe_covering) {
            probed.results.push_back(
                run_one(*probe_runner, binding, probe_suite->cases[index],
                        plan.probe_coverage, plan.probe_case_plans, index,
                        mutant, local));
        }
        probe_hit = controller.hit();
        probe_reason =
            oracle::classify_suite(probe_golden, probed, {}, {}, options.obs);
    }

    if (probe_reason != oracle::KillReason::None) {
        outcome.killed_by_probe = true;
        return finish(MutantFate::Alive);  // killable, just not by `suite`
    }
    return finish(probe_hit ? MutantFate::EquivalentPresumed
                            : MutantFate::NotCovered);
}

}  // namespace stc::mutation
