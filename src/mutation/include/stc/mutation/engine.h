// Mutation-analysis engine.
//
// Reproduces the experimental procedure of §4: run the generated test
// suite against the original component to record its (hand-validated in
// the paper, golden here) outputs, then activate each mutant in turn and
// re-run the suite.  A mutant is killed when
//   (i)   the run crashed (StructuralFault / CrashSignal),
//   (ii)  an assertion violation was raised that the original did not
//         raise, or
//   (iii) the finished program's output differs from the original's.
//
// Equivalence: undecidable; the paper marked equivalents by manual
// analysis of surviving mutants.  Substitution: surviving mutants are
// re-tried against an optional amplified *probe* suite (more cases per
// transaction, every call observed).  Survivors that the probe also
// fails to kill — although executing the mutated site — are presumed
// equivalent; survivors whose site was never reached are reported as
// not-covered (counted alive, lowering the score honestly).
#pragma once

#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "stc/driver/generator.h"
#include "stc/driver/runner.h"
#include "stc/mutation/controller.h"
#include "stc/mutation/mutant.h"
#include "stc/oracle/oracle.h"

namespace stc::mutation {

/// Final classification of one mutant after the run.
enum class MutantFate {
    Killed,
    Alive,                ///< survived, though probe-covered or probe-killed
    EquivalentPresumed,   ///< survived suite AND probe while being executed
    NotCovered,           ///< the mutated site was never reached by the suite
};

[[nodiscard]] const char* to_string(MutantFate fate) noexcept;

/// Inverse of to_string; std::nullopt for unknown text.  Used by the
/// campaign result store to rehydrate persisted outcomes.
[[nodiscard]] std::optional<MutantFate> fate_from_string(
    std::string_view text) noexcept;

struct MutantOutcome {
    const Mutant* mutant = nullptr;
    MutantFate fate = MutantFate::Alive;
    oracle::KillReason reason = oracle::KillReason::None;  ///< when Killed
    bool hit_by_suite = false;
    bool killed_by_probe = false;  ///< alive on the suite, killable in principle
    /// Killed only because the reference model diverged: the
    /// assertion/crash/output-diff oracle alone would have let this
    /// mutant survive the suite (oracle::DifferentialKill::model_only).
    /// Always false for non-killed fates and for runs without a model
    /// binding, so legacy stores rehydrate unchanged.
    bool model_only = false;
    /// How the sandbox terminated this item, when it did not finish
    /// normally: "crash-signal:<n>", "timeout", "resource-limit" or
    /// "worker-exit:<c>" (stc::sandbox, docs/FORMATS.md §8).  Empty for
    /// every in-process evaluation and for isolated mutants that ran to
    /// completion — so the field never perturbs the determinism
    /// contract between in-process and isolated runs.
    std::string sandbox;
    /// Killed by a test case `stc::kill` synthesized AFTER the campaign
    /// (bounded reachability over the TFM x reference-model product),
    /// not by the generated suite.  Always false for outcomes the
    /// engine itself produces; set only when a kill pass rewrites the
    /// result store, so pre-kill reports are byte-unchanged.
    bool synthesized = false;
};

struct EngineOptions {
    driver::RunnerOptions runner{};
    oracle::OracleConfig oracle{};
    oracle::ManualPredicate manual_oracle{};
    /// Observability: "mutant-evaluation" spans, mutation.fate.<fate>
    /// counters and a mutation.eval_ms latency histogram, plus the
    /// oracle's own instruments.  Disabled by default.  Note: the
    /// campaign scheduler overwrites this (and runner.obs) with its
    /// campaign-level context.
    obs::Context obs{};
};

/// Aggregated result of one mutation-analysis run.
struct MutationRun {
    std::vector<MutantOutcome> outcomes;
    oracle::GoldenRecord golden;
    bool baseline_clean = false;  ///< every baseline case passed

    [[nodiscard]] std::size_t total() const noexcept { return outcomes.size(); }
    [[nodiscard]] std::size_t killed() const noexcept;
    [[nodiscard]] std::size_t equivalent() const noexcept;
    [[nodiscard]] std::size_t not_covered() const noexcept;
    [[nodiscard]] std::size_t kills_by(oracle::KillReason reason) const noexcept;

    /// Mutants the reference model alone killed — the oracle-strength
    /// headline: how much the differential oracle adds over the
    /// assertion/crash/output-diff detectors (docs/GUIDE.md §8).
    [[nodiscard]] std::size_t kills_model_only() const noexcept;

    /// Mutants killed by post-campaign killer synthesis (stc::kill) —
    /// the "raised by synthesis: N" line of the campaign report.
    [[nodiscard]] std::size_t kills_synthesized() const noexcept;

    /// The paper's mutation score: killed / (total - equivalent).
    /// NaN-free: returns 1.0 when no non-equivalent mutants exist.
    ///
    /// Deliberate choice: NotCovered mutants stay IN the denominator —
    /// a suite that never reaches a mutated site has not earned credit
    /// for it, so a run where every mutant is not-covered scores 0, not
    /// 1 (the honest reading of the paper's formula).  Use
    /// covered_score() for the complementary question.
    [[nodiscard]] double score() const noexcept;

    /// Adequacy over the *reached* population only:
    /// killed / (total - equivalent - not_covered).  Separates "the
    /// suite checks too little" (low covered_score) from "the suite
    /// reaches too little" (high not_covered count).  Returns 1.0 when
    /// no reached, non-equivalent mutants exist — e.g. the all-
    /// not-covered run that score() reports as 0.
    [[nodiscard]] double covered_score() const noexcept;
};

class MutationEngine {
public:
    /// Executes one full pass of whatever suite the caller evaluates —
    /// the engine is agnostic to *how* tests run (single-class
    /// driver::TestRunner, interclass::SystemRunner, ...), it only needs
    /// repeatable SuiteResults to compare.
    using SuiteExecutor = std::function<driver::SuiteResult()>;

    MutationEngine(const reflect::Registry& bindings, EngineOptions options = {});

    /// Run mutation analysis of `mutants` against `suite`.  When
    /// `probe_suite` is given it is used for equivalence probing of
    /// survivors (see file comment).
    [[nodiscard]] MutationRun run(const driver::TestSuite& suite,
                                  const std::vector<Mutant>& mutants,
                                  const driver::TestSuite* probe_suite = nullptr) const;

    /// Generic variant: the caller supplies the executors (e.g. an
    /// interclass SystemRunner closure).  `run_probe` may be empty.
    [[nodiscard]] MutationRun run_with(const SuiteExecutor& run_suite,
                                       const std::vector<Mutant>& mutants,
                                       const SuiteExecutor& run_probe = {}) const;

private:
    const reflect::Registry& bindings_;
    EngineOptions options_;
};

/// Single-item executor: classify ONE mutant against precomputed golden
/// baselines.  This is the loop body of MutationEngine::run_with,
/// exposed so the campaign scheduler (src/campaign) can shard items
/// across workers while keeping fates bit-identical to the serial
/// engine.  `run_probe`/`probe_golden` may be empty (no equivalence
/// probing).
///
/// Thread-safety: safe to call concurrently from multiple threads with
/// distinct mutants, because mutant activation and hit tracking are
/// per-thread (MutationController is thread_local).  The executors and
/// `options.manual_oracle` must themselves be safe to invoke
/// concurrently (the stock TestRunner::run is, as long as
/// RunnerOptions::log_path is empty).
[[nodiscard]] MutantOutcome evaluate_mutant(
    const Mutant& mutant, const MutationEngine::SuiteExecutor& run_suite,
    const oracle::GoldenRecord& golden,
    const MutationEngine::SuiteExecutor& run_probe,
    const oracle::GoldenRecord& probe_golden, const EngineOptions& options);

}  // namespace stc::mutation
