// Mutants and the interface-mutation operators of Table 1.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stc/mutation/descriptor.h"

namespace stc::mutation {

/// Interface-mutation operators.  The first five — the "essential"
/// IndVar subset on non-interface variables — are the ones used in the
/// paper's experiments (Table 1, after Vincenzi et al.).  The DirVar
/// group is the complementary set from Delamaro's full interface
/// mutation: the same substitutions applied at uses of *interface*
/// variables (formal parameters); the paper traded it away "to reduce
/// time and cost of the mutation analysis".
enum class Operator {
    IndVarBitNeg,   ///< insert bitwise negation at a non-interface variable use
    IndVarRepGlob,  ///< replace by a member of G(R2) (globals used in R2)
    IndVarRepLoc,   ///< replace by a member of L(R2) (locals of R2)
    IndVarRepExt,   ///< replace by a member of E(R2) (globals not used in R2)
    IndVarRepReq,   ///< replace by a required constant (NULL, MAXINT, ...)
    DirVarBitNeg,   ///< bitwise negation at an interface-variable use
    DirVarRepGlob,  ///< interface variable replaced by G(R2)
    DirVarRepLoc,   ///< interface variable replaced by L(R2)
    DirVarRepExt,   ///< interface variable replaced by E(R2)
    DirVarRepReq,   ///< interface variable replaced by RC
};

/// The paper's essential subset (Table 1).
inline constexpr std::array<Operator, 5> kAllOperators = {
    Operator::IndVarBitNeg, Operator::IndVarRepGlob, Operator::IndVarRepLoc,
    Operator::IndVarRepExt, Operator::IndVarRepReq};

/// The complementary DirVar group.
inline constexpr std::array<Operator, 5> kDirVarOperators = {
    Operator::DirVarBitNeg, Operator::DirVarRepGlob, Operator::DirVarRepLoc,
    Operator::DirVarRepExt, Operator::DirVarRepReq};

/// Full extended set (IndVar + DirVar).
inline constexpr std::array<Operator, 10> kExtendedOperators = {
    Operator::IndVarBitNeg, Operator::IndVarRepGlob, Operator::IndVarRepLoc,
    Operator::IndVarRepExt, Operator::IndVarRepReq,  Operator::DirVarBitNeg,
    Operator::DirVarRepGlob, Operator::DirVarRepLoc, Operator::DirVarRepExt,
    Operator::DirVarRepReq};

/// Operator classification helpers shared by enumeration and the frame.
[[nodiscard]] constexpr bool is_dirvar(Operator op) noexcept {
    return op >= Operator::DirVarBitNeg;
}
[[nodiscard]] constexpr bool is_bitneg(Operator op) noexcept {
    return op == Operator::IndVarBitNeg || op == Operator::DirVarBitNeg;
}
[[nodiscard]] constexpr bool is_repreq(Operator op) noexcept {
    return op == Operator::IndVarRepReq || op == Operator::DirVarRepReq;
}

[[nodiscard]] const char* to_string(Operator op) noexcept;
[[nodiscard]] const char* describe(Operator op) noexcept;

/// A replacement constant for IndVarRepReq.
struct RequiredConstant {
    TypeKey::Kind kind = TypeKey::Kind::Int;
    std::int64_t int_value = 0;   ///< for Int
    double real_value = 0.0;      ///< for Real
    // Pointer constants are always null.
    std::string label;            ///< "NULL", "MAXINT", ...
};

/// The RC set of the paper: NULL for pointers; 0, 1, -1, MAXINT, MININT
/// for integers ("...and so on"); 0.0 and 1.0 for reals.
[[nodiscard]] std::vector<RequiredConstant> required_constants(const TypeKey& type);

/// One mutant: a (site, operator, replacement) triple within a method.
struct Mutant {
    const MethodDescriptor* method = nullptr;
    std::size_t site_index = 0;
    Operator op = Operator::IndVarBitNeg;
    /// For Rep{Glob,Loc,Ext}: name of the replacing variable.
    std::string replacement_var;
    /// For RepReq: the constant.
    std::optional<RequiredConstant> replacement_const;

    /// Stable id, e.g. "CObList::AddHead@s2.IndVarRepLoc.pOldNode".
    [[nodiscard]] std::string id() const;
};

/// Mechanically enumerate every mutant the given operators produce for
/// one method, honoring type compatibility (the paper's hand-seeded
/// mutants were "individually compiled, to assure that all faulty
/// classes compiled cleanly" — type-compatible replacement is the
/// schemata equivalent).
[[nodiscard]] std::vector<Mutant> enumerate_mutants(
    const MethodDescriptor& method,
    const std::vector<Operator>& operators = {kAllOperators.begin(),
                                              kAllOperators.end()});

/// Enumerate across all registered methods of one class.
[[nodiscard]] std::vector<Mutant> enumerate_mutants(
    const DescriptorRegistry& registry, const std::string& class_name,
    const std::vector<Operator>& operators = {kAllOperators.begin(),
                                              kAllOperators.end()});

}  // namespace stc::mutation
