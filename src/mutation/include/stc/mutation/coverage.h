// Coverage-signature index — which mutation sites each test case
// reaches, and at which call.
//
// Recorded during the golden run at zero extra executions: a
// CoverageRecorder implements both the mutation layer's CoverageSink
// (every MutFrame use-site consultation) and the driver's CaseObserver
// (test-case/call boundaries), so one un-mutated pass yields the full
// (test case, mutation site) -> first-hit call index relation.
//
// The index powers the fast campaign tier (stc/mutation/prune.h):
//   * pruning — a (mutant, case) pair whose site the case provably never
//     reaches executes byte-identically to golden and can be skipped;
//   * memoization — the first-hit call index bounds how deep a shared
//     prefix checkpoint may sit while staying fate-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stc/driver/runner.h"
#include "stc/mutation/controller.h"
#include "stc/mutation/mutant.h"

namespace stc::mutation {

/// Coverage relation of one recorded suite run.
class CoverageIndex {
public:
    using SiteKey = std::pair<const MethodDescriptor*, std::size_t>;

    /// Per-case record, in run (= suite) order.
    struct CaseCoverage {
        std::string case_id;
        /// Site -> index of the call during which the site was FIRST
        /// consulted (driver::CaseObserver call-index convention:
        /// construction/entry-state = 0, body call i, wrap-up =
        /// calls.size()).
        std::map<SiteKey, std::size_t> first_hit;
    };

    /// True when `case_id` consults the mutant's site at least once.
    [[nodiscard]] bool covers(const std::string& case_id,
                              const Mutant& mutant) const;

    /// First-hit call index of the mutant's site within `case_id`;
    /// nullopt when the case never reaches the site (or is unknown).
    [[nodiscard]] std::optional<std::size_t> first_hit(
        const std::string& case_id, const Mutant& mutant) const;

    [[nodiscard]] const std::vector<CaseCoverage>& cases() const noexcept {
        return cases_;
    }
    [[nodiscard]] const CaseCoverage* find(const std::string& case_id) const;

    /// Total number of (case, site) pairs recorded — the index size
    /// reported by campaign telemetry.
    [[nodiscard]] std::size_t pair_count() const noexcept;

    /// Order-sensitive digest over (case id, qualified method name, site
    /// ordinal, first-hit index).  Descriptor *pointers* never enter the
    /// digest, so the value is stable across processes; it changes
    /// whenever the suite or the reached-site relation changes.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;

private:
    friend class CoverageRecorder;
    std::vector<CaseCoverage> cases_;
    /// case id -> index into cases_ (first occurrence wins, matching the
    /// scan order find() promises).  The index is consulted once per
    /// (mutant, case) pair on the campaign hot path, so lookups must not
    /// scan cases_ linearly.
    std::unordered_map<std::string, std::size_t> by_id_;
};

/// Records one suite run into a CoverageIndex.  Install on the running
/// thread with CoverageScope and hand to RunnerOptions::observer; see
/// run_with_coverage for the packaged form.
class CoverageRecorder final : public CoverageSink, public driver::CaseObserver {
public:
    explicit CoverageRecorder(CoverageIndex& index) noexcept : index_(index) {}

    void on_case_begin(const driver::TestCase& test_case) override;
    void on_call(std::size_t call_index) override;
    void on_site(const MethodDescriptor& method, std::size_t site) override;

private:
    CoverageIndex& index_;
    std::size_t current_call_ = 0;
};

/// A golden run plus the coverage index it produced.
struct CoveredRun {
    driver::SuiteResult result;
    CoverageIndex index;
};

/// Run `suite` un-mutated and record its coverage signature — the
/// campaign's golden-capture step.  `options.observer` is overwritten;
/// the caller must not hold a CoverageScope on this thread already.
[[nodiscard]] CoveredRun run_with_coverage(const reflect::Registry& registry,
                                           driver::RunnerOptions options,
                                           const driver::TestSuite& suite);

}  // namespace stc::mutation
