// MutFrame — the per-invocation variable environment of an instrumented
// method.
//
// An instrumented method body
//   (1) constructs a MutFrame over its static MethodDescriptor,
//   (2) binds the addresses of its locals and of the class attributes,
//   (3) routes every non-interface variable *use* through use()/use_ptr()
//       with the site ordinal from the descriptor.
//
// When the active mutant targets this method and site, use() substitutes
// the mutated value: the bitwise negation, a required constant, or the
// *current* value of the replacing variable read through its binding —
// exactly what the hand-edited source of the paper's mutants computed.
#pragma once

#include <concepts>
#include <cstdint>
#include <string_view>

#include "stc/mutation/controller.h"
#include "stc/mutation/descriptor.h"

namespace stc::mutation {

class MutFrame {
public:
    explicit MutFrame(const MethodDescriptor& descriptor) noexcept
        : descriptor_(descriptor) {}

    MutFrame(const MutFrame&) = delete;
    MutFrame& operator=(const MutFrame&) = delete;

    // ---- Binding ---------------------------------------------------------
    template <std::integral T>
    void bind(const char* name, const T* address) noexcept {
        add_slot(name, slot_kind_for<T>(), address);
    }

    void bind(const char* name, const double* address) noexcept {
        add_slot(name, SlotKind::F64, address);
    }
    void bind(const char* name, const float* address) noexcept {
        add_slot(name, SlotKind::F32, address);
    }

    template <typename P>
    void bind_ptr(const char* name, P* const* address) noexcept {
        add_slot(name, SlotKind::Ptr, address);
    }

    // ---- Use sites ---------------------------------------------------------
    /// Integral use-site: returns `value` unless the active mutant
    /// rewrites this site.
    template <std::integral T>
    [[nodiscard]] T use(std::size_t site, T value) const {
        const Mutant* m = relevant_mutant(site);
        if (m == nullptr) return value;
        MutationController::instance().mark_hit();
        if (is_bitneg(m->op)) return static_cast<T>(~value);
        if (is_repreq(m->op)) {
            return static_cast<T>(m->replacement_const->int_value);
        }
        return static_cast<T>(read_int(m->replacement_var));
    }

    /// Floating-point use-site.
    template <std::floating_point T>
    [[nodiscard]] T use_real(std::size_t site, T value) const {
        const Mutant* m = relevant_mutant(site);
        if (m == nullptr) return value;
        MutationController::instance().mark_hit();
        if (is_repreq(m->op)) {
            return static_cast<T>(m->replacement_const->real_value);
        }
        if (is_bitneg(m->op)) return value;  // not enumerated for reals
        return static_cast<T>(read_real(m->replacement_var));
    }

    /// Pointer use-site.
    template <typename P>
    [[nodiscard]] P* use_ptr(std::size_t site, P* value) const {
        const Mutant* m = relevant_mutant(site);
        if (m == nullptr) return value;
        MutationController::instance().mark_hit();
        if (is_repreq(m->op)) return nullptr;  // RC for pointers is NULL
        if (is_bitneg(m->op)) return value;    // not enumerated for pointers
        return static_cast<P*>(read_ptr(m->replacement_var));
    }

    [[nodiscard]] const MethodDescriptor& descriptor() const noexcept {
        return descriptor_;
    }

private:
    enum class SlotKind : std::uint8_t { I8, I16, I32, I64, U8, U16, U32, U64, F32, F64, Ptr };

    struct Slot {
        const char* name = nullptr;
        SlotKind kind = SlotKind::I64;
        const void* address = nullptr;
    };

    template <std::integral T>
    static constexpr SlotKind slot_kind_for() noexcept {
        if constexpr (std::is_signed_v<T>) {
            switch (sizeof(T)) {
                case 1: return SlotKind::I8;
                case 2: return SlotKind::I16;
                case 4: return SlotKind::I32;
                default: return SlotKind::I64;
            }
        } else {
            switch (sizeof(T)) {
                case 1: return SlotKind::U8;
                case 2: return SlotKind::U16;
                case 4: return SlotKind::U32;
                default: return SlotKind::U64;
            }
        }
    }

    void add_slot(const char* name, SlotKind kind, const void* address) noexcept {
        if (count_ < kMaxSlots) slots_[count_++] = Slot{name, kind, address};
        // Overflow is an instrumentation bug; surfaced by find_slot below.
    }

    [[nodiscard]] const Mutant* relevant_mutant(std::size_t site) const noexcept {
        const MutationController& c = MutationController::instance();
        // Coverage recording is unconditional while a sink is installed:
        // the golden run has no active mutant, yet must learn which
        // sites each case reaches (stc/mutation/coverage.h).
        if (CoverageSink* sink = c.coverage_sink()) {
            sink->on_site(descriptor_, site);
        }
        const Mutant* m = c.active();
        if (m == nullptr || m->method != &descriptor_ || m->site_index != site) {
            return nullptr;
        }
        return m;
    }

    [[nodiscard]] const Slot& find_slot(std::string_view name) const;
    [[nodiscard]] std::int64_t read_int(std::string_view name) const;
    [[nodiscard]] double read_real(std::string_view name) const;
    [[nodiscard]] void* read_ptr(std::string_view name) const;

    static constexpr std::size_t kMaxSlots = 24;
    const MethodDescriptor& descriptor_;
    Slot slots_[kMaxSlots];
    std::size_t count_ = 0;
};

}  // namespace stc::mutation
