// The fast campaign execution tier: coverage-signature pruning plus
// shared-prefix memoization.
//
// Both optimisations rest on one determinism fact: an execution that
// never consults a mutant's use-site is byte-identical to the golden
// run.  Hence
//   * a (mutant, case) pair whose site the case provably never reaches
//     (per the CoverageIndex from the golden run) can be skipped
//     outright — it can neither hit nor kill;
//   * a case whose first consult of the site happens at call k may start
//     from a checkpoint of the un-mutated execution taken before any
//     call <= k, because the mutated run is identical up to that point.
//
// Checkpoints are behavioural copies (ClassBinding cloner) captured once
// per distinct birth prefix on the un-mutated component and shared by
// every case with that prefix and by every mutant — the "execute the
// un-mutated prefix once per group" memoization.  Fate identity with
// evaluate_mutant is the contract, enforced end-to-end by the
// differential harness in tests/prune_test.cpp.
//
// Manual oracles are the one detector that breaks the premise (they may
// reject a byte-identical Pass report), so the campaign scheduler keeps
// pruning off whenever one is configured; a lockstep model only gates
// the memoization half (resumed suffixes skip model comparison).
#pragma once

#include <cstdint>
#include <vector>

#include "stc/mutation/coverage.h"
#include "stc/mutation/engine.h"

namespace stc::mutation {

/// Version of the pruned execution tier, absorbed into the campaign
/// store fingerprint (as "prune-index-v1") when pruning is engaged so a
/// resumed store never mixes fates produced under different pruning
/// semantics.  Bump on any change to the skip/memoize rules.
inline constexpr std::uint64_t kPruneIndexVersion = 1;
inline constexpr const char* kPruneIndexToken = "prune-index-v1";

/// Per-case checkpoint ladder, ascending by resume_call.  The evaluator
/// picks the deepest checkpoint not past the mutant's first-hit call.
struct CasePlan {
    std::vector<driver::CaseCheckpoint> checkpoints;
};

/// Everything the pruned evaluator needs besides the golden records:
/// coverage indices for suite and probe, and the shared-prefix
/// checkpoint ladders (index-aligned with the respective case lists).
/// Built once, before the parallel phase, on the un-mutated component;
/// read-only afterwards (checkpoint prototypes are cloned, never
/// mutated, so concurrent evaluation and copy-on-write fork inheritance
/// under --isolate are both safe).
struct PrunePlan {
    CoverageIndex coverage;
    CoverageIndex probe_coverage;
    std::vector<CasePlan> case_plans;
    std::vector<CasePlan> probe_case_plans;
};

/// Work avoided/performed by one (or many summed) pruned evaluations.
struct PruneStats {
    std::uint64_t executed_pairs = 0;  ///< (mutant, case) pairs actually run
    std::uint64_t pruned_pairs = 0;    ///< pairs skipped as provably unreached
    std::uint64_t memoized_pairs = 0;  ///< executed pairs resumed mid-case
    std::uint64_t memoized_calls = 0;  ///< body calls those resumes skipped

    PruneStats& operator+=(const PruneStats& other) noexcept {
        executed_pairs += other.executed_pairs;
        pruned_pairs += other.pruned_pairs;
        memoized_pairs += other.memoized_pairs;
        memoized_calls += other.memoized_calls;
        return *this;
    }
};

struct PrunePlanOptions {
    /// Cap on checkpoints captured per distinct case (boundaries are the
    /// case's distinct first-hit call indices, shallowest first).
    std::size_t max_checkpoints_per_case = 6;
    /// Capture no checkpoint shallower than this body-call index
    /// (resuming at call 1 saves only the constructor).
    std::size_t min_resume_call = 2;
    /// Disable the memoization half entirely (pruning still applies);
    /// set when a lockstep model is attached to the runner.
    bool memoize = true;
};

/// Build the checkpoint ladders for `suite` (and `probe_suite`, which
/// may be null along with `probe_runner`) from their recorded coverage.
/// `coverage` and `probe_coverage` are moved into the returned plan.
/// Runs each distinct birth prefix once on the un-mutated component;
/// must be called with no mutant active.  Suite and probe ladders are
/// captured with their own runners (probe observations differ — it
/// observes every call) and never shared across the two.
[[nodiscard]] PrunePlan build_prune_plan(
    const driver::TestRunner& runner, const reflect::ClassBinding& binding,
    const driver::TestSuite& suite, CoverageIndex coverage,
    const driver::TestRunner* probe_runner, const driver::TestSuite* probe_suite,
    CoverageIndex probe_coverage, const PrunePlanOptions& options = {});

/// Drop-in replacement for evaluate_mutant: identical fates (the
/// differential harness in tests/prune_test.cpp is the net), ~an order
/// of magnitude less execution.  `probe_runner`/`probe_suite` may be
/// null (no equivalence probing).  `options.manual_oracle` must be
/// empty — callers gate pruning off instead.  Thread-safe under the
/// same conditions as evaluate_mutant; `stats`, when given, is summed
/// into without synchronisation (use one per worker).
[[nodiscard]] MutantOutcome evaluate_mutant_pruned(
    const Mutant& mutant, const driver::TestRunner& runner,
    const reflect::ClassBinding& binding, const driver::TestSuite& suite,
    const oracle::GoldenRecord& golden, const driver::TestRunner* probe_runner,
    const driver::TestSuite* probe_suite,
    const oracle::GoldenRecord& probe_golden, const PrunePlan& plan,
    const EngineOptions& options, PruneStats* stats = nullptr);

}  // namespace stc::mutation
