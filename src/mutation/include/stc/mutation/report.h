// Rendering of mutation-analysis results in the shape of the paper's
// Tables 2 and 3: a per-method block of mutant counts per operator,
// followed by the per-operator footer (#mutants, #killed, #equivalent,
// Score) with a Total column.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "stc/mutation/engine.h"

namespace stc::mutation {

struct Tally {
    std::size_t total = 0;
    std::size_t killed = 0;
    std::size_t equivalent = 0;

    void add(const MutantOutcome& outcome);
    [[nodiscard]] double score() const noexcept;
};

/// Per-method x per-operator aggregation of a MutationRun.
class MutationTable {
public:
    static MutationTable build(const MutationRun& run);

    /// Method order as first encountered; operator order as in Table 1.
    [[nodiscard]] const std::vector<std::string>& methods() const noexcept {
        return methods_;
    }

    [[nodiscard]] const Tally& cell(const std::string& method, Operator op) const;

    /// Column order for rendering: the paper's five operators, plus any
    /// DirVar operator that actually produced mutants in this run.
    [[nodiscard]] std::vector<Operator> columns() const;
    [[nodiscard]] Tally column_total(Operator op) const;
    [[nodiscard]] Tally row_total(const std::string& method) const;
    [[nodiscard]] Tally grand_total() const;

    /// Paper-style rendering (Table 2/3 shape) plus a kill-reason
    /// breakdown line reproducing the "59 of 652 kills were due to
    /// assertion violation" accounting.
    void render(std::ostream& os, const MutationRun& run) const;

    /// Machine-readable CSV (one row per method x operator).
    void render_csv(std::ostream& os) const;

    /// Assertion-placement guidance (the concern of Voas et al.'s
    /// ASSERT++, §5): per method, how many kills the assertion oracle
    /// contributed versus the other channels — methods whose faults are
    /// mostly caught by output comparison are candidates for stronger
    /// embedded assertions.
    static void render_assertion_guidance(std::ostream& os, const MutationRun& run);

private:
    std::vector<std::string> methods_;
    std::map<std::pair<std::string, Operator>, Tally> cells_;
    static const Tally kEmpty;
};

/// The full campaign report: header line, one line per mutant in
/// enumeration order, the Table 2/3 aggregation, and the score footer.
/// Shared by `concat campaign` and `concat dispatch`, so a distributed
/// run renders byte-identical output to the single-process run it
/// shards — the determinism contract CI checks with cmp(1).  Every
/// outcome must carry its mutant pointer; scheduling-dependent numbers
/// (timings, worker ids) never appear here.
void render_campaign_report(std::ostream& os, const MutationRun& run,
                            const std::string& class_name, std::size_t cases,
                            std::uint64_t seed);

}  // namespace stc::mutation
