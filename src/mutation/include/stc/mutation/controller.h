// Runtime mutant activation (mutant schemata).
//
// Exactly one mutant can be active at a time; the instrumented use-sites
// consult the controller on every execution.  The engine activates each
// enumerated mutant in turn (RAII guard), runs the test suite, and reads
// back whether the mutated site was even reached (hit tracking —
// a mutant that was never hit cannot have been exercised by the suite).
#pragma once

#include "stc/mutation/mutant.h"
#include "stc/support/error.h"

namespace stc::mutation {

/// Thrown by instrumented substrates when a mutated value would have
/// corrupted memory in the paper's original setup (e.g. dereferencing a
/// node pointer that does not belong to the list's node pool).  Derives
/// CrashSignal: the harness counts it as "the program crashed" — the
/// paper's kill condition (i) — without taking the process down.
class StructuralFault : public CrashSignal {
public:
    explicit StructuralFault(const std::string& what) : CrashSignal(what) {}
};

/// Observer of mutation-site consultations (the coverage-signature
/// recorder seam).  While one is installed on a thread, every
/// MutFrame::use/use_real/use_ptr call on that thread reports its
/// (descriptor, site ordinal) pair — regardless of whether any mutant is
/// active — so a golden run can record exactly which sites each test
/// case reaches.  Implementations must be cheap: the callback sits on
/// the instrumented hot path.
class CoverageSink {
public:
    virtual void on_site(const MethodDescriptor& method,
                         std::size_t site) = 0;

protected:
    ~CoverageSink() = default;
};

/// Per-thread single active mutant.
class MutationController {
public:
    [[nodiscard]] static MutationController& instance() noexcept;

    [[nodiscard]] const Mutant* active() const noexcept { return mutant_; }
    [[nodiscard]] bool any_active() const noexcept { return mutant_ != nullptr; }

    void mark_hit() noexcept { hit_ = true; }
    [[nodiscard]] bool hit() const noexcept { return hit_; }
    void reset_hit() noexcept { hit_ = false; }

    [[nodiscard]] CoverageSink* coverage_sink() const noexcept { return sink_; }

private:
    friend class MutantActivation;
    friend class CoverageScope;
    const Mutant* mutant_ = nullptr;
    bool hit_ = false;
    CoverageSink* sink_ = nullptr;
};

/// RAII activation of one mutant; non-nestable (activating while another
/// mutant is active is an engine bug and throws).
class MutantActivation {
public:
    explicit MutantActivation(const Mutant& mutant);
    ~MutantActivation();

    MutantActivation(const MutantActivation&) = delete;
    MutantActivation& operator=(const MutantActivation&) = delete;
};

/// RAII installation of a coverage sink on the current thread;
/// non-nestable for the same reason as MutantActivation (two recorders
/// on one thread would each see only a torn half of the sites).
class CoverageScope {
public:
    explicit CoverageScope(CoverageSink& sink);
    ~CoverageScope();

    CoverageScope(const CoverageScope&) = delete;
    CoverageScope& operator=(const CoverageScope&) = delete;
};

}  // namespace stc::mutation
