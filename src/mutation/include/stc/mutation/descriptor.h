// Static description of an instrumented method for interface mutation.
//
// The paper evaluates its test strategy with *interface mutation*
// (Delamaro), whose IndVar* operators (Table 1) act on the uses of
// non-interface variables inside a routine R2: locals L(R2), class
// attributes/globals used G(R2), those not used E(R2), and required
// constants RC.  The original experiments seeded each fault by hand and
// compiled each mutant as a separate class; we instead instrument the
// substrate once (mutant schemata): each method carries a
// MethodDescriptor enumerating its variables and its non-interface
// variable *use sites*, and the method body routes every such use
// through MutFrame::use(), where the single active mutant can substitute
// the value.  Mutants are then enumerated mechanically and activated one
// at a time — same fault model, no per-mutant compilation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stc/support/error.h"

namespace stc::mutation {

/// Type of a mutatable variable.  Replacements are only generated
/// between identically typed variables (an ill-typed replacement would
/// not compile in the paper's per-class mutants).
struct TypeKey {
    enum class Kind { Int, Real, Pointer };
    Kind kind = Kind::Int;
    std::string pointee;  ///< pointee class name for Kind::Pointer

    friend bool operator==(const TypeKey&, const TypeKey&) = default;

    [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] inline TypeKey int_type() { return {TypeKey::Kind::Int, ""}; }
[[nodiscard]] inline TypeKey real_type() { return {TypeKey::Kind::Real, ""}; }
[[nodiscard]] inline TypeKey pointer_type(std::string pointee) {
    return {TypeKey::Kind::Pointer, std::move(pointee)};
}

/// Role of a variable within the method, per the interface-mutation sets.
enum class VarRole {
    Param,      ///< formal parameter: an *interface* variable, never a site
    Local,      ///< L(R2)
    Attribute,  ///< class attribute: G(R2) when used here, E(R2) otherwise
};

struct VarInfo {
    std::string name;
    VarRole role = VarRole::Local;
    TypeKey type;
    bool used_in_method = true;  ///< attributes only: distinguishes G from E
};

/// One variable use in the method body.  `ordinal` is the 0-based index
/// the instrumented code passes to MutFrame::use().  Non-interface sites
/// (locals/attributes) are the IndVar* targets of the paper; interface
/// sites (formal parameters) are the DirVar* targets of the extended
/// operator set.
struct SiteInfo {
    std::size_t ordinal = 0;
    std::string var;
    TypeKey type;
    bool interface_site = false;  ///< use of a formal parameter (DirVar*)
    std::string note;  ///< optional, e.g. "loop guard" — report readability
};

/// Complete mutation metadata for one method (one R2).
class MethodDescriptor {
public:
    class Builder;

    [[nodiscard]] const std::string& class_name() const noexcept { return class_name_; }
    [[nodiscard]] const std::string& method_name() const noexcept { return method_name_; }
    [[nodiscard]] std::string qualified_name() const {
        return class_name_ + "::" + method_name_;
    }

    [[nodiscard]] const std::vector<VarInfo>& variables() const noexcept { return vars_; }
    [[nodiscard]] const std::vector<SiteInfo>& sites() const noexcept { return sites_; }

    [[nodiscard]] const VarInfo* find_var(const std::string& name) const;

    /// L(R2): local variables defined in the method.
    [[nodiscard]] std::vector<const VarInfo*> locals() const;
    /// G(R2): attributes/globals used in the method.
    [[nodiscard]] std::vector<const VarInfo*> globals_used() const;
    /// E(R2): attributes/globals not used in the method.
    [[nodiscard]] std::vector<const VarInfo*> globals_unused() const;

private:
    std::string class_name_;
    std::string method_name_;
    std::vector<VarInfo> vars_;
    std::vector<SiteInfo> sites_;
};

/// Fluent construction with consistency checks (site variables must
/// exist and must not be parameters; ordinals are assigned in call
/// order and must match the use() indices in the instrumented body).
class MethodDescriptor::Builder {
public:
    Builder(std::string class_name, std::string method_name);

    Builder& param(std::string name, TypeKey type);
    Builder& local(std::string name, TypeKey type);
    Builder& attr(std::string name, TypeKey type, bool used_in_method);

    /// Declare the next use site of a non-interface variable
    /// (ordinal = number of sites so far).
    Builder& site(std::string var, std::string note = {});

    /// Declare the next use site of an *interface* variable (a formal
    /// parameter) — target of the extended DirVar* operators.
    Builder& interface_site(std::string var, std::string note = {});

    /// Validate and produce the descriptor.  Throws stc::SpecError on
    /// inconsistencies.
    [[nodiscard]] MethodDescriptor build() const;

private:
    MethodDescriptor desc_;
};

/// All descriptors of an instrumented program.  Holds non-owning
/// pointers to the canonical static descriptors defined next to each
/// method body, so runtime frame/descriptor identity is pointer
/// equality.
class DescriptorRegistry {
public:
    void add(const MethodDescriptor* descriptor);

    [[nodiscard]] const MethodDescriptor* find(const std::string& class_name,
                                               const std::string& method_name) const;
    [[nodiscard]] const std::vector<const MethodDescriptor*>& all() const noexcept {
        return descriptors_;
    }
    [[nodiscard]] std::vector<const MethodDescriptor*> for_class(
        const std::string& class_name) const;

private:
    std::vector<const MethodDescriptor*> descriptors_;
};

}  // namespace stc::mutation
