#include "stc/mutation/controller.h"

namespace stc::mutation {

MutationController& MutationController::instance() noexcept {
    static thread_local MutationController controller;
    return controller;
}

MutantActivation::MutantActivation(const Mutant& mutant) {
    auto& c = MutationController::instance();
    if (c.mutant_ != nullptr) {
        throw ContractError("a mutant is already active: " + c.mutant_->id());
    }
    if (mutant.method == nullptr) {
        throw ContractError("activating a mutant with no method descriptor");
    }
    c.mutant_ = &mutant;
    c.hit_ = false;
}

MutantActivation::~MutantActivation() {
    MutationController::instance().mutant_ = nullptr;
}

CoverageScope::CoverageScope(CoverageSink& sink) {
    auto& c = MutationController::instance();
    if (c.sink_ != nullptr) {
        throw ContractError("a coverage sink is already installed");
    }
    c.sink_ = &sink;
}

CoverageScope::~CoverageScope() {
    MutationController::instance().sink_ = nullptr;
}

}  // namespace stc::mutation
