#include "stc/mutation/descriptor.h"

namespace stc::mutation {

std::string TypeKey::to_string() const {
    switch (kind) {
        case Kind::Int: return "int";
        case Kind::Real: return "real";
        case Kind::Pointer: return pointee + "*";
    }
    return "?";
}

const VarInfo* MethodDescriptor::find_var(const std::string& name) const {
    for (const auto& v : vars_) {
        if (v.name == name) return &v;
    }
    return nullptr;
}

std::vector<const VarInfo*> MethodDescriptor::locals() const {
    std::vector<const VarInfo*> out;
    for (const auto& v : vars_) {
        if (v.role == VarRole::Local) out.push_back(&v);
    }
    return out;
}

std::vector<const VarInfo*> MethodDescriptor::globals_used() const {
    std::vector<const VarInfo*> out;
    for (const auto& v : vars_) {
        if (v.role == VarRole::Attribute && v.used_in_method) out.push_back(&v);
    }
    return out;
}

std::vector<const VarInfo*> MethodDescriptor::globals_unused() const {
    std::vector<const VarInfo*> out;
    for (const auto& v : vars_) {
        if (v.role == VarRole::Attribute && !v.used_in_method) out.push_back(&v);
    }
    return out;
}

MethodDescriptor::Builder::Builder(std::string class_name, std::string method_name) {
    desc_.class_name_ = std::move(class_name);
    desc_.method_name_ = std::move(method_name);
}

MethodDescriptor::Builder& MethodDescriptor::Builder::param(std::string name,
                                                            TypeKey type) {
    desc_.vars_.push_back(VarInfo{std::move(name), VarRole::Param, std::move(type), true});
    return *this;
}

MethodDescriptor::Builder& MethodDescriptor::Builder::local(std::string name,
                                                            TypeKey type) {
    desc_.vars_.push_back(VarInfo{std::move(name), VarRole::Local, std::move(type), true});
    return *this;
}

MethodDescriptor::Builder& MethodDescriptor::Builder::attr(std::string name,
                                                           TypeKey type,
                                                           bool used_in_method) {
    desc_.vars_.push_back(
        VarInfo{std::move(name), VarRole::Attribute, std::move(type), used_in_method});
    return *this;
}

MethodDescriptor::Builder& MethodDescriptor::Builder::site(std::string var,
                                                           std::string note) {
    SiteInfo s;
    s.ordinal = desc_.sites_.size();
    s.var = std::move(var);
    s.note = std::move(note);
    desc_.sites_.push_back(std::move(s));
    return *this;
}

MethodDescriptor::Builder& MethodDescriptor::Builder::interface_site(
    std::string var, std::string note) {
    SiteInfo s;
    s.ordinal = desc_.sites_.size();
    s.var = std::move(var);
    s.interface_site = true;
    s.note = std::move(note);
    desc_.sites_.push_back(std::move(s));
    return *this;
}

MethodDescriptor MethodDescriptor::Builder::build() const {
    MethodDescriptor out = desc_;
    for (auto& s : out.sites_) {
        const VarInfo* v = out.find_var(s.var);
        if (v == nullptr) {
            throw SpecError("mutation site references unknown variable '" + s.var +
                            "' in " + out.qualified_name());
        }
        if (!s.interface_site && v->role == VarRole::Param) {
            throw SpecError("mutation site on interface variable '" + s.var + "' in " +
                            out.qualified_name() +
                            " (IndVar operators act on non-interface variables; "
                            "declare it with interface_site for DirVar coverage)");
        }
        if (s.interface_site && v->role != VarRole::Param) {
            throw SpecError("interface site on non-parameter '" + s.var + "' in " +
                            out.qualified_name());
        }
        if (v->role == VarRole::Attribute && !v->used_in_method) {
            throw SpecError("mutation site on attribute '" + s.var +
                            "' declared unused in " + out.qualified_name());
        }
        s.type = v->type;
    }
    return out;
}

void DescriptorRegistry::add(const MethodDescriptor* descriptor) {
    if (descriptor == nullptr) throw ContractError("null descriptor registered");
    if (find(descriptor->class_name(), descriptor->method_name()) != nullptr) {
        throw SpecError("duplicate descriptor for " + descriptor->qualified_name());
    }
    descriptors_.push_back(descriptor);
}

const MethodDescriptor* DescriptorRegistry::find(const std::string& class_name,
                                                 const std::string& method_name) const {
    for (const auto* d : descriptors_) {
        if (d->class_name() == class_name && d->method_name() == method_name) return d;
    }
    return nullptr;
}

std::vector<const MethodDescriptor*> DescriptorRegistry::for_class(
    const std::string& class_name) const {
    std::vector<const MethodDescriptor*> out;
    for (const auto* d : descriptors_) {
        if (d->class_name() == class_name) out.push_back(d);
    }
    return out;
}

}  // namespace stc::mutation
