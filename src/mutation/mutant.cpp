#include "stc/mutation/mutant.h"

#include <limits>

namespace stc::mutation {

const char* to_string(Operator op) noexcept {
    switch (op) {
        case Operator::IndVarBitNeg: return "IndVarBitNeg";
        case Operator::IndVarRepGlob: return "IndVarRepGlob";
        case Operator::IndVarRepLoc: return "IndVarRepLoc";
        case Operator::IndVarRepExt: return "IndVarRepExt";
        case Operator::IndVarRepReq: return "IndVarRepReq";
        case Operator::DirVarBitNeg: return "DirVarBitNeg";
        case Operator::DirVarRepGlob: return "DirVarRepGlob";
        case Operator::DirVarRepLoc: return "DirVarRepLoc";
        case Operator::DirVarRepExt: return "DirVarRepExt";
        case Operator::DirVarRepReq: return "DirVarRepReq";
    }
    return "?";
}

const char* describe(Operator op) noexcept {
    switch (op) {
        case Operator::IndVarBitNeg:
            return "Inserts bitwise negation at non-interface variable use";
        case Operator::IndVarRepGlob:
            return "Replaces non-interface variable by G(R2)";
        case Operator::IndVarRepLoc:
            return "Replaces non-interface variable by L(R2)";
        case Operator::IndVarRepExt:
            return "Replaces non-interface variable by E(R2)";
        case Operator::IndVarRepReq:
            return "Replaces non-interface variable by RC";
        case Operator::DirVarBitNeg:
            return "Inserts bitwise negation at interface variable use";
        case Operator::DirVarRepGlob:
            return "Replaces interface variable by G(R2)";
        case Operator::DirVarRepLoc:
            return "Replaces interface variable by L(R2)";
        case Operator::DirVarRepExt:
            return "Replaces interface variable by E(R2)";
        case Operator::DirVarRepReq:
            return "Replaces interface variable by RC";
    }
    return "?";
}

std::vector<RequiredConstant> required_constants(const TypeKey& type) {
    std::vector<RequiredConstant> out;
    switch (type.kind) {
        case TypeKey::Kind::Int:
            out.push_back({TypeKey::Kind::Int, 0, 0.0, "ZERO"});
            out.push_back({TypeKey::Kind::Int, 1, 0.0, "ONE"});
            out.push_back({TypeKey::Kind::Int, -1, 0.0, "MINUSONE"});
            out.push_back({TypeKey::Kind::Int,
                           std::numeric_limits<std::int32_t>::max(), 0.0, "MAXINT"});
            out.push_back({TypeKey::Kind::Int,
                           std::numeric_limits<std::int32_t>::min(), 0.0, "MININT"});
            break;
        case TypeKey::Kind::Real:
            out.push_back({TypeKey::Kind::Real, 0, 0.0, "ZERO"});
            out.push_back({TypeKey::Kind::Real, 0, 1.0, "ONE"});
            break;
        case TypeKey::Kind::Pointer:
            out.push_back({TypeKey::Kind::Pointer, 0, 0.0, "NULL"});
            break;
    }
    return out;
}

std::string Mutant::id() const {
    std::string out = method == nullptr ? std::string("?") : method->qualified_name();
    out += "@s" + std::to_string(site_index) + "." + to_string(op);
    if (!replacement_var.empty()) out += "." + replacement_var;
    if (replacement_const) out += "." + replacement_const->label;
    return out;
}

std::vector<Mutant> enumerate_mutants(const MethodDescriptor& method,
                                      const std::vector<Operator>& operators) {
    std::vector<Mutant> out;

    for (const SiteInfo& site : method.sites()) {
        for (Operator op : operators) {
            // IndVar operators act on non-interface sites, DirVar on
            // interface (parameter) sites.
            if (is_dirvar(op) != site.interface_site) continue;

            if (is_bitneg(op)) {
                // Bitwise negation is only meaningful (and compilable)
                // on integral variables.
                if (site.type.kind == TypeKey::Kind::Int) {
                    out.push_back(Mutant{&method, site.ordinal, op, "", {}});
                }
                continue;
            }
            if (is_repreq(op)) {
                for (const RequiredConstant& rc : required_constants(site.type)) {
                    out.push_back(Mutant{&method, site.ordinal, op, "", rc});
                }
                continue;
            }

            const auto candidates =
                (op == Operator::IndVarRepGlob || op == Operator::DirVarRepGlob)
                    ? method.globals_used()
                : (op == Operator::IndVarRepLoc || op == Operator::DirVarRepLoc)
                    ? method.locals()
                    : method.globals_unused();
            for (const VarInfo* v : candidates) {
                if (v->name == site.var) continue;  // identity: not a mutant
                if (!(v->type == site.type)) continue;
                out.push_back(Mutant{&method, site.ordinal, op, v->name, {}});
            }
        }
    }
    return out;
}

std::vector<Mutant> enumerate_mutants(const DescriptorRegistry& registry,
                                      const std::string& class_name,
                                      const std::vector<Operator>& operators) {
    std::vector<Mutant> out;
    for (const MethodDescriptor* d : registry.for_class(class_name)) {
        auto ms = enumerate_mutants(*d, operators);
        out.insert(out.end(), ms.begin(), ms.end());
    }
    return out;
}

}  // namespace stc::mutation
