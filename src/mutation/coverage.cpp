#include "stc/mutation/coverage.h"

#include <string_view>

namespace stc::mutation {

bool CoverageIndex::covers(const std::string& case_id,
                           const Mutant& mutant) const {
    return first_hit(case_id, mutant).has_value();
}

std::optional<std::size_t> CoverageIndex::first_hit(const std::string& case_id,
                                                    const Mutant& mutant) const {
    const CaseCoverage* cc = find(case_id);
    if (cc == nullptr) return std::nullopt;
    const auto it = cc->first_hit.find(SiteKey{mutant.method, mutant.site_index});
    if (it == cc->first_hit.end()) return std::nullopt;
    return it->second;
}

const CoverageIndex::CaseCoverage* CoverageIndex::find(
    const std::string& case_id) const {
    const auto it = by_id_.find(case_id);
    return it != by_id_.end() ? &cases_[it->second] : nullptr;
}

std::size_t CoverageIndex::pair_count() const noexcept {
    std::size_t n = 0;
    for (const auto& cc : cases_) n += cc.first_hit.size();
    return n;
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void absorb(std::uint64_t& h, std::string_view text) noexcept {
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    h ^= 0x1f;  // separator so ("ab","c") != ("a","bc")
    h *= kFnvPrime;
}

void absorb(std::uint64_t& h, std::uint64_t value) noexcept {
    for (int i = 0; i < 8; ++i) {
        h ^= value & 0xff;
        h *= kFnvPrime;
        value >>= 8;
    }
}

}  // namespace

std::uint64_t CoverageIndex::fingerprint() const noexcept {
    std::uint64_t h = kFnvOffset;
    for (const auto& cc : cases_) {
        absorb(h, cc.case_id);
        for (const auto& [key, call_index] : cc.first_hit) {
            absorb(h, key.first != nullptr ? key.first->qualified_name()
                                           : std::string("?"));
            absorb(h, static_cast<std::uint64_t>(key.second));
            absorb(h, static_cast<std::uint64_t>(call_index));
        }
    }
    return h;
}

void CoverageRecorder::on_case_begin(const driver::TestCase& test_case) {
    index_.cases_.push_back(CoverageIndex::CaseCoverage{test_case.id, {}});
    index_.by_id_.emplace(test_case.id, index_.cases_.size() - 1);
    current_call_ = 0;
}

void CoverageRecorder::on_call(std::size_t call_index) {
    current_call_ = call_index;
}

void CoverageRecorder::on_site(const MethodDescriptor& method, std::size_t site) {
    if (index_.cases_.empty()) return;  // site outside any case: untracked
    auto& hits = index_.cases_.back().first_hit;
    hits.emplace(CoverageIndex::SiteKey{&method, site}, current_call_);
}

CoveredRun run_with_coverage(const reflect::Registry& registry,
                             driver::RunnerOptions options,
                             const driver::TestSuite& suite) {
    CoveredRun out;
    CoverageRecorder recorder(out.index);
    options.observer = &recorder;
    const driver::TestRunner runner(registry, options);
    const CoverageScope scope(recorder);
    out.result = runner.run(suite);
    return out;
}

}  // namespace stc::mutation
