#include "stc/mutation/report.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "stc/support/strings.h"
#include "stc/support/table.h"

namespace stc::mutation {

const Tally MutationTable::kEmpty{};

void Tally::add(const MutantOutcome& outcome) {
    ++total;
    if (outcome.fate == MutantFate::Killed) ++killed;
    if (outcome.fate == MutantFate::EquivalentPresumed) ++equivalent;
}

double Tally::score() const noexcept {
    const std::size_t denom = total - equivalent;
    if (denom == 0) return 1.0;
    return static_cast<double>(killed) / static_cast<double>(denom);
}

MutationTable MutationTable::build(const MutationRun& run) {
    MutationTable out;
    for (const auto& outcome : run.outcomes) {
        const std::string method = outcome.mutant->method->method_name();
        if (std::find(out.methods_.begin(), out.methods_.end(), method) ==
            out.methods_.end()) {
            out.methods_.push_back(method);
        }
        out.cells_[{method, outcome.mutant->op}].add(outcome);
    }
    return out;
}

const Tally& MutationTable::cell(const std::string& method, Operator op) const {
    const auto it = cells_.find({method, op});
    return it == cells_.end() ? kEmpty : it->second;
}

Tally MutationTable::column_total(Operator op) const {
    Tally out;
    for (const auto& m : methods_) {
        const Tally& c = cell(m, op);
        out.total += c.total;
        out.killed += c.killed;
        out.equivalent += c.equivalent;
    }
    return out;
}

Tally MutationTable::row_total(const std::string& method) const {
    Tally out;
    for (Operator op : kExtendedOperators) {
        const Tally& c = cell(method, op);
        out.total += c.total;
        out.killed += c.killed;
        out.equivalent += c.equivalent;
    }
    return out;
}

Tally MutationTable::grand_total() const {
    Tally out;
    for (Operator op : kExtendedOperators) {
        const Tally c = column_total(op);
        out.total += c.total;
        out.killed += c.killed;
        out.equivalent += c.equivalent;
    }
    return out;
}

std::vector<Operator> MutationTable::columns() const {
    // Paper operators always show; DirVar columns appear only when used.
    std::vector<Operator> out(kAllOperators.begin(), kAllOperators.end());
    for (Operator op : kDirVarOperators) {
        if (column_total(op).total > 0) out.push_back(op);
    }
    return out;
}

void MutationTable::render(std::ostream& os, const MutationRun& run) const {
    const std::vector<Operator> cols = columns();
    std::vector<std::string> header{"Method"};
    for (Operator op : cols) header.emplace_back(to_string(op));
    header.emplace_back("Total");

    support::TextTable table(header);
    for (const auto& method : methods_) {
        std::vector<std::string> row{method};
        for (Operator op : cols) {
            row.push_back(std::to_string(cell(method, op).total));
        }
        row.push_back(std::to_string(row_total(method).total));
        table.add_row(std::move(row));
    }

    auto footer = [&](const std::string& label, auto getter) {
        std::vector<std::string> row{label};
        for (Operator op : cols) row.push_back(getter(column_total(op)));
        row.push_back(getter(grand_total()));
        table.add_footer(std::move(row));
    };
    footer("#mutants", [](const Tally& t) { return std::to_string(t.total); });
    footer("#killed", [](const Tally& t) { return std::to_string(t.killed); });
    footer("#equivalent", [](const Tally& t) { return std::to_string(t.equivalent); });
    footer("Score", [](const Tally& t) { return support::percent(t.score()); });

    table.render(os);

    os << "kills by reason: crash=" << run.kills_by(oracle::KillReason::Crash)
       << "  assertion=" << run.kills_by(oracle::KillReason::Assertion)
       << "  illegal-quiescence="
       << run.kills_by(oracle::KillReason::IllegalQuiescence)
       << "  model-divergence=" << run.kills_by(oracle::KillReason::ModelDivergence)
       << "  output-diff=" << run.kills_by(oracle::KillReason::OutputDiff)
       << "  manual-oracle=" << run.kills_by(oracle::KillReason::ManualOracle) << "\n";
    os << "oracle strength: killed-only-by-model=" << run.kills_model_only()
       << "\n";

    std::size_t not_covered = 0;
    std::size_t killed_by_probe = 0;
    for (const auto& o : run.outcomes) {
        not_covered += o.fate == MutantFate::NotCovered ? 1 : 0;
        killed_by_probe += o.killed_by_probe ? 1 : 0;
    }
    os << "survivors: not-covered=" << not_covered
       << "  killable-but-missed=" << killed_by_probe
       << "  presumed-equivalent=" << run.equivalent() << "\n";
    // Only after a kill pass raised fates — absent otherwise, keeping
    // every pre-synthesis report byte-identical.
    if (run.kills_synthesized() > 0) {
        os << "raised by synthesis: " << run.kills_synthesized() << "\n";
    }
}

void MutationTable::render_csv(std::ostream& os) const {
    support::CsvWriter csv(os);
    csv.row({"method", "operator", "mutants", "killed", "equivalent", "score"});
    for (const auto& method : methods_) {
        for (Operator op : kExtendedOperators) {
            const Tally& c = cell(method, op);
            if (c.total == 0) continue;
            csv.row({method, to_string(op), std::to_string(c.total),
                     std::to_string(c.killed), std::to_string(c.equivalent),
                     std::to_string(c.score())});
        }
    }
}

void MutationTable::render_assertion_guidance(std::ostream& os,
                                               const MutationRun& run) {
    struct PerMethod {
        std::size_t killed = 0;
        std::size_t by_assertion = 0;
        std::size_t by_crash = 0;
    };
    std::map<std::string, PerMethod> methods;
    for (const auto& o : run.outcomes) {
        if (o.fate != MutantFate::Killed) continue;
        auto& m = methods[o.mutant->method->qualified_name()];
        ++m.killed;
        m.by_assertion += o.reason == oracle::KillReason::Assertion ? 1 : 0;
        m.by_crash += o.reason == oracle::KillReason::Crash ? 1 : 0;
    }

    support::TextTable table(
        {"Method", "kills", "via assertion", "via crash", "assertion share"});
    table.set_align(0, support::Align::Left);
    for (const auto& [name, m] : methods) {
        const double share = m.killed == 0
                                 ? 0.0
                                 : static_cast<double>(m.by_assertion) /
                                       static_cast<double>(m.killed);
        table.add_row({name, std::to_string(m.killed),
                       std::to_string(m.by_assertion), std::to_string(m.by_crash),
                       support::percent(share)});
    }
    table.render(os);
    os << "(methods with a low assertion share rely on the golden-output "
          "oracle; §5's ASSERT++ would point the producer at them for "
          "additional embedded assertions)\n";
}

void render_campaign_report(std::ostream& os, const MutationRun& run,
                            const std::string& class_name, std::size_t cases,
                            std::uint64_t seed) {
    os << "campaign: " << class_name << ", " << run.outcomes.size()
       << " mutant(s), " << cases << " case(s), seed " << seed << "\n"
       << "baseline clean: " << (run.baseline_clean ? "yes" : "no") << "\n\n";
    for (const auto& outcome : run.outcomes) {
        os << outcome.mutant->id() << "  " << to_string(outcome.fate);
        if (outcome.fate == MutantFate::Killed) {
            os << "  [" << oracle::to_string(outcome.reason) << "]";
            // The oracle-strength marker: the base oracle alone would
            // have let this mutant survive.  Only ever set under a
            // model oracle, so model-less reports are byte-unchanged.
            if (outcome.model_only) os << "  (model-only)";
            // Killed by a post-campaign synthesized test (stc::kill),
            // not by the generated suite.  Only ever set by a kill
            // pass, so pre-kill reports are byte-unchanged.
            if (outcome.synthesized) os << "  (synthesized)";
        }
        // Sandbox termination kind, set only for items whose isolated
        // worker died — absent everywhere else, so in-process,
        // isolated, and dispatched reports stay byte-identical for
        // non-crashing mutants.
        if (!outcome.sandbox.empty()) os << "  {" << outcome.sandbox << "}";
        os << "\n";
    }
    os << "\n";
    const MutationTable table = MutationTable::build(run);
    table.render(os, run);
    os << "\nscore: " << support::percent(run.score())
       << "  (covered-only: " << support::percent(run.covered_score()) << ")\n";
}

}  // namespace stc::mutation
