#include "stc/core/self_testable.h"

#include <sstream>

#include "stc/bit/assertions.h"

namespace stc::core {

std::string SelfTestReport::summary() const {
    std::ostringstream os;
    os << "self-test of " << suite.class_name << " (seed " << suite.seed << ")\n"
       << "  test model: " << suite.model_nodes << " node(s), " << suite.model_links
       << " link(s), " << suite.transactions_enumerated << " transaction(s)\n"
       << "  test cases: " << suite.size() << "\n"
       << "  passed:     " << result.passed() << "\n"
       << "  failed:     " << result.failed();
    if (result.failed() != 0) {
        os << "  (assertion=" << result.count(driver::Verdict::AssertionViolation)
           << ", crash=" << result.count(driver::Verdict::Crash)
           << ", exception=" << result.count(driver::Verdict::UncaughtException)
           << ", setup=" << result.count(driver::Verdict::SetupError) << ")";
    }
    os << "\n  assertions: " << assertions_checked << " checked, "
       << assertions_violated << " violated\n";
    return os.str();
}

SelfTestableComponent::SelfTestableComponent(tspec::ComponentSpec spec,
                                             reflect::ClassBinding binding)
    : spec_(std::move(spec)) {
    if (binding.name() != spec_.class_name) {
        throw SpecError("binding is for class '" + binding.name() +
                        "' but t-spec describes '" + spec_.class_name + "'");
    }
    registry_.add(std::move(binding));
}

void SelfTestableComponent::set_completions(driver::CompletionRegistry completions) {
    completions_ = std::move(completions);
}

driver::TestSuite SelfTestableComponent::generate_tests(
    driver::GeneratorOptions options) const {
    driver::DriverGenerator generator(spec_, options);
    if (completions_) generator.completions(&*completions_);
    return generator.generate();
}

SelfTestReport SelfTestableComponent::self_test(const driver::TestSuite& suite,
                                                driver::RunnerOptions runner) const {
    auto& stats = bit::AssertionStats::instance();
    const auto checked_before = stats.total_checked();
    const auto violated_before = stats.total_violated();

    SelfTestReport report;
    report.suite = suite;
    report.result = driver::TestRunner(registry_, runner).run(suite);
    report.assertions_checked = stats.total_checked() - checked_before;
    report.assertions_violated = stats.total_violated() - violated_before;
    return report;
}

SelfTestReport SelfTestableComponent::self_test(driver::GeneratorOptions options,
                                                driver::RunnerOptions runner) const {
    return self_test(generate_tests(options), runner);
}

history::IncrementalPlan SelfTestableComponent::incremental_plan(
    const driver::TestSuite& full_suite) const {
    const history::IncrementalPlanner planner(spec_);
    return planner.plan(full_suite);
}

}  // namespace stc::core
