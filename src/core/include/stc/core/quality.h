// Test-quality estimation.
//
// Related work the paper discusses (Le Traon et al., §5) attaches a
// mutation-analysis quality estimate to each self-test, "either to guide
// in the choice of a component, or to help reaching a test adequacy
// criteria".  This module provides that figure for any self-testable
// component whose substrate is instrumented with mutation descriptors:
// the suite's mutation score plus its kill/coverage breakdown.
#pragma once

#include "stc/core/self_testable.h"
#include "stc/mutation/engine.h"

namespace stc::core {

/// Quality of one test suite, measured by interface mutation.
struct TestQuality {
    std::size_t mutants = 0;
    std::size_t killed = 0;
    std::size_t equivalent = 0;
    std::size_t not_covered = 0;
    std::size_t kills_by_crash = 0;
    std::size_t kills_by_assertion = 0;
    std::size_t kills_by_output = 0;
    bool baseline_clean = false;

    /// The mutation score: killed / (mutants - equivalent).
    double score = 0.0;

    [[nodiscard]] std::string summary() const;
};

/// Estimate the quality of `suite` for `component` using the interface
/// mutants of the component's class found in `descriptors`.  The
/// optional probe suite separates equivalent mutants from missed ones
/// (see stc::mutation::MutationEngine).
[[nodiscard]] TestQuality estimate_quality(
    const SelfTestableComponent& component,
    const mutation::DescriptorRegistry& descriptors, const driver::TestSuite& suite,
    const driver::TestSuite* probe = nullptr, mutation::EngineOptions options = {});

}  // namespace stc::core
