// The self-testable component abstraction — the paper's §3.1 methodology
// as a public API.
//
// Producer side (performed once, by whoever ships the component):
//   1. construct the test model (TFM) and the t-spec, embed them;
//   2. instrument the class with BIT capabilities (inherit BuiltInTest,
//      add assertions) — done in the component's own code;
//   3. register the reflection binding so generated tests are executable.
//
// Consumer side (performed on every reuse):
//   1. generate test cases from the embedded t-spec;
//   2. compile in test mode (here: enter test mode at runtime);
//   3. execute the tests;
//   4. analyze the results.
// All four consumer tasks are one call: self_test().
#pragma once

#include <optional>
#include <string>

#include "stc/driver/generator.h"
#include "stc/driver/runner.h"
#include "stc/history/incremental.h"
#include "stc/reflect/class_binding.h"
#include "stc/tspec/model.h"

namespace stc::core {

/// Analysis summary of one self-test session (consumer task 4).
struct SelfTestReport {
    driver::TestSuite suite;     ///< what was generated
    driver::SuiteResult result;  ///< what happened
    std::uint64_t assertions_checked = 0;
    std::uint64_t assertions_violated = 0;

    [[nodiscard]] bool all_passed() const noexcept {
        return result.failed() == 0;
    }

    /// Human-readable summary block (model size, cases, verdict counts).
    [[nodiscard]] std::string summary() const;
};

/// A component bundled with its embedded test resources.
class SelfTestableComponent {
public:
    SelfTestableComponent(tspec::ComponentSpec spec, reflect::ClassBinding binding);

    [[nodiscard]] const tspec::ComponentSpec& spec() const noexcept { return spec_; }
    [[nodiscard]] const reflect::Registry& registry() const noexcept {
        return registry_;
    }

    /// Provide the tester's completions for structured parameters
    /// (consumer configuration; see §3.4.1).
    void set_completions(driver::CompletionRegistry completions);

    /// Consumer task 1: generate the test suite from the embedded t-spec.
    [[nodiscard]] driver::TestSuite generate_tests(
        driver::GeneratorOptions options = {}) const;

    /// Consumer tasks 2-4: execute a suite in test mode and analyze.
    [[nodiscard]] SelfTestReport self_test(const driver::TestSuite& suite,
                                           driver::RunnerOptions runner = {}) const;

    /// The whole consumer workflow in one call.
    [[nodiscard]] SelfTestReport self_test(driver::GeneratorOptions options = {},
                                           driver::RunnerOptions runner = {}) const;

    /// Derive the subclass's incremental suite per §3.4.2 (this
    /// component must be the subclass: its t-spec carries the
    /// inherited/redefined/new method categories).
    [[nodiscard]] history::IncrementalPlan incremental_plan(
        const driver::TestSuite& full_suite) const;

private:
    tspec::ComponentSpec spec_;
    reflect::Registry registry_;
    std::optional<driver::CompletionRegistry> completions_;
};

}  // namespace stc::core
