// Umbrella header: the complete public API of the Concat self-testable
// component framework.  Include this for everything, or the individual
// module headers for finer-grained dependencies.
#pragma once

// Foundations.
#include "stc/support/contracts.h"   // IWYU pragma: export
#include "stc/support/error.h"       // IWYU pragma: export
#include "stc/support/rng.h"         // IWYU pragma: export
#include "stc/support/strings.h"     // IWYU pragma: export
#include "stc/support/table.h"       // IWYU pragma: export

// Value domains and the t-spec.
#include "stc/domain/domain.h"       // IWYU pragma: export
#include "stc/domain/value.h"        // IWYU pragma: export
#include "stc/tspec/builder.h"       // IWYU pragma: export
#include "stc/tspec/model.h"         // IWYU pragma: export
#include "stc/tspec/parser.h"        // IWYU pragma: export

// Test models.
#include "stc/tfm/coverage.h"        // IWYU pragma: export
#include "stc/tfm/graph.h"           // IWYU pragma: export

// Built-in test capabilities.
#include "stc/bit/assertions.h"      // IWYU pragma: export
#include "stc/bit/built_in_test.h"   // IWYU pragma: export

// Reflection substitute and the driver.
#include "stc/driver/generator.h"    // IWYU pragma: export
#include "stc/driver/runner.h"       // IWYU pragma: export
#include "stc/driver/suite_io.h"     // IWYU pragma: export
#include "stc/driver/template_suite.h"  // IWYU pragma: export
#include "stc/reflect/binder.h"      // IWYU pragma: export
#include "stc/reflect/class_binding.h"  // IWYU pragma: export

// Oracles, history, mutation.
#include "stc/history/incremental.h"  // IWYU pragma: export
#include "stc/mutation/engine.h"      // IWYU pragma: export
#include "stc/mutation/report.h"      // IWYU pragma: export
#include "stc/oracle/golden_io.h"     // IWYU pragma: export
#include "stc/oracle/oracle.h"        // IWYU pragma: export

// The component facade.
#include "stc/core/quality.h"        // IWYU pragma: export
#include "stc/core/self_testable.h"  // IWYU pragma: export
