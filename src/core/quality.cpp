#include "stc/core/quality.h"

#include <sstream>

#include "stc/support/strings.h"

namespace stc::core {

std::string TestQuality::summary() const {
    std::ostringstream os;
    os << "test quality: score " << support::percent(score) << " (" << killed << "/"
       << (mutants - equivalent) << " non-equivalent mutants killed; " << equivalent
       << " equivalent, " << not_covered << " not covered)\n"
       << "  kills: crash=" << kills_by_crash << " assertion=" << kills_by_assertion
       << " output-diff=" << kills_by_output << "\n"
       << "  baseline " << (baseline_clean ? "clean" : "NOT CLEAN") << "\n";
    return os.str();
}

TestQuality estimate_quality(const SelfTestableComponent& component,
                             const mutation::DescriptorRegistry& descriptors,
                             const driver::TestSuite& suite,
                             const driver::TestSuite* probe,
                             mutation::EngineOptions options) {
    const auto mutants =
        mutation::enumerate_mutants(descriptors, component.spec().class_name);
    const mutation::MutationEngine engine(component.registry(), std::move(options));
    const mutation::MutationRun run = engine.run(suite, mutants, probe);

    TestQuality out;
    out.mutants = run.total();
    out.killed = run.killed();
    out.equivalent = run.equivalent();
    for (const auto& outcome : run.outcomes) {
        out.not_covered += outcome.fate == mutation::MutantFate::NotCovered ? 1 : 0;
    }
    out.kills_by_crash = run.kills_by(oracle::KillReason::Crash);
    out.kills_by_assertion = run.kills_by(oracle::KillReason::Assertion);
    out.kills_by_output = run.kills_by(oracle::KillReason::OutputDiff);
    out.baseline_clean = run.baseline_clean;
    out.score = run.score();
    return out;
}

}  // namespace stc::core
