// stc::wire — the framework's framing layer, shared by every byte
// stream a campaign crosses: the sandbox fork-server pipes (raw frames)
// and the `concat serve` / `concat dispatch` sockets (versioned
// messages).  docs/FORMATS.md §10 is the normative spec.
//
// Two codecs over one core:
//
//   raw frame      = u32le payload length | payload
//     The PR-4 pipe IPC, extracted verbatim from stc::sandbox.  Both
//     ends are forked from one binary, so the frame needs no identity.
//
//   message        = "STCW" magic | u8 version | u8 type | u32le length
//                    | payload
//     The socket wire protocol.  Peers are separate processes on
//     possibly different hosts and builds, so every frame carries the
//     magic (is this even our protocol?), the protocol version (can I
//     parse what follows?), and a message type (what is it?).
//
// Both decoders are incremental and tolerant of torn input: a frame cut
// short by a dying peer parks the decoder in NeedMore, never in a crash
// or an over-allocation, and a hostile or corrupt length prefix is a
// decode error, not a request for gigabytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace stc::wire {

/// Upper bound on any frame payload (raw or message).  A length prefix
/// above this is a protocol violation, not an allocation request.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

/// The 4 magic bytes opening every versioned message.
inline constexpr char kMagic[4] = {'S', 'T', 'C', 'W'};

/// Protocol version this build speaks.  Bumped on any change to the
/// header layout, the message-type table, or a payload schema.
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Protocol *minor* revision, negotiated at the JSON level (Hello /
/// HelloAck carry "proto_minor"; a peer that omits it is minor 1).
/// Additions that old peers can safely ignore — new optional payload
/// fields, new message types that are only sent once both sides have
/// announced support — bump the minor, not kProtocolVersion.  Minor 2
/// adds trace-context fields to Hello/Work and the Telemetry frame
/// (docs/FORMATS.md §11).  Minor 3 batches Telemetry: one frame may
/// carry many newline-joined JSON payloads (workers coalesce per work
/// item instead of paying a write() syscall per span, the fix for the
/// ~17x streaming-telemetry throughput cliff).  Batched frames are
/// only ever sent to a peer that announced minor >= 3; toward a
/// minor-2 peer the worker keeps emitting one payload per frame.
inline constexpr std::uint64_t kProtocolMinor = 3;

/// Fixed header size of a versioned message (magic + version + type +
/// u32le payload length).
inline constexpr std::size_t kMessageHeaderSize = 10;

/// Message types of protocol version 1 (docs/FORMATS.md §10).
/// Telemetry arrived with minor rev 2: it is only ever sent to a peer
/// that announced "proto_minor" >= 2 in the handshake, because a minor-1
/// decoder treats type 9 as BadType and poisons the stream.
enum class MessageType : std::uint8_t {
    Hello = 1,      ///< coordinator -> worker: campaign handshake
    HelloAck = 2,   ///< worker -> coordinator: accept / reject
    Work = 3,       ///< coordinator -> worker: one campaign work item
    Result = 4,     ///< worker -> coordinator: the item's outcome
    Ping = 5,       ///< coordinator -> worker: keepalive probe
    Pong = 6,       ///< worker -> coordinator: keepalive answer
    Error = 7,      ///< either direction: fatal protocol/handshake error
    Shutdown = 8,   ///< coordinator -> worker: campaign complete, close
    Telemetry = 9,  ///< worker -> coordinator: streamed obs event (minor 2)
};

/// True for the types above — a received type outside the table is a
/// decode error (a newer peer or stream corruption).
[[nodiscard]] bool message_type_known(std::uint8_t raw) noexcept;

[[nodiscard]] const char* to_string(MessageType type) noexcept;

// ---------------------------------------------------------------------
// Byte-level helpers (shared by both codecs and their tests).

/// Explicit little-endian u32, byte by byte — documentable and
/// independent of host endianness.
void encode_u32le(std::uint32_t value, unsigned char out[4]) noexcept;
[[nodiscard]] std::uint32_t decode_u32le(const unsigned char in[4]) noexcept;

/// write(2) exactly n bytes; loops over partial writes and EINTR.
/// False on error — most importantly EPIPE after the peer died (the
/// process must ignore or handle SIGPIPE; WorkerDaemon/Coordinator and
/// the sandbox pool all set that up).
[[nodiscard]] bool write_exact(int fd, const void* data,
                               std::size_t n) noexcept;

/// read(2) exactly n bytes; false on EOF or error.  `any_read` reports
/// whether at least one byte arrived (distinguishes clean EOF from a
/// torn frame).
[[nodiscard]] bool read_exact(int fd, void* data, std::size_t n,
                              bool* any_read) noexcept;

// ---------------------------------------------------------------------
// Raw frames — the sandbox pipe codec (length | payload).

[[nodiscard]] bool write_raw_frame(int fd, std::string_view payload) noexcept;

/// Blocking read of one raw frame.  std::nullopt on clean EOF, a torn
/// frame, or an oversized length prefix.
[[nodiscard]] std::optional<std::string> read_raw_frame(int fd);

/// Incremental raw-frame decoder (the sandbox parent's poll-loop side).
class RawFrameBuffer {
public:
    void feed(const char* data, std::size_t n);

    /// The next complete payload, or std::nullopt while one is pending.
    [[nodiscard]] std::optional<std::string> take_frame();

    /// True when the buffered length prefix exceeds kMaxFramePayload —
    /// unrecoverable; the owner should discard the peer.
    [[nodiscard]] bool oversized() const noexcept;

    [[nodiscard]] std::size_t pending_bytes() const noexcept {
        return bytes_.size();
    }

    void clear() noexcept { bytes_.clear(); }

private:
    std::vector<char> bytes_;
};

// ---------------------------------------------------------------------
// Versioned messages — the socket wire protocol.

struct Message {
    MessageType type = MessageType::Error;
    std::string payload;
};

/// Render one versioned message (header + payload) into a byte string.
[[nodiscard]] std::string encode_message(MessageType type,
                                         std::string_view payload);

/// Write one versioned message; false on I/O error or oversized payload.
[[nodiscard]] bool write_message(int fd, MessageType type,
                                 std::string_view payload) noexcept;

/// Blocking read of one versioned message.  std::nullopt on clean EOF,
/// torn input, bad magic/version/type, or an oversized length.
[[nodiscard]] std::optional<Message> read_message(int fd);

/// Incremental versioned-message decoder.
///
/// Feed bytes as they arrive; next() yields complete messages until the
/// buffer runs dry (NeedMore) or the stream proves unusable.  All error
/// states are terminal for the connection: framing has no resync point,
/// so the owner must close the peer — exactly what the coordinator's
/// dead-worker handling and the daemon's session teardown do.
class Decoder {
public:
    enum class Status {
        NeedMore,    ///< no complete message buffered yet
        Ok,          ///< a message was produced
        BadMagic,    ///< first 4 bytes are not "STCW" — not our protocol
        BadVersion,  ///< peer speaks a different protocol version
        BadType,     ///< version is ours but the type byte is unknown
        Oversized,   ///< length prefix exceeds kMaxFramePayload
    };

    void feed(const char* data, std::size_t n);
    void feed(std::string_view bytes) { feed(bytes.data(), bytes.size()); }

    /// Decode the next message.  After any error status the decoder is
    /// poisoned: further next() calls repeat the error.
    [[nodiscard]] Status next(Message* out);

    /// The version byte of a BadVersion stream (what the peer speaks).
    [[nodiscard]] std::uint8_t peer_version() const noexcept {
        return peer_version_;
    }

    [[nodiscard]] std::size_t pending_bytes() const noexcept {
        return bytes_.size();
    }

private:
    std::vector<char> bytes_;
    Status poisoned_ = Status::NeedMore;
    std::uint8_t peer_version_ = 0;
};

[[nodiscard]] const char* to_string(Decoder::Status status) noexcept;

}  // namespace stc::wire
