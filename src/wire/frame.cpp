#include "stc/wire/frame.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace stc::wire {

bool message_type_known(std::uint8_t raw) noexcept {
    return raw >= static_cast<std::uint8_t>(MessageType::Hello) &&
           raw <= static_cast<std::uint8_t>(MessageType::Telemetry);
}

const char* to_string(MessageType type) noexcept {
    switch (type) {
        case MessageType::Hello: return "hello";
        case MessageType::HelloAck: return "hello-ack";
        case MessageType::Work: return "work";
        case MessageType::Result: return "result";
        case MessageType::Ping: return "ping";
        case MessageType::Pong: return "pong";
        case MessageType::Error: return "error";
        case MessageType::Shutdown: return "shutdown";
        case MessageType::Telemetry: return "telemetry";
    }
    return "?";
}

const char* to_string(Decoder::Status status) noexcept {
    switch (status) {
        case Decoder::Status::NeedMore: return "need-more";
        case Decoder::Status::Ok: return "ok";
        case Decoder::Status::BadMagic: return "bad-magic";
        case Decoder::Status::BadVersion: return "bad-version";
        case Decoder::Status::BadType: return "bad-type";
        case Decoder::Status::Oversized: return "oversized";
    }
    return "?";
}

void encode_u32le(std::uint32_t value, unsigned char out[4]) noexcept {
    out[0] = static_cast<unsigned char>(value & 0xff);
    out[1] = static_cast<unsigned char>((value >> 8) & 0xff);
    out[2] = static_cast<unsigned char>((value >> 16) & 0xff);
    out[3] = static_cast<unsigned char>((value >> 24) & 0xff);
}

std::uint32_t decode_u32le(const unsigned char in[4]) noexcept {
    return static_cast<std::uint32_t>(in[0]) |
           (static_cast<std::uint32_t>(in[1]) << 8) |
           (static_cast<std::uint32_t>(in[2]) << 16) |
           (static_cast<std::uint32_t>(in[3]) << 24);
}

bool write_exact(int fd, const void* data, std::size_t n) noexcept {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
        const ssize_t written = ::write(fd, p, n);
        if (written < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        p += written;
        n -= static_cast<std::size_t>(written);
    }
    return true;
}

bool read_exact(int fd, void* data, std::size_t n, bool* any_read) noexcept {
    char* p = static_cast<char*>(data);
    while (n > 0) {
        const ssize_t got = ::read(fd, p, n);
        if (got < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (got == 0) return false;  // EOF
        if (any_read != nullptr) *any_read = true;
        p += got;
        n -= static_cast<std::size_t>(got);
    }
    return true;
}

// ---------------------------------------------------------------------
// Raw frames.

bool write_raw_frame(int fd, std::string_view payload) noexcept {
    if (payload.size() > kMaxFramePayload) return false;
    unsigned char header[4];
    encode_u32le(static_cast<std::uint32_t>(payload.size()), header);
    if (!write_exact(fd, header, sizeof header)) return false;
    return write_exact(fd, payload.data(), payload.size());
}

std::optional<std::string> read_raw_frame(int fd) {
    unsigned char header[4];
    bool any_read = false;
    if (!read_exact(fd, header, sizeof header, &any_read)) return std::nullopt;
    const std::uint32_t length = decode_u32le(header);
    if (length > kMaxFramePayload) return std::nullopt;
    std::string payload(length, '\0');
    if (length > 0 && !read_exact(fd, payload.data(), length, nullptr)) {
        return std::nullopt;
    }
    return payload;
}

void RawFrameBuffer::feed(const char* data, std::size_t n) {
    bytes_.insert(bytes_.end(), data, data + n);
}

bool RawFrameBuffer::oversized() const noexcept {
    if (bytes_.size() < 4) return false;
    unsigned char header[4];
    std::memcpy(header, bytes_.data(), 4);
    return decode_u32le(header) > kMaxFramePayload;
}

std::optional<std::string> RawFrameBuffer::take_frame() {
    if (bytes_.size() < 4) return std::nullopt;
    unsigned char header[4];
    std::memcpy(header, bytes_.data(), 4);
    const std::uint32_t length = decode_u32le(header);
    if (length > kMaxFramePayload) return std::nullopt;  // see oversized()
    if (bytes_.size() < 4u + length) return std::nullopt;
    std::string payload(bytes_.begin() + 4, bytes_.begin() + 4 + length);
    bytes_.erase(bytes_.begin(), bytes_.begin() + 4 + length);
    return payload;
}

// ---------------------------------------------------------------------
// Versioned messages.

std::string encode_message(MessageType type, std::string_view payload) {
    std::string out;
    out.reserve(kMessageHeaderSize + payload.size());
    out.append(kMagic, sizeof kMagic);
    out.push_back(static_cast<char>(kProtocolVersion));
    out.push_back(static_cast<char>(type));
    unsigned char length[4];
    encode_u32le(static_cast<std::uint32_t>(payload.size()), length);
    out.append(reinterpret_cast<const char*>(length), sizeof length);
    out.append(payload);
    return out;
}

bool write_message(int fd, MessageType type, std::string_view payload) noexcept {
    if (payload.size() > kMaxFramePayload) return false;
    const std::string frame = encode_message(type, payload);
    return write_exact(fd, frame.data(), frame.size());
}

std::optional<Message> read_message(int fd) {
    unsigned char header[kMessageHeaderSize];
    bool any_read = false;
    if (!read_exact(fd, header, sizeof header, &any_read)) return std::nullopt;
    if (std::memcmp(header, kMagic, sizeof kMagic) != 0) return std::nullopt;
    if (header[4] != kProtocolVersion) return std::nullopt;
    if (!message_type_known(header[5])) return std::nullopt;
    const std::uint32_t length = decode_u32le(header + 6);
    if (length > kMaxFramePayload) return std::nullopt;
    Message message;
    message.type = static_cast<MessageType>(header[5]);
    message.payload.resize(length);
    if (length > 0 &&
        !read_exact(fd, message.payload.data(), length, nullptr)) {
        return std::nullopt;
    }
    return message;
}

void Decoder::feed(const char* data, std::size_t n) {
    bytes_.insert(bytes_.end(), data, data + n);
}

Decoder::Status Decoder::next(Message* out) {
    if (poisoned_ != Status::NeedMore) return poisoned_;
    // Validate the header prefix byte-by-byte as soon as the bytes
    // exist, so a bad peer is rejected before its length field is even
    // complete — tolerant of torn input, intolerant of wrong input.
    const std::size_t have = bytes_.size();
    for (std::size_t i = 0; i < sizeof kMagic && i < have; ++i) {
        if (bytes_[i] != kMagic[i]) return poisoned_ = Status::BadMagic;
    }
    if (have >= 5) {
        const auto version = static_cast<std::uint8_t>(bytes_[4]);
        if (version != kProtocolVersion) {
            peer_version_ = version;
            return poisoned_ = Status::BadVersion;
        }
    }
    if (have >= 6 &&
        !message_type_known(static_cast<std::uint8_t>(bytes_[5]))) {
        return poisoned_ = Status::BadType;
    }
    if (have < kMessageHeaderSize) return Status::NeedMore;
    unsigned char length_bytes[4];
    std::memcpy(length_bytes, bytes_.data() + 6, 4);
    const std::uint32_t length = decode_u32le(length_bytes);
    if (length > kMaxFramePayload) return poisoned_ = Status::Oversized;
    if (have < kMessageHeaderSize + length) return Status::NeedMore;
    out->type = static_cast<MessageType>(static_cast<std::uint8_t>(bytes_[5]));
    out->payload.assign(bytes_.begin() + kMessageHeaderSize,
                        bytes_.begin() + kMessageHeaderSize + length);
    bytes_.erase(bytes_.begin(),
                 bytes_.begin() + kMessageHeaderSize + length);
    return Status::Ok;
}

}  // namespace stc::wire
