#include "stc/obs/jsonl_sink.h"

#include "stc/support/error.h"

namespace stc::obs {

JsonlSink JsonlSink::to_file(const std::string& path, OpenMode mode) {
    JsonlSink sink;
    sink.state_ = std::make_shared<State>();
    sink.state_->file.open(
        path, mode == OpenMode::Append ? std::ios::app : std::ios::trunc);
    if (!sink.state_->file) {
        throw Error("cannot open telemetry file: " + path);
    }
    sink.out_ = &sink.state_->file;
    return sink;
}

JsonlSink JsonlSink::to_stream(std::ostream& os) {
    JsonlSink sink;
    sink.state_ = std::make_shared<State>();
    sink.out_ = &os;
    return sink;
}

void JsonlSink::emit(JsonObject event) {
    if (out_ == nullptr) return;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    event.set("seq", state_->next_seq++);
    *out_ << event.to_line() << '\n';
    out_->flush();
}

std::uint64_t JsonlSink::count() const noexcept {
    if (state_ == nullptr) return 0;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->next_seq;
}

}  // namespace stc::obs
