#include "stc/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

namespace stc::obs {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

std::string hex16(std::uint64_t value) {
    char buffer[17];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(value));
    return std::string(buffer, 16);
}

std::uint64_t from_hex16(std::string_view text) {
    return std::strtoull(std::string(text).c_str(), nullptr, 16);
}

struct Tracer::State {
    struct ThreadData {
        int tid = 0;
        std::uint64_t next_seq = 0;
        std::vector<std::uint64_t> open;  ///< span-id stack (LIFO per thread)
    };

    std::mutex mutex;
    Clock::time_point epoch = Clock::now();
    int actor = 0;
    std::uint64_t trace_id = 0;
    std::map<std::thread::id, ThreadData> threads;
    std::vector<TraceEvent> events;

    ThreadData& self() {  // callers hold the mutex
        const auto [it, inserted] =
            threads.try_emplace(std::this_thread::get_id());
        if (inserted) it->second.tid = static_cast<int>(threads.size()) - 1;
        return it->second;
    }

    [[nodiscard]] std::uint64_t us_since_epoch(Clock::time_point t) const {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t - epoch)
                .count());
    }
};

Tracer Tracer::make(int actor) {
    Tracer tracer;
    tracer.state_ = std::make_shared<State>();
    tracer.state_->actor = actor;
    return tracer;
}

int Tracer::actor() const noexcept {
    return state_ == nullptr ? 0 : state_->actor;
}

Tracer::Span Tracer::begin(std::string_view category, std::string_view name,
                           JsonObject args) const {
    return begin_with_parent(category, name, 0, std::move(args));
}

Tracer::Span Tracer::begin_with_parent(std::string_view category,
                                       std::string_view name,
                                       std::uint64_t parent,
                                       JsonObject args) const {
    Span span;
    if (state_ == nullptr) return span;  // inert: tid stays -1

    const std::lock_guard<std::mutex> lock(state_->mutex);
    State::ThreadData& self = state_->self();
    span.tid = self.tid;
    // The actor ordinal occupies the top bits so the id's deterministic
    // inputs are globally unique across the processes of one campaign:
    // same (actor, tid, seq) -> same id, different actor -> different id.
    span.id = mix64((static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(state_->actor))
                     << 48u) ^
                    (static_cast<std::uint64_t>(self.tid) << 40u) ^
                    self.next_seq++);
    span.parent_override = parent;
    span.name = std::string(name);
    span.category = std::string(category);
    span.args = std::move(args);
    self.open.push_back(span.id);
    span.start_us = state_->us_since_epoch(Clock::now());
    return span;
}

void Tracer::end(Span&& span) const {
    if (state_ == nullptr || span.tid < 0) return;
    const std::uint64_t now_us = state_->us_since_epoch(Clock::now());

    const std::lock_guard<std::mutex> lock(state_->mutex);
    State::ThreadData& self = state_->self();
    if (!self.open.empty() && self.open.back() == span.id) self.open.pop_back();

    TraceEvent event;
    event.name = std::move(span.name);
    event.category = std::move(span.category);
    event.ts_us = span.start_us;
    event.dur_us = now_us >= span.start_us ? now_us - span.start_us : 0;
    event.tid = span.tid;
    event.actor = state_->actor;
    event.span_id = span.id;
    event.parent_id = span.parent_override != 0
                          ? span.parent_override
                          : (self.open.empty() ? 0 : self.open.back());
    event.args = std::move(span.args);
    state_->events.push_back(std::move(event));
}

void Tracer::absorb(TraceEvent event) const {
    if (state_ == nullptr) return;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->events.push_back(std::move(event));
}

void Tracer::set_trace_id(std::uint64_t id) const {
    if (state_ == nullptr) return;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->trace_id = id;
}

std::uint64_t Tracer::trace_id() const {
    if (state_ == nullptr) return 0;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->trace_id;
}

std::uint64_t Tracer::now_us() const {
    if (state_ == nullptr) return 0;
    return state_->us_since_epoch(Clock::now());
}

std::size_t Tracer::event_count() const {
    if (state_ == nullptr) return 0;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->events.size();
}

std::vector<TraceEvent> Tracer::events() const {
    if (state_ == nullptr) return {};
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->events;
}

std::vector<TraceEvent> Tracer::events_from(std::size_t cursor) const {
    if (state_ == nullptr) return {};
    const std::lock_guard<std::mutex> lock(state_->mutex);
    if (cursor >= state_->events.size()) return {};
    return std::vector<TraceEvent>(state_->events.begin() +
                                       static_cast<std::ptrdiff_t>(cursor),
                                   state_->events.end());
}

void Tracer::write_chrome_trace(std::ostream& os) const {
    const std::vector<TraceEvent> snapshot = events();
    const std::uint64_t id = trace_id();
    os << "{";
    if (id != 0) os << "\"traceId\":\"" << hex16(id) << "\",";
    os << "\"traceEvents\":[\n";
    bool first = true;
    for (const TraceEvent& e : snapshot) {
        if (!first) os << ",\n";
        first = false;
        // The ids travel inside args (Chrome ignores unknown arg keys;
        // parse_chrome_trace and the round-trip tests read them back).
        JsonObject args = e.args;
        args.set("span", hex16(e.span_id));
        if (e.parent_id != 0) args.set("parent", hex16(e.parent_id));
        os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
           << json_escape(e.category) << "\",\"ph\":\"X\",\"ts\":" << e.ts_us
           << ",\"dur\":" << e.dur_us << ",\"pid\":" << (e.actor + 1)
           << ",\"tid\":" << e.tid << ",\"args\":" << args.to_line() << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

SpanScope::SpanScope(const Tracer& tracer, std::string_view category,
                     std::string_view name, JsonObject args)
    : tracer_(tracer) {
    if (tracer_.enabled()) {
        span_ = tracer_.begin(category, name, std::move(args));
    }
}

SpanScope::SpanScope(const Tracer& tracer, std::string_view category,
                     std::string_view name, std::uint64_t parent,
                     JsonObject args)
    : tracer_(tracer) {
    if (tracer_.enabled()) {
        span_ = tracer_.begin_with_parent(category, name, parent,
                                          std::move(args));
    }
}

SpanScope::~SpanScope() { tracer_.end(std::move(span_)); }

// ------------------------------------------------- wire/JSONL form

JsonObject trace_event_to_json(const TraceEvent& event) {
    JsonObject object;
    object.set("name", event.name)
        .set("cat", event.category)
        .set("ts", event.ts_us)
        .set("dur", event.dur_us)
        .set("tid", event.tid)
        .set("actor", event.actor)
        .set("span", hex16(event.span_id));
    if (event.parent_id != 0) object.set("parent", hex16(event.parent_id));
    // The args object rides as one JSON-encoded string: JsonObject is
    // deliberately flat, and the frame payload is itself a JsonObject.
    if (event.args.size() > 0) object.set("args", event.args.to_line());
    return object;
}

std::optional<TraceEvent> trace_event_from_json(const JsonObject& object) {
    const auto name = object.get_string("name");
    const auto cat = object.get_string("cat");
    const auto ts = object.get_uint("ts");
    const auto dur = object.get_uint("dur");
    const auto tid = object.get_int("tid");
    const auto actor = object.get_int("actor");
    const auto span = object.get_string("span");
    if (!name || !cat || !ts || !dur || !tid || !actor || !span) {
        return std::nullopt;
    }
    TraceEvent event;
    event.name = *name;
    event.category = *cat;
    event.ts_us = *ts;
    event.dur_us = *dur;
    event.tid = static_cast<int>(*tid);
    event.actor = static_cast<int>(*actor);
    event.span_id = from_hex16(*span);
    if (const auto parent = object.get_string("parent")) {
        event.parent_id = from_hex16(*parent);
    }
    if (const auto args = object.get_string("args")) {
        auto parsed = JsonObject::parse(*args);
        if (!parsed) return std::nullopt;
        event.args = std::move(*parsed);
    }
    return event;
}

// ---------------------------------------------------------- parsing

namespace {

/// One past the end of the balanced {...} starting at `start`
/// (text[start] must be '{'), honoring string literals and escapes.
std::optional<std::size_t> balanced_object_end(std::string_view text,
                                               std::size_t start) {
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = start; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\') ++i;
            else if (c == '"') in_string = false;
            continue;
        }
        if (c == '"') in_string = true;
        else if (c == '{') ++depth;
        else if (c == '}' && --depth == 0) return i + 1;
    }
    return std::nullopt;
}

/// One past the closing quote of the string literal starting at `start`
/// (text[start] must be '"').
std::optional<std::size_t> string_end(std::string_view text,
                                      std::size_t start) {
    for (std::size_t i = start + 1; i < text.size(); ++i) {
        if (text[i] == '\\') ++i;
        else if (text[i] == '"') return i + 1;
    }
    return std::nullopt;
}

void skip_ws(std::string_view text, std::size_t& pos) {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
        ++pos;
    }
}

/// Parse one emitted event object: every field flat except the one
/// optional "args" sub-object.  The flat fields are reassembled into a
/// single line for JsonObject::parse so value parsing stays in one
/// place.
std::optional<TraceEvent> parse_event(std::string_view obj) {
    std::size_t pos = 0;
    skip_ws(obj, pos);
    if (pos >= obj.size() || obj[pos] != '{') return std::nullopt;
    ++pos;

    std::string flat = "{";
    std::optional<JsonObject> args;
    bool first = true;
    while (true) {
        skip_ws(obj, pos);
        if (pos < obj.size() && obj[pos] == '}') break;
        if (pos >= obj.size() || obj[pos] != '"') return std::nullopt;
        const auto key_end = string_end(obj, pos);
        if (!key_end) return std::nullopt;
        const std::string_view key = obj.substr(pos, *key_end - pos);
        pos = *key_end;
        skip_ws(obj, pos);
        if (pos >= obj.size() || obj[pos] != ':') return std::nullopt;
        ++pos;
        skip_ws(obj, pos);
        if (pos >= obj.size()) return std::nullopt;

        if (obj[pos] == '{') {
            const auto value_end = balanced_object_end(obj, pos);
            if (!value_end || key != "\"args\"") return std::nullopt;
            args = JsonObject::parse(obj.substr(pos, *value_end - pos));
            if (!args) return std::nullopt;
            pos = *value_end;
        } else {
            std::size_t value_end = pos;
            if (obj[pos] == '"') {
                const auto e = string_end(obj, pos);
                if (!e) return std::nullopt;
                value_end = *e;
            } else {
                while (value_end < obj.size() && obj[value_end] != ',' &&
                       obj[value_end] != '}') {
                    ++value_end;
                }
            }
            if (!first) flat += ',';
            flat += std::string(key) + ":" +
                    std::string(obj.substr(pos, value_end - pos));
            first = false;
            pos = value_end;
        }

        skip_ws(obj, pos);
        if (pos < obj.size() && obj[pos] == ',') {
            ++pos;
            continue;
        }
        if (pos < obj.size() && obj[pos] == '}') break;
        return std::nullopt;
    }
    flat += '}';

    const auto fields = JsonObject::parse(flat);
    if (!fields) return std::nullopt;
    const auto name = fields->get_string("name");
    const auto cat = fields->get_string("cat");
    const auto ph = fields->get_string("ph");
    const auto ts = fields->get_uint("ts");
    const auto dur = fields->get_uint("dur");
    const auto tid = fields->get_int("tid");
    const auto pid = fields->get_int("pid");
    if (!name || !cat || !ph || *ph != "X" || !ts || !dur || !tid || !pid) {
        return std::nullopt;
    }

    TraceEvent event;
    event.name = *name;
    event.category = *cat;
    event.ts_us = *ts;
    event.dur_us = *dur;
    event.tid = static_cast<int>(*tid);
    event.actor = static_cast<int>(*pid) - 1;
    if (args) {
        if (const auto span = args->get_string("span")) {
            event.span_id = from_hex16(*span);
        }
        if (const auto parent = args->get_string("parent")) {
            event.parent_id = from_hex16(*parent);
        }
        event.args = std::move(*args);
    }
    return event;
}

}  // namespace

std::optional<std::vector<TraceEvent>> parse_chrome_trace(std::istream& is) {
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string text = buffer.str();

    const std::size_t key = text.find("\"traceEvents\"");
    if (key == std::string::npos) return std::nullopt;
    std::size_t pos = text.find('[', key);
    if (pos == std::string::npos) return std::nullopt;
    ++pos;

    std::vector<TraceEvent> events;
    while (true) {
        skip_ws(text, pos);
        if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
        }
        if (pos < text.size() && text[pos] == ']') break;
        if (pos >= text.size() || text[pos] != '{') return std::nullopt;
        const auto end = balanced_object_end(text, pos);
        if (!end) return std::nullopt;
        auto event = parse_event(std::string_view(text).substr(pos, *end - pos));
        if (!event) return std::nullopt;
        events.push_back(std::move(*event));
        pos = *end;
    }
    return events;
}

}  // namespace stc::obs
