#include "stc/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

namespace stc::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// splitmix64 finalizer — decorrelates (tid, seq) pairs into well-mixed
/// span ids.  Same construction as the campaign's seed derivation, kept
/// local so obs stays below campaign in the layering.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::string hex16(std::uint64_t value) {
    char buffer[17];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(value));
    return std::string(buffer, 16);
}

std::uint64_t from_hex16(std::string_view text) {
    return std::strtoull(std::string(text).c_str(), nullptr, 16);
}

}  // namespace

struct Tracer::State {
    struct ThreadData {
        int tid = 0;
        std::uint64_t next_seq = 0;
        std::vector<std::uint64_t> open;  ///< span-id stack (LIFO per thread)
    };

    std::mutex mutex;
    Clock::time_point epoch = Clock::now();
    std::map<std::thread::id, ThreadData> threads;
    std::vector<TraceEvent> events;

    ThreadData& self() {  // callers hold the mutex
        const auto [it, inserted] =
            threads.try_emplace(std::this_thread::get_id());
        if (inserted) it->second.tid = static_cast<int>(threads.size()) - 1;
        return it->second;
    }

    [[nodiscard]] std::uint64_t us_since_epoch(Clock::time_point t) const {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t - epoch)
                .count());
    }
};

Tracer Tracer::make() {
    Tracer tracer;
    tracer.state_ = std::make_shared<State>();
    return tracer;
}

Tracer::Span Tracer::begin(std::string_view category, std::string_view name,
                           JsonObject args) const {
    Span span;
    if (state_ == nullptr) return span;  // inert: tid stays -1

    const std::lock_guard<std::mutex> lock(state_->mutex);
    State::ThreadData& self = state_->self();
    span.tid = self.tid;
    span.id = mix64((static_cast<std::uint64_t>(self.tid) << 40u) ^
                    self.next_seq++);
    span.name = std::string(name);
    span.category = std::string(category);
    span.args = std::move(args);
    self.open.push_back(span.id);
    span.start_us = state_->us_since_epoch(Clock::now());
    return span;
}

void Tracer::end(Span&& span) const {
    if (state_ == nullptr || span.tid < 0) return;
    const std::uint64_t now_us = state_->us_since_epoch(Clock::now());

    const std::lock_guard<std::mutex> lock(state_->mutex);
    State::ThreadData& self = state_->self();
    if (!self.open.empty() && self.open.back() == span.id) self.open.pop_back();

    TraceEvent event;
    event.name = std::move(span.name);
    event.category = std::move(span.category);
    event.ts_us = span.start_us;
    event.dur_us = now_us >= span.start_us ? now_us - span.start_us : 0;
    event.tid = span.tid;
    event.span_id = span.id;
    event.parent_id = self.open.empty() ? 0 : self.open.back();
    event.args = std::move(span.args);
    state_->events.push_back(std::move(event));
}

std::size_t Tracer::event_count() const {
    if (state_ == nullptr) return 0;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->events.size();
}

std::vector<TraceEvent> Tracer::events() const {
    if (state_ == nullptr) return {};
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->events;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
    const std::vector<TraceEvent> snapshot = events();
    os << "{\"traceEvents\":[\n";
    bool first = true;
    for (const TraceEvent& e : snapshot) {
        if (!first) os << ",\n";
        first = false;
        // The ids travel inside args (Chrome ignores unknown arg keys;
        // parse_chrome_trace and the round-trip tests read them back).
        JsonObject args = e.args;
        args.set("span", hex16(e.span_id));
        if (e.parent_id != 0) args.set("parent", hex16(e.parent_id));
        os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
           << json_escape(e.category) << "\",\"ph\":\"X\",\"ts\":" << e.ts_us
           << ",\"dur\":" << e.dur_us << ",\"pid\":1,\"tid\":" << e.tid
           << ",\"args\":" << args.to_line() << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

SpanScope::SpanScope(const Tracer& tracer, std::string_view category,
                     std::string_view name, JsonObject args)
    : tracer_(tracer) {
    if (tracer_.enabled()) {
        span_ = tracer_.begin(category, name, std::move(args));
    }
}

SpanScope::~SpanScope() { tracer_.end(std::move(span_)); }

// ---------------------------------------------------------- parsing

namespace {

/// One past the end of the balanced {...} starting at `start`
/// (text[start] must be '{'), honoring string literals and escapes.
std::optional<std::size_t> balanced_object_end(std::string_view text,
                                               std::size_t start) {
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = start; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\') ++i;
            else if (c == '"') in_string = false;
            continue;
        }
        if (c == '"') in_string = true;
        else if (c == '{') ++depth;
        else if (c == '}' && --depth == 0) return i + 1;
    }
    return std::nullopt;
}

/// One past the closing quote of the string literal starting at `start`
/// (text[start] must be '"').
std::optional<std::size_t> string_end(std::string_view text,
                                      std::size_t start) {
    for (std::size_t i = start + 1; i < text.size(); ++i) {
        if (text[i] == '\\') ++i;
        else if (text[i] == '"') return i + 1;
    }
    return std::nullopt;
}

void skip_ws(std::string_view text, std::size_t& pos) {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
        ++pos;
    }
}

/// Parse one emitted event object: every field flat except the one
/// optional "args" sub-object.  The flat fields are reassembled into a
/// single line for JsonObject::parse so value parsing stays in one
/// place.
std::optional<TraceEvent> parse_event(std::string_view obj) {
    std::size_t pos = 0;
    skip_ws(obj, pos);
    if (pos >= obj.size() || obj[pos] != '{') return std::nullopt;
    ++pos;

    std::string flat = "{";
    std::optional<JsonObject> args;
    bool first = true;
    while (true) {
        skip_ws(obj, pos);
        if (pos < obj.size() && obj[pos] == '}') break;
        if (pos >= obj.size() || obj[pos] != '"') return std::nullopt;
        const auto key_end = string_end(obj, pos);
        if (!key_end) return std::nullopt;
        const std::string_view key = obj.substr(pos, *key_end - pos);
        pos = *key_end;
        skip_ws(obj, pos);
        if (pos >= obj.size() || obj[pos] != ':') return std::nullopt;
        ++pos;
        skip_ws(obj, pos);
        if (pos >= obj.size()) return std::nullopt;

        if (obj[pos] == '{') {
            const auto value_end = balanced_object_end(obj, pos);
            if (!value_end || key != "\"args\"") return std::nullopt;
            args = JsonObject::parse(obj.substr(pos, *value_end - pos));
            if (!args) return std::nullopt;
            pos = *value_end;
        } else {
            std::size_t value_end = pos;
            if (obj[pos] == '"') {
                const auto e = string_end(obj, pos);
                if (!e) return std::nullopt;
                value_end = *e;
            } else {
                while (value_end < obj.size() && obj[value_end] != ',' &&
                       obj[value_end] != '}') {
                    ++value_end;
                }
            }
            if (!first) flat += ',';
            flat += std::string(key) + ":" +
                    std::string(obj.substr(pos, value_end - pos));
            first = false;
            pos = value_end;
        }

        skip_ws(obj, pos);
        if (pos < obj.size() && obj[pos] == ',') {
            ++pos;
            continue;
        }
        if (pos < obj.size() && obj[pos] == '}') break;
        return std::nullopt;
    }
    flat += '}';

    const auto fields = JsonObject::parse(flat);
    if (!fields) return std::nullopt;
    const auto name = fields->get_string("name");
    const auto cat = fields->get_string("cat");
    const auto ph = fields->get_string("ph");
    const auto ts = fields->get_uint("ts");
    const auto dur = fields->get_uint("dur");
    const auto tid = fields->get_int("tid");
    if (!name || !cat || !ph || *ph != "X" || !ts || !dur || !tid ||
        !fields->has("pid")) {
        return std::nullopt;
    }

    TraceEvent event;
    event.name = *name;
    event.category = *cat;
    event.ts_us = *ts;
    event.dur_us = *dur;
    event.tid = static_cast<int>(*tid);
    if (args) {
        if (const auto span = args->get_string("span")) {
            event.span_id = from_hex16(*span);
        }
        if (const auto parent = args->get_string("parent")) {
            event.parent_id = from_hex16(*parent);
        }
        event.args = std::move(*args);
    }
    return event;
}

}  // namespace

std::optional<std::vector<TraceEvent>> parse_chrome_trace(std::istream& is) {
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string text = buffer.str();

    const std::size_t key = text.find("\"traceEvents\"");
    if (key == std::string::npos) return std::nullopt;
    std::size_t pos = text.find('[', key);
    if (pos == std::string::npos) return std::nullopt;
    ++pos;

    std::vector<TraceEvent> events;
    while (true) {
        skip_ws(text, pos);
        if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
        }
        if (pos < text.size() && text[pos] == ']') break;
        if (pos >= text.size() || text[pos] != '{') return std::nullopt;
        const auto end = balanced_object_end(text, pos);
        if (!end) return std::nullopt;
        auto event = parse_event(std::string_view(text).substr(pos, *end - pos));
        if (!event) return std::nullopt;
        events.push_back(std::move(*event));
        pos = *end;
    }
    return events;
}

}  // namespace stc::obs
