#include "stc/obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace stc::obs {

std::string json_escape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof buffer, "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buffer;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

JsonObject& JsonObject::set(std::string key, std::string value) {
    fields_.emplace_back(std::move(key), Value(std::move(value)));
    return *this;
}
JsonObject& JsonObject::set(std::string key, const char* value) {
    return set(std::move(key), std::string(value));
}
JsonObject& JsonObject::set(std::string key, bool value) {
    fields_.emplace_back(std::move(key), Value(value));
    return *this;
}
JsonObject& JsonObject::set(std::string key, std::int64_t value) {
    fields_.emplace_back(std::move(key), Value(value));
    return *this;
}
JsonObject& JsonObject::set(std::string key, std::uint64_t value) {
    fields_.emplace_back(std::move(key), Value(value));
    return *this;
}
JsonObject& JsonObject::set(std::string key, double value) {
    fields_.emplace_back(std::move(key), Value(value));
    return *this;
}

const JsonObject::Value* JsonObject::find(std::string_view key) const noexcept {
    for (const auto& [k, v] : fields_) {
        if (k == key) return &v;
    }
    return nullptr;
}

std::optional<std::string> JsonObject::get_string(std::string_view key) const {
    const Value* v = find(key);
    if (v == nullptr || !std::holds_alternative<std::string>(*v)) return {};
    return std::get<std::string>(*v);
}

std::optional<std::int64_t> JsonObject::get_int(std::string_view key) const {
    const Value* v = find(key);
    if (v == nullptr) return {};
    if (std::holds_alternative<std::int64_t>(*v)) return std::get<std::int64_t>(*v);
    if (std::holds_alternative<std::uint64_t>(*v)) {
        const auto u = std::get<std::uint64_t>(*v);
        if (u <= static_cast<std::uint64_t>(
                     std::numeric_limits<std::int64_t>::max())) {
            return static_cast<std::int64_t>(u);
        }
    }
    return {};
}

std::optional<std::uint64_t> JsonObject::get_uint(std::string_view key) const {
    const Value* v = find(key);
    if (v == nullptr) return {};
    if (std::holds_alternative<std::uint64_t>(*v)) return std::get<std::uint64_t>(*v);
    if (std::holds_alternative<std::int64_t>(*v)) {
        const auto i = std::get<std::int64_t>(*v);
        if (i >= 0) return static_cast<std::uint64_t>(i);
    }
    return {};
}

std::optional<double> JsonObject::get_double(std::string_view key) const {
    const Value* v = find(key);
    if (v == nullptr) return {};
    if (std::holds_alternative<double>(*v)) return std::get<double>(*v);
    if (std::holds_alternative<std::int64_t>(*v)) {
        return static_cast<double>(std::get<std::int64_t>(*v));
    }
    if (std::holds_alternative<std::uint64_t>(*v)) {
        return static_cast<double>(std::get<std::uint64_t>(*v));
    }
    return {};
}

std::optional<bool> JsonObject::get_bool(std::string_view key) const {
    const Value* v = find(key);
    if (v == nullptr || !std::holds_alternative<bool>(*v)) return {};
    return std::get<bool>(*v);
}

namespace {

void render_value(std::ostringstream& os, const JsonObject::Value& value) {
    if (std::holds_alternative<bool>(value)) {
        os << (std::get<bool>(value) ? "true" : "false");
    } else if (std::holds_alternative<std::int64_t>(value)) {
        os << std::get<std::int64_t>(value);
    } else if (std::holds_alternative<std::uint64_t>(value)) {
        os << std::get<std::uint64_t>(value);
    } else if (std::holds_alternative<double>(value)) {
        const double d = std::get<double>(value);
        if (std::isfinite(d)) {
            char buffer[40];
            std::snprintf(buffer, sizeof buffer, "%.17g", d);
            os << buffer;
        } else {
            os << "null";  // JSON has no inf/nan; parsed back as missing
        }
    } else {
        os << '"' << json_escape(std::get<std::string>(value)) << '"';
    }
}

struct Cursor {
    std::string_view text;
    std::size_t pos = 0;

    [[nodiscard]] bool done() const noexcept { return pos >= text.size(); }
    [[nodiscard]] char peek() const noexcept { return text[pos]; }
    void skip_ws() noexcept {
        while (!done() && std::isspace(static_cast<unsigned char>(peek()))) ++pos;
    }
    bool eat(char c) noexcept {
        if (done() || peek() != c) return false;
        ++pos;
        return true;
    }
};

std::optional<std::string> parse_string(Cursor& c) {
    if (!c.eat('"')) return {};
    std::string out;
    while (!c.done()) {
        const char ch = c.text[c.pos++];
        if (ch == '"') return out;
        if (ch != '\\') {
            out += ch;
            continue;
        }
        if (c.done()) return {};
        const char esc = c.text[c.pos++];
        switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (c.pos + 4 > c.text.size()) return {};
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = c.text[c.pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                    else return {};
                }
                // The writer only emits \u00XX for control bytes; decode
                // the basic-latin plane and reject the rest.
                if (code > 0x7f) return {};
                out += static_cast<char>(code);
                break;
            }
            default: return {};
        }
    }
    return {};  // unterminated
}

std::optional<JsonObject::Value> parse_number(Cursor& c) {
    const std::size_t start = c.pos;
    if (!c.done() && (c.peek() == '-' || c.peek() == '+')) ++c.pos;
    bool is_real = false;
    while (!c.done()) {
        const char ch = c.peek();
        if (std::isdigit(static_cast<unsigned char>(ch))) {
            ++c.pos;
        } else if (ch == '.' || ch == 'e' || ch == 'E' || ch == '-' || ch == '+') {
            // '-'/'+' only valid inside an exponent; the stricter check
            // is delegated to from_chars/strtod below.
            is_real = is_real || ch == '.' || ch == 'e' || ch == 'E';
            ++c.pos;
        } else {
            break;
        }
    }
    const std::string_view token = c.text.substr(start, c.pos - start);
    if (token.empty()) return {};
    if (is_real) {
        const std::string owned(token);
        char* end = nullptr;
        const double d = std::strtod(owned.c_str(), &end);
        if (end != owned.c_str() + owned.size()) return {};
        return JsonObject::Value(d);
    }
    if (token.front() == '-') {
        std::int64_t i = 0;
        const auto [p, ec] =
            std::from_chars(token.data(), token.data() + token.size(), i);
        if (ec != std::errc() || p != token.data() + token.size()) return {};
        return JsonObject::Value(i);
    }
    std::uint64_t u = 0;
    const auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), u);
    if (ec != std::errc() || p != token.data() + token.size()) return {};
    return JsonObject::Value(u);
}

}  // namespace

std::string JsonObject::to_line() const {
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const auto& [key, value] : fields_) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(key) << "\":";
        render_value(os, value);
    }
    os << '}';
    return os.str();
}

std::optional<JsonObject> JsonObject::parse(std::string_view line) {
    Cursor c{line};
    c.skip_ws();
    if (!c.eat('{')) return {};
    JsonObject out;
    c.skip_ws();
    if (c.eat('}')) {
        c.skip_ws();
        return c.done() ? std::optional<JsonObject>(out) : std::nullopt;
    }
    while (true) {
        c.skip_ws();
        auto key = parse_string(c);
        if (!key) return {};
        c.skip_ws();
        if (!c.eat(':')) return {};
        c.skip_ws();
        if (c.done()) return {};
        if (c.peek() == '"') {
            auto s = parse_string(c);
            if (!s) return {};
            out.fields_.emplace_back(std::move(*key), Value(std::move(*s)));
        } else if (c.text.compare(c.pos, 4, "true") == 0) {
            c.pos += 4;
            out.fields_.emplace_back(std::move(*key), Value(true));
        } else if (c.text.compare(c.pos, 5, "false") == 0) {
            c.pos += 5;
            out.fields_.emplace_back(std::move(*key), Value(false));
        } else if (c.text.compare(c.pos, 4, "null") == 0) {
            c.pos += 4;  // tolerated on input; the field is dropped
        } else {
            auto n = parse_number(c);
            if (!n) return {};
            out.fields_.emplace_back(std::move(*key), std::move(*n));
        }
        c.skip_ws();
        if (c.eat(',')) continue;
        if (c.eat('}')) break;
        return {};
    }
    c.skip_ws();
    if (!c.done()) return {};
    return out;
}

}  // namespace stc::obs
