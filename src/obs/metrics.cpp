#include "stc/obs/metrics.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <ostream>

#include "stc/obs/json.h"
#include "stc/support/table.h"

namespace stc::obs {

namespace {

// Bucket i holds observations with ceil(us) in (2^(i-1), 2^i]; bucket 0
// holds <= 1us.  40 buckets reach ~12.7 days — effectively unbounded.
constexpr std::size_t kBuckets = 40;

std::size_t bucket_of(double ms) noexcept {
    const double us = ms * 1000.0;
    if (!(us > 1.0)) return 0;  // also catches NaN and negatives
    const auto ceiled = static_cast<std::uint64_t>(std::ceil(us));
    const auto index = static_cast<std::size_t>(std::bit_width(ceiled - 1));
    return std::min(index, kBuckets - 1);
}

double bucket_upper_ms(std::size_t index) noexcept {
    return static_cast<double>(std::uint64_t{1} << index) / 1000.0;
}

std::string format_ms(double ms) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.3f", ms);
    return buffer;
}

/// Shortest round-trippable JSON number (same rendering JsonObject uses).
std::string json_number(double d) {
    if (!std::isfinite(d)) return "null";
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", d);
    return buffer;
}

}  // namespace

double HistogramSnapshot::percentile(double q) const noexcept {
    if (count == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double target = q * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (const auto& [le_ms, n] : buckets) {
        cumulative += n;
        if (static_cast<double>(cumulative) >= target) {
            return std::min(le_ms, max_ms);
        }
    }
    return max_ms;
}

struct Metrics::State {
    struct Histogram {
        std::uint64_t count = 0;
        double sum_ms = 0.0;
        double min_ms = 0.0;
        double max_ms = 0.0;
        std::array<std::uint64_t, kBuckets> buckets{};
    };

    mutable std::mutex mutex;
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, Histogram, std::less<>> histograms;
};

Metrics Metrics::make() {
    Metrics metrics;
    metrics.state_ = std::make_shared<State>();
    return metrics;
}

void Metrics::add(std::string_view counter, std::uint64_t delta) const {
    if (state_ == nullptr) return;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    const auto it = state_->counters.find(counter);
    if (it != state_->counters.end()) {
        it->second += delta;
    } else {
        state_->counters.emplace(std::string(counter), delta);
    }
}

void Metrics::observe_ms(std::string_view histogram, double ms) const {
    if (state_ == nullptr) return;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    auto it = state_->histograms.find(histogram);
    if (it == state_->histograms.end()) {
        it = state_->histograms.emplace(std::string(histogram),
                                        State::Histogram{}).first;
    }
    State::Histogram& h = it->second;
    if (h.count == 0 || ms < h.min_ms) h.min_ms = ms;
    if (h.count == 0 || ms > h.max_ms) h.max_ms = ms;
    ++h.count;
    h.sum_ms += ms;
    ++h.buckets[bucket_of(ms)];
}

std::uint64_t Metrics::counter(std::string_view name) const {
    if (state_ == nullptr) return 0;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    const auto it = state_->counters.find(name);
    return it == state_->counters.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Metrics::counters() const {
    if (state_ == nullptr) return {};
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return {state_->counters.begin(), state_->counters.end()};
}

std::vector<HistogramSnapshot> Metrics::histograms() const {
    if (state_ == nullptr) return {};
    const std::lock_guard<std::mutex> lock(state_->mutex);
    std::vector<HistogramSnapshot> out;
    out.reserve(state_->histograms.size());
    for (const auto& [name, h] : state_->histograms) {
        HistogramSnapshot snap;
        snap.name = name;
        snap.count = h.count;
        snap.sum_ms = h.sum_ms;
        snap.min_ms = h.min_ms;
        snap.max_ms = h.max_ms;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            if (h.buckets[i] != 0) {
                snap.buckets.emplace_back(bucket_upper_ms(i), h.buckets[i]);
            }
        }
        out.push_back(std::move(snap));
    }
    return out;
}

void Metrics::write_text(std::ostream& os) const {
    const auto counter_rows = counters();
    const auto histogram_rows = histograms();

    if (!counter_rows.empty()) {
        support::TextTable table({"counter", "value"});
        for (const auto& [name, value] : counter_rows) {
            table.add_row({name, std::to_string(value)});
        }
        table.render(os);
    }
    if (!histogram_rows.empty()) {
        if (!counter_rows.empty()) os << "\n";
        support::TextTable table({"histogram", "count", "sum ms", "mean ms",
                                  "min ms", "max ms", "p50 ms", "p90 ms",
                                  "p99 ms"});
        for (const auto& h : histogram_rows) {
            table.add_row({h.name, std::to_string(h.count), format_ms(h.sum_ms),
                           format_ms(h.mean_ms()), format_ms(h.min_ms),
                           format_ms(h.max_ms), format_ms(h.percentile(0.50)),
                           format_ms(h.percentile(0.90)),
                           format_ms(h.percentile(0.99))});
        }
        table.render(os);
    }
    if (counter_rows.empty() && histogram_rows.empty()) {
        os << "(no metrics recorded)\n";
    }
}

void Metrics::write_json(std::ostream& os) const {
    const auto counter_rows = counters();
    const auto histogram_rows = histograms();

    os << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : counter_rows) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(name) << "\":" << value;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& h : histogram_rows) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(h.name) << "\":{\"count\":" << h.count
           << ",\"sum_ms\":" << json_number(h.sum_ms)
           << ",\"mean_ms\":" << json_number(h.mean_ms())
           << ",\"min_ms\":" << json_number(h.min_ms)
           << ",\"max_ms\":" << json_number(h.max_ms)
           << ",\"p50_ms\":" << json_number(h.percentile(0.50))
           << ",\"p90_ms\":" << json_number(h.percentile(0.90))
           << ",\"p99_ms\":" << json_number(h.percentile(0.99))
           << ",\"buckets\":[";
        bool first_bucket = true;
        for (const auto& [le_ms, count] : h.buckets) {
            if (!first_bucket) os << ',';
            first_bucket = false;
            os << '[' << json_number(le_ms) << ',' << count << ']';
        }
        os << "]}";
    }
    os << "}}\n";
}

}  // namespace stc::obs
