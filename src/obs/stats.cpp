#include "stc/obs/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "stc/obs/json.h"
#include "stc/support/error.h"
#include "stc/support/strings.h"
#include "stc/support/table.h"

namespace stc::obs {

namespace {

std::string format_ms(double ms) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.3f", ms);
    return buffer;
}

}  // namespace

TelemetryStats TelemetryStats::from_stream(std::istream& in) {
    TelemetryStats out;
    out.absorb_stream(in);
    return out;
}

void TelemetryStats::absorb_stream(std::istream& in) {
    ++streams;
    std::string line;
    while (std::getline(in, line)) absorb_line(line);
    sort_items();
}

void TelemetryStats::absorb_line(std::string_view line) {
    if (support::trim(std::string(line)).empty()) return;
    ++lines;
    const auto event = JsonObject::parse(line);
    if (!event || !event->get_string("event")) {
        ++malformed_lines;  // e.g. the torn tail of a killed run
        return;
    }
    absorb_event(*event);
}

void TelemetryStats::sort_items() {
    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return a.index < b.index; });
    by_index_.clear();
    for (std::size_t slot = 0; slot < items.size(); ++slot) {
        by_index_[items[slot].index] = slot;
    }
}

void TelemetryStats::absorb_event(const JsonObject& event) {
    TelemetryStats& out = *this;

    // Items deduplicate by index; later generations (and later input
    // streams) overwrite earlier, so coordinator + worker files agree
    // on one row per item.
    auto upsert = [&](bool finished) {
        const auto index = event.get_uint("item");
        if (!index) return;
        Item item;
        item.index = *index;
        item.mutant = event.get_string("mutant").value_or("?");
        item.fate = event.get_string("fate").value_or("?");
        item.reason = event.get_string("reason").value_or("?");
        item.sandbox = event.get_string("sandbox").value_or("");
        item.model_only = event.get_bool("model_only").value_or(false);
        if (finished) {
            item.wall_ms = event.get_double("wall_ms").value_or(0.0);
            item.worker = event.get_uint("worker").value_or(0);
            item.has_timing = true;
        }
        const auto [it, inserted] = by_index_.emplace(*index, out.items.size());
        if (inserted) {
            out.items.push_back(std::move(item));
        } else {
            out.items[it->second] = std::move(item);
        }
    };

    {
        const std::string kind = *event.get_string("event");
        if (kind == "campaign-start") {
            ++out.generations;
            out.campaign = event.get_string("campaign").value_or("");
            out.class_name = event.get_string("class").value_or("");
            out.seed = event.get_uint("seed").value_or(0);
            out.jobs = event.get_uint("jobs").value_or(0);
            out.declared_mutants = event.get_uint("mutants").value_or(0);
            out.cases = event.get_uint("cases").value_or(0);
            out.model = event.get_bool("model").value_or(false);
            // A new generation re-declares its kill-reason rows.
            out.declared_kill_reasons.clear();
        } else if (kind == "kill-reason") {
            if (const auto name = event.get_string("reason")) {
                out.declared_kill_reasons.push_back(*name);
            }
        } else if (kind == "item-start") {
            ++out.starts;
        } else if (kind == "item-finish") {
            ++out.finishes;
            if (event.get_bool("shrunk").value_or(false)) ++out.shrunk_items;
            upsert(true);
        } else if (kind == "item-resumed") {
            ++out.resumes;
            upsert(false);
        } else if (kind == "campaign-end") {
            out.have_summary = true;
            out.killed = event.get_uint("killed").value_or(0);
            out.equivalent = event.get_uint("equivalent").value_or(0);
            out.not_covered = event.get_uint("not_covered").value_or(0);
            out.executed = event.get_uint("executed").value_or(0);
            out.workers = event.get_uint("workers").value_or(0);
            out.steals = event.get_uint("steals").value_or(0);
            out.score = event.get_double("score").value_or(0.0);
            out.wall_ms = event.get_double("wall_ms").value_or(0.0);
        } else if (kind == "fuzz-start") {
            ++out.fuzz_runs;
            out.fuzz_class = event.get_string("class").value_or("");
            out.fuzz_seed = event.get_uint("seed").value_or(0);
            // A new generation restarts the finding/verdict tallies.
            out.fuzz_findings.clear();
            out.fuzz_verdicts.clear();
            out.have_fuzz_summary = false;
        } else if (kind == "fuzz-finding") {
            FuzzFinding finding;
            finding.key = event.get_string("key").value_or("?");
            finding.verdict = event.get_string("verdict").value_or("?");
            finding.iteration = event.get_uint("iteration").value_or(0);
            finding.shrink_steps = event.get_uint("shrink_steps").value_or(0);
            finding.calls = event.get_uint("calls").value_or(0);
            out.fuzz_findings.push_back(std::move(finding));
        } else if (kind == "fuzz-verdict") {
            const auto name = event.get_string("verdict");
            if (name) {
                out.fuzz_verdicts[*name] = event.get_uint("count").value_or(0);
            }
        } else if (kind == "fuzz-end") {
            out.have_fuzz_summary = true;
            out.fuzz_iterations = event.get_uint("iterations").value_or(0);
            out.fuzz_executions = event.get_uint("executions").value_or(0);
            out.fuzz_interesting = event.get_uint("interesting").value_or(0);
            out.fuzz_population = event.get_uint("population").value_or(0);
        } else if (kind == "kill-run-start") {
            ++out.kill_runs;
            out.kill_class = event.get_string("class").value_or("");
            out.kill_survivors = event.get_uint("survivors").value_or(0);
            out.kill_budget_states = event.get_uint("budget_states").value_or(0);
            out.kill_max_depth = event.get_uint("max_depth").value_or(0);
            // A new pass restarts the attempt tallies.
            out.kill_attempts.clear();
            out.kill_by_mutant_.clear();
            out.have_kill_summary = false;
        } else if (kind == "kill-start" || kind == "kill-candidate" ||
                   kind == "kill-verified" || kind == "kill-gave-up") {
            const auto mutant = event.get_string("mutant");
            if (mutant) {
                const auto [it, inserted] =
                    out.kill_by_mutant_.emplace(*mutant,
                                                out.kill_attempts.size());
                if (inserted) {
                    KillAttempt attempt;
                    attempt.mutant = *mutant;
                    out.kill_attempts.push_back(std::move(attempt));
                }
                KillAttempt& attempt = out.kill_attempts[it->second];
                if (kind == "kill-start") {
                    attempt = KillAttempt{};
                    attempt.mutant = *mutant;
                } else if (kind == "kill-candidate") {
                    attempt.candidate_calls = event.get_uint("calls").value_or(0);
                    attempt.states = event.get_uint("states").value_or(0);
                    attempt.widened = event.get_bool("widened").value_or(false);
                } else if (kind == "kill-verified") {
                    attempt.outcome = "verified";
                    attempt.reason = event.get_string("reason").value_or("?");
                    attempt.calls = event.get_uint("calls").value_or(0);
                    attempt.shrink_steps =
                        event.get_uint("shrink_steps").value_or(0);
                    attempt.corpus = event.get_string("corpus").value_or("");
                } else {  // kill-gave-up
                    attempt.outcome = event.get_string("status").value_or("?");
                    attempt.states = event.get_uint("states").value_or(0);
                }
            }
        } else if (kind == "kill-run-end") {
            out.have_kill_summary = true;
            out.kill_verified = event.get_uint("verified").value_or(0);
            out.kill_killed_before = event.get_uint("killed_before").value_or(0);
            out.kill_killed_after = event.get_uint("killed_after").value_or(0);
            out.kill_score_before =
                event.get_string("score_before").value_or("");
            out.kill_score_after = event.get_string("score_after").value_or("");
        } else if (kind == "worker-connect") {
            ++out.worker_connects;
        } else if (kind == "worker-disconnect") {
            ++out.worker_disconnects;
        } else if (kind == "worker-redispatch") {
            ++out.redispatched;
        } else if (kind == "worker-session") {
            ++out.serve_sessions;
        } else if (kind == "metrics-snapshot") {
            ++out.metrics_snapshots;
        }
        // Unknown event kinds pass through untallied: the schema may
        // grow and old reporters should not reject new streams.
    }
}

TelemetryStats TelemetryStats::from_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot open telemetry file: " + path);
    return from_stream(in);
}

TelemetryStats TelemetryStats::from_files(
    const std::vector<std::string>& paths) {
    TelemetryStats out;
    for (const std::string& path : paths) {
        std::ifstream in(path);
        if (!in) throw Error("cannot open telemetry file: " + path);
        out.absorb_stream(in);
    }
    return out;
}

std::map<std::string, std::size_t> TelemetryStats::fate_counts() const {
    std::map<std::string, std::size_t> out;
    for (const Item& item : items) ++out[item.fate];
    return out;
}

std::map<std::string, std::size_t> TelemetryStats::kill_reasons() const {
    std::map<std::string, std::size_t> out;
    // Declared kinds first: a detector that killed nothing renders as
    // an explicit zero row instead of silently vanishing.
    for (const std::string& name : declared_kill_reasons) out[name];
    for (const Item& item : items) {
        if (item.fate == "killed") ++out[item.reason];
    }
    return out;
}

std::size_t TelemetryStats::model_only_kills() const {
    std::size_t out = 0;
    for (const Item& item : items) {
        out += (item.fate == "killed" && item.model_only) ? 1 : 0;
    }
    return out;
}

std::map<std::string, std::size_t> TelemetryStats::sandbox_kinds() const {
    std::map<std::string, std::size_t> out;
    for (const Item& item : items) {
        if (!item.sandbox.empty()) ++out[item.sandbox];
    }
    return out;
}

std::vector<TelemetryStats::WorkerLoad> TelemetryStats::worker_loads() const {
    std::map<std::uint64_t, WorkerLoad> by_worker;
    for (const Item& item : items) {
        if (!item.has_timing) continue;
        WorkerLoad& load = by_worker[item.worker];
        load.worker = item.worker;
        ++load.items;
        load.busy_ms += item.wall_ms;
    }
    std::vector<WorkerLoad> out;
    out.reserve(by_worker.size());
    for (const auto& [id, load] : by_worker) out.push_back(load);
    return out;
}

namespace {

/// "Class::Method@site.Operator.detail" -> "Operator"; "?" when the id
/// does not follow the mutant naming scheme.
std::string operator_of(const std::string& mutant) {
    const std::size_t at = mutant.find('@');
    if (at == std::string::npos) return "?";
    const std::size_t first_dot = mutant.find('.', at + 1);
    if (first_dot == std::string::npos) return "?";
    std::size_t second_dot = mutant.find('.', first_dot + 1);
    if (second_dot == std::string::npos) second_dot = mutant.size();
    return mutant.substr(first_dot + 1, second_dot - first_dot - 1);
}

/// Exact order statistic over a sorted sample (nearest-rank).
double exact_percentile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const double rank = q * static_cast<double>(sorted.size());
    std::size_t index =
        rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
    if (index >= sorted.size()) index = sorted.size() - 1;
    return sorted[index];
}

}  // namespace

std::vector<TelemetryStats::OperatorLatency>
TelemetryStats::operator_latencies() const {
    std::map<std::string, std::vector<double>> samples;
    for (const Item& item : items) {
        if (item.has_timing) samples[operator_of(item.mutant)].push_back(item.wall_ms);
    }
    std::vector<OperatorLatency> out;
    out.reserve(samples.size());
    for (auto& [op, values] : samples) {
        std::sort(values.begin(), values.end());
        OperatorLatency row;
        row.op = op;
        row.items = values.size();
        row.p50_ms = exact_percentile(values, 0.50);
        row.p90_ms = exact_percentile(values, 0.90);
        row.p99_ms = exact_percentile(values, 0.99);
        out.push_back(std::move(row));
    }
    return out;
}

void TelemetryStats::render(std::ostream& os, std::size_t top) const {
    os << "campaign: " << (class_name.empty() ? "?" : class_name);
    if (!campaign.empty()) os << "  [" << campaign << "]";
    os << "\n"
       << "  seed " << seed << ", jobs " << jobs << ", " << declared_mutants
       << " mutant(s), " << cases << " case(s)\n"
       << "  " << generations << " generation(s), " << lines << " line(s)";
    if (malformed_lines != 0) {
        os << " (" << malformed_lines << " malformed, dropped)";
    }
    os << "\n"
       << "  items: " << items.size() << " classified, " << finishes
       << " executed, " << resumes << " resumed";
    if (shrunk_items != 0) os << ", " << shrunk_items << " kill(s) shrunk";
    os << "\n";
    // Distributed runs only: absent for single-process streams, so
    // their reports are byte-unchanged.
    if (worker_connects != 0 || worker_disconnects != 0 || redispatched != 0 ||
        serve_sessions != 0) {
        os << "  dispatch: " << worker_connects << " worker connect(s), "
           << worker_disconnects << " disconnect(s), " << redispatched
           << " item(s) re-dispatched";
        if (serve_sessions != 0) {
            os << ", " << serve_sessions << " serve session(s)";
        }
        if (streams > 1) os << ", " << streams << " stream(s)";
        os << "\n";
    }
    if (have_summary) {
        os << "  final: score " << support::percent(score) << ", " << workers
           << " worker(s), " << steals << " steal(s), wall "
           << format_ms(wall_ms) << " ms\n";
    } else {
        os << "  final: no campaign-end event (interrupted run)\n";
    }
    os << "\n";

    const auto fates = fate_counts();
    if (!fates.empty()) {
        support::TextTable table({"fate", "count", "share"});
        for (const auto& [fate, count] : fates) {
            table.add_row({fate, std::to_string(count),
                           support::percent(static_cast<double>(count) /
                                            static_cast<double>(items.size()))});
        }
        table.add_footer({"total", std::to_string(items.size()), ""});
        table.render(os);
        os << "\n";
    }

    const auto reasons = kill_reasons();
    if (!reasons.empty()) {
        support::TextTable table({"kill reason", "kills"});
        for (const auto& [reason, count] : reasons) {
            table.add_row({reason, std::to_string(count)});
        }
        table.render(os);
        os << "\n";
    }

    // Oracle strength (model-oracle campaigns): how many kills the
    // base assertion/crash/output-diff oracle scored on its own versus
    // kills that exist only because the reference model diverged —
    // the Table 2-style with/without comparison of docs/GUIDE.md §8.
    if (model && !items.empty()) {
        std::size_t total_killed = 0;
        for (const Item& item : items) {
            total_killed += item.fate == "killed" ? 1 : 0;
        }
        const std::size_t only_model = model_only_kills();
        support::TextTable table({"oracle strength", "mutants"});
        table.add_row({"killed by base oracle",
                       std::to_string(total_killed - only_model)});
        table.add_row({"killed only by model", std::to_string(only_model)});
        table.add_row({"survived", std::to_string(items.size() - total_killed)});
        table.add_footer({"total", std::to_string(items.size())});
        table.render(os);
        os << "\n";
    }

    // Sandbox terminations (isolated runs only): how the workers died.
    const auto sandbox = sandbox_kinds();
    if (!sandbox.empty()) {
        std::size_t total = 0;
        support::TextTable table({"sandbox termination", "items"});
        for (const auto& [kind, count] : sandbox) {
            table.add_row({kind, std::to_string(count)});
            total += count;
        }
        table.add_footer({"total", std::to_string(total)});
        table.render(os);
        os << "\n";
    }

    std::vector<const Item*> timed;
    for (const Item& item : items) {
        if (item.has_timing) timed.push_back(&item);
    }
    std::sort(timed.begin(), timed.end(), [](const Item* a, const Item* b) {
        if (a->wall_ms != b->wall_ms) return a->wall_ms > b->wall_ms;
        return a->index < b->index;
    });
    if (!timed.empty()) {
        support::TextTable table({"slowest item", "fate", "reason", "wall ms",
                                  "worker"});
        const std::size_t n = std::min(top, timed.size());
        for (std::size_t i = 0; i < n; ++i) {
            const Item& item = *timed[i];
            table.add_row({item.mutant, item.fate,
                           item.fate == "killed" ? item.reason : "-",
                           format_ms(item.wall_ms),
                           std::to_string(item.worker)});
        }
        table.render(os);
        os << "\n";
    }

    const auto loads = worker_loads();
    if (!loads.empty()) {
        double total_busy = 0.0;
        for (const WorkerLoad& load : loads) total_busy += load.busy_ms;
        support::TextTable table({"worker", "items", "busy ms", "share"});
        for (const WorkerLoad& load : loads) {
            table.add_row({std::to_string(load.worker),
                           std::to_string(load.items), format_ms(load.busy_ms),
                           support::percent(total_busy == 0.0
                                                ? 0.0
                                                : load.busy_ms / total_busy)});
        }
        table.render(os);
    }

    if (fuzz_runs != 0) {
        os << "\nfuzz: " << (fuzz_class.empty() ? "?" : fuzz_class) << "  seed "
           << fuzz_seed << "\n";
        if (have_fuzz_summary) {
            os << "  " << fuzz_iterations << " iteration(s), " << fuzz_executions
               << " execution(s), " << fuzz_interesting << " interesting, "
               << "population " << fuzz_population << "\n";
        } else {
            os << "  final: no fuzz-end event (interrupted run)\n";
        }
        if (!fuzz_verdicts.empty()) {
            // Every verdict kind the stream declared — including
            // zero-count setup-error / contract-not-enforced rows, so a
            // kind silently never produced is visible, not hidden.
            std::uint64_t total = 0;
            support::TextTable table({"verdict", "executions"});
            for (const auto& [verdict, count] : fuzz_verdicts) {
                table.add_row({verdict, std::to_string(count)});
                total += count;
            }
            table.add_footer({"total", std::to_string(total)});
            os << "\n";
            table.render(os);
        }
        if (!fuzz_findings.empty()) {
            support::TextTable table(
                {"finding", "verdict", "iteration", "shrink steps", "calls"});
            for (const FuzzFinding& finding : fuzz_findings) {
                table.add_row({finding.key, finding.verdict,
                               std::to_string(finding.iteration),
                               std::to_string(finding.shrink_steps),
                               std::to_string(finding.calls)});
            }
            os << "\n";
            table.render(os);
        }
    }

    if (kill_runs != 0) {
        os << "\nkill: " << (kill_class.empty() ? "?" : kill_class) << "  "
           << kill_survivors << " survivor(s), budget " << kill_budget_states
           << " state(s), depth " << kill_max_depth << "\n";
        if (have_kill_summary) {
            os << "  " << kill_verified << " verified, killed "
               << kill_killed_before << " -> " << kill_killed_after
               << ", score " << kill_score_before << " -> " << kill_score_after
               << "\n";
        } else {
            os << "  final: no kill-run-end event (interrupted pass)\n";
        }
        if (!kill_attempts.empty()) {
            support::TextTable table({"survivor", "outcome", "reason", "states",
                                      "calls", "corpus"});
            for (const KillAttempt& attempt : kill_attempts) {
                std::string outcome = attempt.outcome;
                if (attempt.widened && attempt.outcome == "verified") {
                    outcome += " (widened)";
                }
                table.add_row(
                    {attempt.mutant, outcome,
                     attempt.outcome == "verified" ? attempt.reason : "-",
                     std::to_string(attempt.states),
                     attempt.outcome == "verified"
                         ? std::to_string(attempt.calls)
                         : "-",
                     attempt.corpus.empty() ? "-" : attempt.corpus});
            }
            os << "\n";
            table.render(os);
        }
    }
}

void TelemetryStats::render_follow(std::ostream& os, double elapsed_s) const {
    const std::size_t done = items.size();
    const std::uint64_t total = declared_mutants;

    os << "follow: " << (class_name.empty() ? "?" : class_name) << "  " << done;
    if (total != 0) os << "/" << total;
    os << " item(s)";
    const auto fates = fate_counts();
    for (const auto& [fate, count] : fates) {
        os << "  " << fate << "=" << count;
    }
    os << "\n";

    os << "  rate ";
    if (elapsed_s > 0.0 && done > 0) {
        const double rate = static_cast<double>(done) / elapsed_s;
        char buffer[64];
        std::snprintf(buffer, sizeof buffer, "%.1f", rate);
        os << buffer << " item(s)/s";
        if (total > done) {
            std::snprintf(buffer, sizeof buffer, "%.0f",
                          static_cast<double>(total - done) / rate);
            os << "  eta " << buffer << "s";
        } else if (total != 0) {
            os << "  eta 0s";
        }
    } else {
        os << "- item(s)/s";
    }
    if (have_summary) os << "  [campaign complete]";
    os << "\n";

    const auto loads = worker_loads();
    if (!loads.empty()) {
        double total_busy = 0.0;
        for (const WorkerLoad& load : loads) total_busy += load.busy_ms;
        os << "  workers:";
        for (const WorkerLoad& load : loads) {
            os << "  w" << load.worker << " " << load.items << " ("
               << support::percent(total_busy == 0.0
                                       ? 0.0
                                       : load.busy_ms / total_busy)
               << ")";
        }
        os << "\n";
    }

    const auto operators = operator_latencies();
    if (!operators.empty()) {
        os << "  operator p50/p90/p99 ms:";
        for (const OperatorLatency& row : operators) {
            os << "  " << row.op << " " << format_ms(row.p50_ms) << "/"
               << format_ms(row.p90_ms) << "/" << format_ms(row.p99_ms);
        }
        os << "\n";
    }
}

namespace {

/// Shortest round-trippable JSON number (same rendering JsonObject uses).
std::string json_number(double d) {
    if (!std::isfinite(d)) return "null";
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", d);
    return buffer;
}

void write_count_map(std::ostream& os, const char* key,
                     const std::map<std::string, std::size_t>& counts) {
    os << "\"" << key << "\":{";
    bool first = true;
    for (const auto& [name, count] : counts) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(name) << "\":" << count;
    }
    os << "}";
}

}  // namespace

void TelemetryStats::write_json(std::ostream& os, std::size_t top) const {
    os << "{\"class\":\"" << json_escape(class_name) << "\",\"campaign\":\""
       << json_escape(campaign) << "\",\"seed\":" << seed
       << ",\"jobs\":" << jobs << ",\"declared_mutants\":" << declared_mutants
       << ",\"cases\":" << cases << ",\"model\":" << (model ? "true" : "false")
       << ",\"generations\":" << generations << ",\"lines\":" << lines
       << ",\"malformed_lines\":" << malformed_lines
       << ",\"streams\":" << streams << ",\"items\":" << items.size()
       << ",\"executed\":" << finishes << ",\"resumed\":" << resumes
       << ",\"shrunk\":" << shrunk_items;

    os << ",\"dispatch\":{\"worker_connects\":" << worker_connects
       << ",\"worker_disconnects\":" << worker_disconnects
       << ",\"redispatched\":" << redispatched
       << ",\"serve_sessions\":" << serve_sessions
       << ",\"metrics_snapshots\":" << metrics_snapshots << "}";

    if (have_summary) {
        os << ",\"final\":{\"killed\":" << killed
           << ",\"equivalent\":" << equivalent
           << ",\"not_covered\":" << not_covered << ",\"executed\":" << executed
           << ",\"workers\":" << workers << ",\"steals\":" << steals
           << ",\"score\":" << json_number(score)
           << ",\"wall_ms\":" << json_number(wall_ms) << "}";
    } else {
        os << ",\"final\":null";
    }

    os << ',';
    write_count_map(os, "fates", fate_counts());
    os << ',';
    write_count_map(os, "kill_reasons", kill_reasons());
    os << ",\"model_only_kills\":" << model_only_kills() << ',';
    write_count_map(os, "sandbox", sandbox_kinds());

    os << ",\"workers_load\":[";
    bool first = true;
    for (const WorkerLoad& load : worker_loads()) {
        if (!first) os << ',';
        first = false;
        os << "{\"worker\":" << load.worker << ",\"items\":" << load.items
           << ",\"busy_ms\":" << json_number(load.busy_ms) << "}";
    }
    os << "]";

    os << ",\"operators\":[";
    first = true;
    for (const OperatorLatency& row : operator_latencies()) {
        if (!first) os << ',';
        first = false;
        os << "{\"operator\":\"" << json_escape(row.op)
           << "\",\"items\":" << row.items
           << ",\"p50_ms\":" << json_number(row.p50_ms)
           << ",\"p90_ms\":" << json_number(row.p90_ms)
           << ",\"p99_ms\":" << json_number(row.p99_ms) << "}";
    }
    os << "]";

    std::vector<const Item*> timed;
    for (const Item& item : items) {
        if (item.has_timing) timed.push_back(&item);
    }
    std::sort(timed.begin(), timed.end(), [](const Item* a, const Item* b) {
        if (a->wall_ms != b->wall_ms) return a->wall_ms > b->wall_ms;
        return a->index < b->index;
    });
    os << ",\"slowest\":[";
    const std::size_t n = std::min(top, timed.size());
    for (std::size_t i = 0; i < n; ++i) {
        const Item& item = *timed[i];
        if (i != 0) os << ',';
        os << "{\"mutant\":\"" << json_escape(item.mutant) << "\",\"fate\":\""
           << json_escape(item.fate) << "\",\"reason\":\""
           << json_escape(item.reason)
           << "\",\"wall_ms\":" << json_number(item.wall_ms)
           << ",\"worker\":" << item.worker << "}";
    }
    os << "]";

    if (fuzz_runs != 0) {
        os << ",\"fuzz\":{\"runs\":" << fuzz_runs << ",\"class\":\""
           << json_escape(fuzz_class) << "\",\"seed\":" << fuzz_seed
           << ",\"iterations\":" << fuzz_iterations
           << ",\"executions\":" << fuzz_executions
           << ",\"interesting\":" << fuzz_interesting
           << ",\"population\":" << fuzz_population << ",\"verdicts\":{";
        first = true;
        for (const auto& [verdict, count] : fuzz_verdicts) {
            if (!first) os << ',';
            first = false;
            os << '"' << json_escape(verdict) << "\":" << count;
        }
        os << "},\"findings\":[";
        first = true;
        for (const FuzzFinding& finding : fuzz_findings) {
            if (!first) os << ',';
            first = false;
            os << "{\"key\":\"" << json_escape(finding.key)
               << "\",\"verdict\":\"" << json_escape(finding.verdict)
               << "\",\"iteration\":" << finding.iteration
               << ",\"shrink_steps\":" << finding.shrink_steps
               << ",\"calls\":" << finding.calls << "}";
        }
        os << "]}";
    }

    if (kill_runs != 0) {
        os << ",\"kill\":{\"runs\":" << kill_runs << ",\"class\":\""
           << json_escape(kill_class) << "\",\"survivors\":" << kill_survivors
           << ",\"budget_states\":" << kill_budget_states
           << ",\"max_depth\":" << kill_max_depth
           << ",\"verified\":" << kill_verified
           << ",\"killed_before\":" << kill_killed_before
           << ",\"killed_after\":" << kill_killed_after
           << ",\"score_before\":\"" << json_escape(kill_score_before)
           << "\",\"score_after\":\"" << json_escape(kill_score_after)
           << "\",\"attempts\":[";
        first = true;
        for (const KillAttempt& attempt : kill_attempts) {
            if (!first) os << ',';
            first = false;
            os << "{\"mutant\":\"" << json_escape(attempt.mutant)
               << "\",\"outcome\":\"" << json_escape(attempt.outcome)
               << "\",\"reason\":\"" << json_escape(attempt.reason)
               << "\",\"candidate_calls\":" << attempt.candidate_calls
               << ",\"calls\":" << attempt.calls
               << ",\"shrink_steps\":" << attempt.shrink_steps
               << ",\"states\":" << attempt.states
               << ",\"widened\":" << (attempt.widened ? "true" : "false")
               << ",\"corpus\":\"" << json_escape(attempt.corpus) << "\"}";
        }
        os << "]}";
    }

    os << "}\n";
}

std::size_t TelemetryTail::poll(TelemetryStats& stats) {
    std::ifstream in(path_, std::ios::binary);
    if (!in) return 0;
    in.seekg(static_cast<std::streamoff>(offset_));
    if (!in) return 0;

    std::string fresh;
    char chunk[4096];
    for (;;) {
        in.read(chunk, sizeof chunk);
        const std::streamsize got = in.gcount();
        if (got <= 0) break;
        fresh.append(chunk, static_cast<std::size_t>(got));
    }
    offset_ += fresh.size();
    partial_ += fresh;

    std::size_t absorbed = 0;
    std::size_t start = 0;
    for (;;) {
        const std::size_t newline = partial_.find('\n', start);
        if (newline == std::string::npos) break;
        stats.absorb_line(
            std::string_view(partial_).substr(start, newline - start));
        ++absorbed;
        start = newline + 1;
    }
    partial_.erase(0, start);
    return absorbed;
}

}  // namespace stc::obs
