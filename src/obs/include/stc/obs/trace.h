// Span tracer — where the time of a pipeline run goes.
//
// A Tracer collects *complete spans* (begin/end pairs, usually via the
// RAII SpanScope) from any number of threads and exports them as Chrome
// trace-event JSON ("X" phase events), loadable in Perfetto or
// chrome://tracing.  Conventional categories, from coarse to fine:
//
//   phase              one pipeline stage (generate, baseline, items...)
//   test-case          one TestCase executed by a runner
//   method-call        one CUT method invocation inside a case
//   oracle-compare     one golden-vs-observed suite classification
//   mutant-evaluation  one mutant's full classification (campaign item)
//
// Design points:
//   - a default-constructed Tracer is disabled; begin()/end() are a
//     single null check, no lock, no allocation — instrumentation can
//     stay unconditionally in hot paths;
//   - span ids are deterministic: hash(worker ordinal, per-thread
//     sequence number), never derived from addresses or clock values,
//     so two runs with the same schedule produce identical ids;
//   - timestamps come from one steady clock anchored at tracer
//     creation.  They vary run to run and therefore NEVER feed any
//     artifact the determinism gate byte-compares — trace files are a
//     side channel, like stderr.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stc/obs/json.h"

namespace stc::obs {

/// splitmix64 finalizer — the framework's id-mixing primitive.  Span
/// ids, trace ids and the coordinator's synthetic per-item span ids are
/// all derived through it from deterministic inputs (never addresses or
/// clocks), so equal schedules produce equal ids.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// 16-digit lowercase hex rendering of an id (the on-disk/on-wire form
/// of span, parent and trace ids) and its inverse.
[[nodiscard]] std::string hex16(std::uint64_t value);
[[nodiscard]] std::uint64_t from_hex16(std::string_view text);

/// One completed span, as exported ("ph":"X").
struct TraceEvent {
    std::string name;
    std::string category;
    std::uint64_t ts_us = 0;   ///< start, microseconds since tracer epoch
    std::uint64_t dur_us = 0;  ///< duration, microseconds
    int tid = 0;               ///< thread ordinal (registration order)
    int actor = 0;  ///< process/session ordinal; exported as "pid": actor+1
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;  ///< 0 for a thread's root spans
    JsonObject args;              ///< flat extra fields
};

/// Render one TraceEvent as a flat JsonObject (ids as hex16 under
/// "span"/"parent", args nested as one JSON-encoded string under
/// "args") — the Telemetry-frame wire form — and parse it back.
/// Round-trips exactly.
[[nodiscard]] JsonObject trace_event_to_json(const TraceEvent& event);
[[nodiscard]] std::optional<TraceEvent> trace_event_from_json(
    const JsonObject& object);

class Tracer {
public:
    /// Opaque open-span token returned by begin(); inert when the
    /// tracer is disabled.
    struct Span {
        std::uint64_t id = 0;
        std::uint64_t start_us = 0;
        int tid = -1;  ///< -1 marks an inert token
        std::uint64_t parent_override = 0;  ///< nonzero: use instead of stack
        std::string name;
        std::string category;
        JsonObject args;
    };

    Tracer() = default;  ///< disabled: begin/end are no-ops

    /// A fresh, enabled, collecting tracer.  Copies share the buffer.
    /// `actor` is the process/session ordinal folded into every span id
    /// (dispatch coordinator 0, worker sessions 1..N) so ids from
    /// different actors never collide when traces are merged; it is
    /// exported as the Chrome "pid" (actor+1).
    [[nodiscard]] static Tracer make(int actor = 0);

    [[nodiscard]] bool enabled() const noexcept { return state_ != nullptr; }

    /// The actor ordinal this tracer stamps (0 when disabled).
    [[nodiscard]] int actor() const noexcept;

    /// Open a span on the calling thread.  Spans must close in LIFO
    /// order per thread (guaranteed when using SpanScope).  Const for
    /// the same reason as Metrics::add — a Tracer is a shared handle.
    [[nodiscard]] Span begin(std::string_view category, std::string_view name,
                             JsonObject args = {}) const;

    /// begin(), but the recorded event's parent is `parent` instead of
    /// the enclosing span on this thread's stack — the cross-process
    /// link (parent lives in another actor's tracer).  The span still
    /// joins the stack, so spans opened inside it nest normally.  A
    /// `parent` of 0 behaves exactly like begin().
    [[nodiscard]] Span begin_with_parent(std::string_view category,
                                         std::string_view name,
                                         std::uint64_t parent,
                                         JsonObject args = {}) const;

    /// Close `span` and record the complete event.
    void end(Span&& span) const;

    /// Append one already-complete foreign event (a worker span that
    /// arrived over the wire, or a synthetic coordinator span whose
    /// begin/end did not nest LIFO).  The caller owns every field,
    /// including timestamps — they must be on this tracer's epoch to
    /// render sensibly.
    void absorb(TraceEvent event) const;

    /// Campaign-wide trace id (0 = unset).  Exported as a top-level
    /// "traceId" hex16 string in the Chrome JSON; purely annotational.
    void set_trace_id(std::uint64_t id) const;
    [[nodiscard]] std::uint64_t trace_id() const;

    /// Microseconds since this tracer's epoch (0 when disabled) — for
    /// stamping synthetic events handed to absorb().
    [[nodiscard]] std::uint64_t now_us() const;

    /// Completed spans so far (across all threads).
    [[nodiscard]] std::size_t event_count() const;

    /// Copy of the completed spans, in completion order.
    [[nodiscard]] std::vector<TraceEvent> events() const;

    /// Copy of the completed spans starting at index `cursor` — the
    /// incremental drain used by streaming (remember event_count() as
    /// the next cursor).
    [[nodiscard]] std::vector<TraceEvent> events_from(std::size_t cursor) const;

    /// Export everything collected so far as Chrome trace-event JSON:
    /// {"traceEvents":[...],"displayTimeUnit":"ms"} with one event per
    /// line.  Loadable in Perfetto / chrome://tracing.
    void write_chrome_trace(std::ostream& os) const;

private:
    struct State;
    std::shared_ptr<State> state_;
};

/// RAII span: opens on construction, closes on destruction.  With a
/// disabled tracer construction and destruction are single branches.
class SpanScope {
public:
    SpanScope(const Tracer& tracer, std::string_view category,
              std::string_view name, JsonObject args = {});
    /// Cross-process variant: the span's recorded parent is `parent`
    /// (see Tracer::begin_with_parent).
    SpanScope(const Tracer& tracer, std::string_view category,
              std::string_view name, std::uint64_t parent,
              JsonObject args = {});
    ~SpanScope();

    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

    /// This span's id (0 with a disabled tracer) — what children in
    /// other processes name as their "parent".
    [[nodiscard]] std::uint64_t id() const noexcept { return span_.id; }

private:
    Tracer tracer_;
    Tracer::Span span_;
};

/// Parse a Chrome trace-event file previously written by
/// write_chrome_trace (the emitted subset: an object with a
/// "traceEvents" array of flat "X" events, each with an optional flat
/// "args" object).  std::nullopt on malformed input.  Used by the
/// schema round-trip tests and by external tooling checks.
[[nodiscard]] std::optional<std::vector<TraceEvent>> parse_chrome_trace(
    std::istream& is);

}  // namespace stc::obs
