// Span tracer — where the time of a pipeline run goes.
//
// A Tracer collects *complete spans* (begin/end pairs, usually via the
// RAII SpanScope) from any number of threads and exports them as Chrome
// trace-event JSON ("X" phase events), loadable in Perfetto or
// chrome://tracing.  Conventional categories, from coarse to fine:
//
//   phase              one pipeline stage (generate, baseline, items...)
//   test-case          one TestCase executed by a runner
//   method-call        one CUT method invocation inside a case
//   invariant-check    one InvariantTest() evaluation
//   oracle-compare     one golden-vs-observed suite classification
//   mutant-evaluation  one mutant's full classification (campaign item)
//
// Design points:
//   - a default-constructed Tracer is disabled; begin()/end() are a
//     single null check, no lock, no allocation — instrumentation can
//     stay unconditionally in hot paths;
//   - span ids are deterministic: hash(worker ordinal, per-thread
//     sequence number), never derived from addresses or clock values,
//     so two runs with the same schedule produce identical ids;
//   - timestamps come from one steady clock anchored at tracer
//     creation.  They vary run to run and therefore NEVER feed any
//     artifact the determinism gate byte-compares — trace files are a
//     side channel, like stderr.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stc/obs/json.h"

namespace stc::obs {

/// One completed span, as exported ("ph":"X").
struct TraceEvent {
    std::string name;
    std::string category;
    std::uint64_t ts_us = 0;   ///< start, microseconds since tracer epoch
    std::uint64_t dur_us = 0;  ///< duration, microseconds
    int tid = 0;               ///< thread ordinal (registration order)
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;  ///< 0 for a thread's root spans
    JsonObject args;              ///< flat extra fields
};

class Tracer {
public:
    /// Opaque open-span token returned by begin(); inert when the
    /// tracer is disabled.
    struct Span {
        std::uint64_t id = 0;
        std::uint64_t start_us = 0;
        int tid = -1;  ///< -1 marks an inert token
        std::string name;
        std::string category;
        JsonObject args;
    };

    Tracer() = default;  ///< disabled: begin/end are no-ops

    /// A fresh, enabled, collecting tracer.  Copies share the buffer.
    [[nodiscard]] static Tracer make();

    [[nodiscard]] bool enabled() const noexcept { return state_ != nullptr; }

    /// Open a span on the calling thread.  Spans must close in LIFO
    /// order per thread (guaranteed when using SpanScope).  Const for
    /// the same reason as Metrics::add — a Tracer is a shared handle.
    [[nodiscard]] Span begin(std::string_view category, std::string_view name,
                             JsonObject args = {}) const;

    /// Close `span` and record the complete event.
    void end(Span&& span) const;

    /// Completed spans so far (across all threads).
    [[nodiscard]] std::size_t event_count() const;

    /// Copy of the completed spans, in completion order.
    [[nodiscard]] std::vector<TraceEvent> events() const;

    /// Export everything collected so far as Chrome trace-event JSON:
    /// {"traceEvents":[...],"displayTimeUnit":"ms"} with one event per
    /// line.  Loadable in Perfetto / chrome://tracing.
    void write_chrome_trace(std::ostream& os) const;

private:
    struct State;
    std::shared_ptr<State> state_;
};

/// RAII span: opens on construction, closes on destruction.  With a
/// disabled tracer construction and destruction are single branches.
class SpanScope {
public:
    SpanScope(const Tracer& tracer, std::string_view category,
              std::string_view name, JsonObject args = {});
    ~SpanScope();

    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

private:
    Tracer tracer_;
    Tracer::Span span_;
};

/// Parse a Chrome trace-event file previously written by
/// write_chrome_trace (the emitted subset: an object with a
/// "traceEvents" array of flat "X" events, each with an optional flat
/// "args" object).  std::nullopt on malformed input.  Used by the
/// schema round-trip tests and by external tooling checks.
[[nodiscard]] std::optional<std::vector<TraceEvent>> parse_chrome_trace(
    std::istream& is);

}  // namespace stc::obs
