// Aggregation of a campaign telemetry stream (docs/FORMATS.md §5) into
// a human-readable run summary — the `concat stats` reporter.
//
// Input is the JSONL written through JsonlSink by the campaign
// scheduler: campaign-start / item-resumed / item-start / item-finish /
// campaign-end events.  A file may hold several *generations* (a
// resumed campaign appends a new campaign-start; satellite of the
// resume contract), and its tail line may be torn by the interruption
// that made the resume necessary — both are handled: items deduplicate
// by index (last event wins) and unparseable lines are counted, not
// fatal.  The rendered report is deterministic for a fixed input file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "stc/obs/json.h"

namespace stc::obs {

struct TelemetryStats {
    /// One classified work item (mutant), deduplicated by index across
    /// generations and event kinds (item-finish or item-resumed).
    struct Item {
        std::uint64_t index = 0;
        std::string mutant;
        std::string fate;
        std::string reason;
        /// Sandbox termination kind ("crash-signal:<n>" / "timeout" /
        /// "resource-limit" / "worker-exit:<c>"); empty when the item
        /// ran to completion (docs/FORMATS.md §8).
        std::string sandbox;
        /// Killed only by the reference-model oracle (the item-finish /
        /// item-resumed `model_only` field); false for model-less runs.
        bool model_only = false;
        double wall_ms = 0.0;
        std::uint64_t worker = 0;
        bool has_timing = false;  ///< false for resumed items
    };

    /// Per-worker execution load, from item-finish events.
    struct WorkerLoad {
        std::uint64_t worker = 0;
        std::size_t items = 0;
        double busy_ms = 0.0;
    };

    /// Per-operator wall-time distribution over the timed items
    /// (exact order statistics — the raw wall_ms values are at hand,
    /// unlike the bucketed obs::metrics histograms).
    struct OperatorLatency {
        std::string op;  ///< mutation operator, e.g. "IndVarRepReq"
        std::size_t items = 0;
        double p50_ms = 0.0;
        double p90_ms = 0.0;
        double p99_ms = 0.0;
    };

    // Identity, from the last campaign-start event.
    std::string campaign;
    std::string class_name;
    std::uint64_t seed = 0;
    std::uint64_t jobs = 0;
    std::uint64_t declared_mutants = 0;
    std::uint64_t cases = 0;
    /// The campaign ran with the differential model oracle attached
    /// (campaign-start `model` field; false for pre-model streams).
    bool model = false;

    // Stream shape.
    std::size_t generations = 0;       ///< campaign-start events seen
    std::size_t lines = 0;             ///< non-blank lines read
    std::size_t malformed_lines = 0;   ///< dropped (e.g. a torn tail write)
    std::size_t starts = 0;            ///< item-start events
    std::size_t finishes = 0;          ///< item-finish events
    std::size_t resumes = 0;           ///< item-resumed events
    std::size_t streams = 0;           ///< input streams absorbed

    // Distributed campaign service (docs/FORMATS.md §10): the
    // coordinator's worker-connect / worker-disconnect /
    // worker-redispatch events plus the daemon-side worker-session
    // markers.  Counted across every absorbed stream — a coordinator
    // file merged with its per-worker files tallies both perspectives.
    std::size_t worker_connects = 0;
    std::size_t worker_disconnects = 0;
    std::size_t redispatched = 0;
    std::size_t serve_sessions = 0;
    /// Streamed worker metrics snapshots ("metrics-snapshot" events,
    /// docs/FORMATS.md §11) seen in the stream.
    std::size_t metrics_snapshots = 0;

    std::vector<Item> items;  ///< sorted by index
    std::size_t shrunk_items = 0;  ///< item-finish events with a persisted reproducer
    /// Kill-reason names the stream declared (one `kill-reason` event
    /// per kind at campaign end) — rows for the kill-reason table even
    /// at count zero, so a detector that never fired stays visible.
    /// Empty for streams older than the declaration events.
    std::vector<std::string> declared_kill_reasons;

    // Fuzz stream (fuzz-start / fuzz-finding / fuzz-verdict / fuzz-end
    // events, emitted by `concat fuzz`).  A telemetry file may hold a
    // fuzz run, a campaign, or both.
    struct FuzzFinding {
        std::string key;             ///< "verdict|method" dedupe key
        std::string verdict;
        std::uint64_t iteration = 0; ///< exploration step that found it
        std::uint64_t shrink_steps = 0;
        std::uint64_t calls = 0;     ///< reproducer length (method calls)
    };
    std::size_t fuzz_runs = 0;            ///< fuzz-start events
    std::string fuzz_class;
    std::uint64_t fuzz_seed = 0;
    std::vector<FuzzFinding> fuzz_findings;
    /// verdict kind -> executions.  `concat fuzz` emits one fuzz-verdict
    /// event per kind — including zero-count contract-not-enforced and
    /// setup-error — so every verdict shows in the table.
    std::map<std::string, std::uint64_t> fuzz_verdicts;
    bool have_fuzz_summary = false;       ///< fuzz-end seen
    std::uint64_t fuzz_iterations = 0;
    std::uint64_t fuzz_executions = 0;
    std::uint64_t fuzz_interesting = 0;
    std::uint64_t fuzz_population = 0;

    // Kill stream (kill-run-start / kill-start / kill-candidate /
    // kill-verified / kill-gave-up / kill-run-end events, emitted by
    // `concat kill`; docs/FORMATS.md §14).  A telemetry file may hold a
    // campaign, a kill pass, or both (a campaign store raised in place).
    struct KillAttempt {
        std::string mutant;
        /// "verified", or the gave-up status ("site-unreachable" /
        /// "search-exhausted" / "budget-exhausted"); "searching" when
        /// the stream was cut between kill-start and its outcome.
        std::string outcome = "searching";
        std::string reason;                  ///< kill reason when verified
        std::uint64_t candidate_calls = 0;   ///< killer length before shrinking
        std::uint64_t calls = 0;             ///< killer length after shrinking
        std::uint64_t shrink_steps = 0;
        std::uint64_t states = 0;            ///< search budget consumed
        bool widened = false;                ///< spec-alphabet (phase 2) killer
        std::string corpus;                  ///< reproducer basename; may be ""
    };
    std::size_t kill_runs = 0;  ///< kill-run-start events
    std::string kill_class;
    std::uint64_t kill_survivors = 0;
    std::uint64_t kill_budget_states = 0;
    std::uint64_t kill_max_depth = 0;
    std::vector<KillAttempt> kill_attempts;  ///< dedupe by mutant, last wins
    bool have_kill_summary = false;          ///< kill-run-end seen
    std::uint64_t kill_verified = 0;
    std::uint64_t kill_killed_before = 0;
    std::uint64_t kill_killed_after = 0;
    std::string kill_score_before;  ///< rendered percents, e.g. "94.4%"
    std::string kill_score_after;

    // Final summary, from the last campaign-end event (absent when the
    // run was interrupted).
    bool have_summary = false;
    std::uint64_t killed = 0;
    std::uint64_t equivalent = 0;
    std::uint64_t not_covered = 0;
    std::uint64_t executed = 0;
    std::uint64_t workers = 0;
    std::uint64_t steals = 0;
    double score = 0.0;
    double wall_ms = 0.0;

    /// Parse a telemetry stream.  Never throws on content: anything
    /// unparseable bumps malformed_lines.
    [[nodiscard]] static TelemetryStats from_stream(std::istream& in);

    /// Parse a telemetry file; throws stc::Error when it cannot open.
    [[nodiscard]] static TelemetryStats from_file(const std::string& path);

    /// Aggregate several telemetry files (e.g. a dispatch coordinator's
    /// stream plus each worker daemon's) into one summary.  Items
    /// deduplicate by index across files — the same item reported by
    /// coordinator and worker counts once — and each file's torn tail
    /// is dropped independently.  Throws when any file cannot open.
    [[nodiscard]] static TelemetryStats from_files(
        const std::vector<std::string>& paths);

    /// Fold one more stream into this summary (the from_files
    /// worker; usable directly for incremental aggregation).
    void absorb_stream(std::istream& in);

    /// Fold one line into this summary: blank lines are skipped,
    /// unparseable ones bump malformed_lines, events dispatch to
    /// absorb_event.  The incremental entry point used by the live
    /// followers; items are NOT re-sorted (see sort_items).
    void absorb_line(std::string_view line);

    /// Fold one already-parsed event into this summary.
    void absorb_event(const JsonObject& event);

    /// Re-sort items by index (absorb_stream does this after each whole
    /// stream; incremental absorb_line callers invoke it before any
    /// order-sensitive rendering).
    void sort_items();

    /// fate -> item count, over the deduplicated items.
    [[nodiscard]] std::map<std::string, std::size_t> fate_counts() const;

    /// kill reason -> count, over the killed items; pre-seeded with a
    /// zero row for every declared kill-reason kind.
    [[nodiscard]] std::map<std::string, std::size_t> kill_reasons() const;

    /// Mutants killed only by the reference-model oracle.
    [[nodiscard]] std::size_t model_only_kills() const;

    /// sandbox termination kind -> count, over the sandbox-terminated
    /// items (empty map for an in-process run).
    [[nodiscard]] std::map<std::string, std::size_t> sandbox_kinds() const;

    /// Per-worker load, sorted by worker id.
    [[nodiscard]] std::vector<WorkerLoad> worker_loads() const;

    /// Per-operator p50/p90/p99 wall time over the timed items, sorted
    /// by operator name.  The operator is parsed out of the mutant id
    /// ("Class::Method@site.Operator.detail" -> "Operator"); items with
    /// unrecognizable ids group under "?".
    [[nodiscard]] std::vector<OperatorLatency> operator_latencies() const;

    /// Render the summary: header, fate breakdown, kill-reason
    /// histogram, the `top` slowest items, worker utilization.
    void render(std::ostream& os, std::size_t top = 10) const;

    /// Render one compact live snapshot (the `concat stats --follow` /
    /// `concat dispatch --progress` view): progress against
    /// declared_mutants, fate counts, items/sec and ETA computed from
    /// `elapsed_s` on the follower's clock, per-worker load, and the
    /// per-operator p50/p90/p99 line.
    void render_follow(std::ostream& os, double elapsed_s) const;

    /// Machine-readable mirror of render(): one JSON object covering
    /// the header, fates, kill reasons, oracle strength, sandbox kinds,
    /// worker loads, operator latencies, the `top` slowest items, and
    /// the fuzz section (docs/FORMATS.md §11).
    void write_json(std::ostream& os, std::size_t top = 10) const;

private:
    /// index -> slot in items, maintained by absorb_event and rebuilt
    /// by sort_items (sorting invalidates slots).
    std::map<std::uint64_t, std::size_t> by_index_;
    /// mutant id -> slot in kill_attempts (kill events carry no index;
    /// the mutant id is the natural key).
    std::map<std::string, std::size_t> kill_by_mutant_;
};

/// Incremental reader over a growing telemetry JSONL file — the
/// `--follow` primitive.  Each poll() absorbs the complete lines
/// appended since the previous poll; a torn tail (bytes after the last
/// newline) is held back until its newline arrives, so a writer caught
/// mid-line never produces a malformed-line count or a half-parsed
/// event.  The file may not exist yet at construction; poll() simply
/// finds nothing.
class TelemetryTail {
public:
    explicit TelemetryTail(std::string path) : path_(std::move(path)) {}

    /// Absorb newly appended complete lines into `stats`; returns how
    /// many lines were absorbed.
    std::size_t poll(TelemetryStats& stats);

private:
    std::string path_;
    std::uint64_t offset_ = 0;
    std::string partial_;
};

}  // namespace stc::obs
