// Aggregation of a campaign telemetry stream (docs/FORMATS.md §5) into
// a human-readable run summary — the `concat stats` reporter.
//
// Input is the JSONL written through JsonlSink by the campaign
// scheduler: campaign-start / item-resumed / item-start / item-finish /
// campaign-end events.  A file may hold several *generations* (a
// resumed campaign appends a new campaign-start; satellite of the
// resume contract), and its tail line may be torn by the interruption
// that made the resume necessary — both are handled: items deduplicate
// by index (last event wins) and unparseable lines are counted, not
// fatal.  The rendered report is deterministic for a fixed input file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace stc::obs {

struct TelemetryStats {
    /// One classified work item (mutant), deduplicated by index across
    /// generations and event kinds (item-finish or item-resumed).
    struct Item {
        std::uint64_t index = 0;
        std::string mutant;
        std::string fate;
        std::string reason;
        /// Sandbox termination kind ("crash-signal:<n>" / "timeout" /
        /// "resource-limit" / "worker-exit:<c>"); empty when the item
        /// ran to completion (docs/FORMATS.md §8).
        std::string sandbox;
        /// Killed only by the reference-model oracle (the item-finish /
        /// item-resumed `model_only` field); false for model-less runs.
        bool model_only = false;
        double wall_ms = 0.0;
        std::uint64_t worker = 0;
        bool has_timing = false;  ///< false for resumed items
    };

    /// Per-worker execution load, from item-finish events.
    struct WorkerLoad {
        std::uint64_t worker = 0;
        std::size_t items = 0;
        double busy_ms = 0.0;
    };

    // Identity, from the last campaign-start event.
    std::string campaign;
    std::string class_name;
    std::uint64_t seed = 0;
    std::uint64_t jobs = 0;
    std::uint64_t declared_mutants = 0;
    std::uint64_t cases = 0;
    /// The campaign ran with the differential model oracle attached
    /// (campaign-start `model` field; false for pre-model streams).
    bool model = false;

    // Stream shape.
    std::size_t generations = 0;       ///< campaign-start events seen
    std::size_t lines = 0;             ///< non-blank lines read
    std::size_t malformed_lines = 0;   ///< dropped (e.g. a torn tail write)
    std::size_t starts = 0;            ///< item-start events
    std::size_t finishes = 0;          ///< item-finish events
    std::size_t resumes = 0;           ///< item-resumed events
    std::size_t streams = 0;           ///< input streams absorbed

    // Distributed campaign service (docs/FORMATS.md §10): the
    // coordinator's worker-connect / worker-disconnect /
    // worker-redispatch events plus the daemon-side worker-session
    // markers.  Counted across every absorbed stream — a coordinator
    // file merged with its per-worker files tallies both perspectives.
    std::size_t worker_connects = 0;
    std::size_t worker_disconnects = 0;
    std::size_t redispatched = 0;
    std::size_t serve_sessions = 0;

    std::vector<Item> items;  ///< sorted by index
    std::size_t shrunk_items = 0;  ///< item-finish events with a persisted reproducer
    /// Kill-reason names the stream declared (one `kill-reason` event
    /// per kind at campaign end) — rows for the kill-reason table even
    /// at count zero, so a detector that never fired stays visible.
    /// Empty for streams older than the declaration events.
    std::vector<std::string> declared_kill_reasons;

    // Fuzz stream (fuzz-start / fuzz-finding / fuzz-verdict / fuzz-end
    // events, emitted by `concat fuzz`).  A telemetry file may hold a
    // fuzz run, a campaign, or both.
    struct FuzzFinding {
        std::string key;             ///< "verdict|method" dedupe key
        std::string verdict;
        std::uint64_t iteration = 0; ///< exploration step that found it
        std::uint64_t shrink_steps = 0;
        std::uint64_t calls = 0;     ///< reproducer length (method calls)
    };
    std::size_t fuzz_runs = 0;            ///< fuzz-start events
    std::string fuzz_class;
    std::uint64_t fuzz_seed = 0;
    std::vector<FuzzFinding> fuzz_findings;
    /// verdict kind -> executions.  `concat fuzz` emits one fuzz-verdict
    /// event per kind — including zero-count contract-not-enforced and
    /// setup-error — so every verdict shows in the table.
    std::map<std::string, std::uint64_t> fuzz_verdicts;
    bool have_fuzz_summary = false;       ///< fuzz-end seen
    std::uint64_t fuzz_iterations = 0;
    std::uint64_t fuzz_executions = 0;
    std::uint64_t fuzz_interesting = 0;
    std::uint64_t fuzz_population = 0;

    // Final summary, from the last campaign-end event (absent when the
    // run was interrupted).
    bool have_summary = false;
    std::uint64_t killed = 0;
    std::uint64_t equivalent = 0;
    std::uint64_t not_covered = 0;
    std::uint64_t executed = 0;
    std::uint64_t workers = 0;
    std::uint64_t steals = 0;
    double score = 0.0;
    double wall_ms = 0.0;

    /// Parse a telemetry stream.  Never throws on content: anything
    /// unparseable bumps malformed_lines.
    [[nodiscard]] static TelemetryStats from_stream(std::istream& in);

    /// Parse a telemetry file; throws stc::Error when it cannot open.
    [[nodiscard]] static TelemetryStats from_file(const std::string& path);

    /// Aggregate several telemetry files (e.g. a dispatch coordinator's
    /// stream plus each worker daemon's) into one summary.  Items
    /// deduplicate by index across files — the same item reported by
    /// coordinator and worker counts once — and each file's torn tail
    /// is dropped independently.  Throws when any file cannot open.
    [[nodiscard]] static TelemetryStats from_files(
        const std::vector<std::string>& paths);

    /// Fold one more stream into this summary (the from_files
    /// worker; usable directly for incremental aggregation).
    void absorb_stream(std::istream& in);

    /// fate -> item count, over the deduplicated items.
    [[nodiscard]] std::map<std::string, std::size_t> fate_counts() const;

    /// kill reason -> count, over the killed items; pre-seeded with a
    /// zero row for every declared kill-reason kind.
    [[nodiscard]] std::map<std::string, std::size_t> kill_reasons() const;

    /// Mutants killed only by the reference-model oracle.
    [[nodiscard]] std::size_t model_only_kills() const;

    /// sandbox termination kind -> count, over the sandbox-terminated
    /// items (empty map for an in-process run).
    [[nodiscard]] std::map<std::string, std::size_t> sandbox_kinds() const;

    /// Per-worker load, sorted by worker id.
    [[nodiscard]] std::vector<WorkerLoad> worker_loads() const;

    /// Render the summary: header, fate breakdown, kill-reason
    /// histogram, the `top` slowest items, worker utilization.
    void render(std::ostream& os, std::size_t top = 10) const;
};

}  // namespace stc::obs
