// Metrics registry — how often things happen and how long they take.
//
// Two instrument kinds, both thread-safe behind one mutex (updates are
// cheap and rare relative to test execution):
//   - counters: monotonically increasing uint64 (verdicts, assertion
//     evaluations, RNG value draws, mutant fates, ...);
//   - latency histograms: log2 buckets over microseconds, plus
//     count/sum/min/max, for wall-time distributions (per test case,
//     per mutant evaluation, per phase).
//
// A default-constructed Metrics is disabled: add()/observe_ms() are a
// single null check, so instrumentation stays unconditionally in hot
// paths.  Dumps come in plain text (a support::TextTable per kind) and
// JSON (docs/FORMATS.md §6).  Metric values count work, not schedule —
// but histograms of wall time ARE schedule-dependent, so dumps, like
// traces, stay out of anything the determinism gate byte-compares.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stc::obs {

/// Read-only copy of one latency histogram.
struct HistogramSnapshot {
    std::string name;
    std::uint64_t count = 0;
    double sum_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    /// Non-empty buckets only: (inclusive upper bound in ms, count).
    std::vector<std::pair<double, std::uint64_t>> buckets;

    [[nodiscard]] double mean_ms() const noexcept {
        return count == 0 ? 0.0 : sum_ms / static_cast<double>(count);
    }

    /// Quantile estimate from the log2 buckets: the upper bound of the
    /// first bucket at which the cumulative count reaches q*count,
    /// clamped to the observed max (a log2 upper bound can overshoot
    /// the largest actual observation by up to 2x).  q in [0,1]; 0 when
    /// the histogram is empty.  Resolution is the bucket width — a
    /// bound, not an exact order statistic (docs/FORMATS.md §6).
    [[nodiscard]] double percentile(double q) const noexcept;
};

class Metrics {
public:
    Metrics() = default;  ///< disabled: every update is a no-op

    /// A fresh, enabled registry.  Copies share the storage.
    [[nodiscard]] static Metrics make();

    [[nodiscard]] bool enabled() const noexcept { return state_ != nullptr; }

    /// Increment a counter (created on first use).  Const because a
    /// Metrics is a handle: updates go to the shared state, and the
    /// instrumented code holds its options by const reference.
    void add(std::string_view counter, std::uint64_t delta = 1) const;

    /// Record one latency observation (histogram created on first use).
    void observe_ms(std::string_view histogram, double ms) const;

    /// Current value of one counter; 0 when absent or disabled.
    [[nodiscard]] std::uint64_t counter(std::string_view name) const;

    /// All counters, sorted by name.
    [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters()
        const;

    /// All histograms, sorted by name.
    [[nodiscard]] std::vector<HistogramSnapshot> histograms() const;

    /// Plain-text dump: one aligned table of counters, one of histograms.
    void write_text(std::ostream& os) const;

    /// JSON dump (docs/FORMATS.md §6): {"counters":{...},"histograms":
    /// {name:{count,sum_ms,min_ms,max_ms,mean_ms,buckets:[[le_ms,n]...]}}}.
    void write_json(std::ostream& os) const;

private:
    struct State;
    std::shared_ptr<State> state_;
};

}  // namespace stc::obs
