// Thread-safe sink of JSONL events — the streaming backend of the
// observability layer.
//
// Every event is one flat JSON object per line, stamped with a global
// per-sink sequence number, appended and flushed under one mutex
// (events are rare relative to test execution).  The campaign telemetry
// trace (docs/FORMATS.md §5) is written through this sink; the Chrome
// trace exporter (trace.h) is the other backend of the layer.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "stc/obs/json.h"

namespace stc::obs {

/// A default-constructed sink is disabled: emit() is a cheap no-op (one
/// null check, no lock), so call sites need no `if (tracing)` guards.
class JsonlSink {
public:
    /// Truncate starts the file over; Append preserves previous
    /// generations (a resumed campaign must not wipe the telemetry of
    /// the interrupted run it is resuming).
    enum class OpenMode { Truncate, Append };

    JsonlSink() = default;

    /// Write to a file.  Throws stc::Error when the file cannot be
    /// opened.
    static JsonlSink to_file(const std::string& path,
                             OpenMode mode = OpenMode::Truncate);

    /// Write to a caller-owned stream (tests); the stream must outlive
    /// the sink.
    static JsonlSink to_stream(std::ostream& os);

    [[nodiscard]] bool enabled() const noexcept { return out_ != nullptr; }

    /// Append `event` (a "seq" field is added), flush the line.
    void emit(JsonObject event);

    /// Events emitted so far (by this sink, not lines in the file: an
    /// Append-mode sink starts counting at 0 again).
    [[nodiscard]] std::uint64_t count() const noexcept;

private:
    // Shared state so the sink is copyable into worker closures.
    struct State {
        std::mutex mutex;
        std::ofstream file;
        std::uint64_t next_seq = 0;
    };

    std::shared_ptr<State> state_;
    std::ostream* out_ = nullptr;  // points into state_->file or external
};

}  // namespace stc::obs
