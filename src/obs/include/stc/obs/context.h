// The observability context threaded through the pipeline.
//
// One small value bundling the two instruments a component might feed:
// the span tracer and the metrics registry.  Both are cheap copyable
// handles and both default to disabled, so a Context can sit inside
// every options struct (RunnerOptions, GeneratorOptions, EngineOptions,
// CampaignOptions) at zero cost until someone turns it on.
#pragma once

#include "stc/obs/metrics.h"
#include "stc/obs/trace.h"

namespace stc::obs {

struct Context {
    Tracer tracer;
    Metrics metrics;

    /// True when at least one instrument is live.
    [[nodiscard]] bool enabled() const noexcept {
        return tracer.enabled() || metrics.enabled();
    }
};

}  // namespace stc::obs
