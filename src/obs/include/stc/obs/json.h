// Minimal flat JSON objects for the framework's line-oriented artifacts
// (telemetry events, result-store records, trace-event args, metric
// dumps).
//
// Scope is deliberately tiny: one object per line, string/number/bool
// values only, no nesting — enough for a greppable, machine-readable
// event stream without dragging in a JSON library.  Writing and parsing
// round-trip exactly (docs/FORMATS.md documents the schemas built on
// top).  Moved here from stc::campaign when observability became its
// own layer; stc/campaign/jsonl.h re-exports the old names.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace stc::obs {

/// One flat JSON object; insertion order is preserved on rendering so
/// event lines are stable and diffable.
class JsonObject {
public:
    using Value = std::variant<bool, std::int64_t, std::uint64_t, double,
                               std::string>;

    JsonObject& set(std::string key, std::string value);
    JsonObject& set(std::string key, const char* value);
    JsonObject& set(std::string key, bool value);
    JsonObject& set(std::string key, std::int64_t value);
    JsonObject& set(std::string key, std::uint64_t value);
    JsonObject& set(std::string key, double value);
    /// Convenience for size_t on LP64 (distinct from uint64_t overload
    /// only where the platform makes them different types).
    JsonObject& set(std::string key, int value) {
        return set(std::move(key), static_cast<std::int64_t>(value));
    }

    [[nodiscard]] const Value* find(std::string_view key) const noexcept;
    [[nodiscard]] bool has(std::string_view key) const noexcept {
        return find(key) != nullptr;
    }

    /// Typed accessors; std::nullopt when missing or differently typed.
    [[nodiscard]] std::optional<std::string> get_string(std::string_view key) const;
    [[nodiscard]] std::optional<std::int64_t> get_int(std::string_view key) const;
    [[nodiscard]] std::optional<std::uint64_t> get_uint(std::string_view key) const;
    [[nodiscard]] std::optional<double> get_double(std::string_view key) const;
    [[nodiscard]] std::optional<bool> get_bool(std::string_view key) const;

    [[nodiscard]] std::size_t size() const noexcept { return fields_.size(); }
    [[nodiscard]] const std::vector<std::pair<std::string, Value>>& fields()
        const noexcept {
        return fields_;
    }

    /// Render as a single JSON line (no trailing newline).
    [[nodiscard]] std::string to_line() const;

    /// Parse one line; std::nullopt on malformed input.  Numbers with a
    /// fraction/exponent parse as double, non-negative integers as
    /// uint64, negative integers as int64.
    [[nodiscard]] static std::optional<JsonObject> parse(std::string_view line);

private:
    std::vector<std::pair<std::string, Value>> fields_;
};

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(std::string_view raw);

}  // namespace stc::obs
