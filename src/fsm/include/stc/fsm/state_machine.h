// Finite-state-machine test models — the alternative the paper weighs
// against the TFM (§3.2): "Another model commonly used is based on
// finite state machines ... Our main reason to use such model [the TFM]
// is that it scales up easier than finite state machine models."
//
// This module provides that comparison point: an FSM over abstract
// object states whose events are the component's methods, with
// all-transitions test generation (the classic transition-tour
// criterion).  The adapter turns tours into ordinary driver::TestSuites,
// so FSM- and TFM-derived suites run through the same runner and can be
// compared head-to-head (bench_fsm_vs_tfm).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stc/driver/generator.h"
#include "stc/tspec/model.h"

namespace stc::fsm {

/// One abstract state of the object (e.g. "Empty", "One", "Many").
struct StateSpec {
    std::string id;
    bool is_initial = false;  ///< object state right after construction
    bool is_final = false;    ///< destruction is allowed here
};

/// One transition: in `from`, the method `event` may be called and
/// leaves the object in `to`.
struct TransitionSpec {
    std::string from;
    std::string event;  ///< t-spec method id
    std::string to;
};

/// Deterministic FSM test model.
class StateMachine {
public:
    class Builder;

    [[nodiscard]] const std::vector<StateSpec>& states() const noexcept {
        return states_;
    }
    [[nodiscard]] const std::vector<TransitionSpec>& transitions() const noexcept {
        return transitions_;
    }

    [[nodiscard]] const StateSpec* find_state(const std::string& id) const;
    [[nodiscard]] std::optional<std::string> initial_state() const;

    /// Problems: no/multiple initial states, no final state, dangling
    /// state ids, nondeterminism (two transitions with the same
    /// (from, event)), states unreachable from the initial state.
    [[nodiscard]] std::vector<tspec::SpecDiagnostic> validate() const;
    void ensure_valid() const;

    /// All-transitions test generation: a set of event sequences, each
    /// from the initial state to a final state, that together traverse
    /// every transition at least once (greedy transition tour; ties
    /// break deterministically on declaration order).  `max_tour_length`
    /// closes a tour once it reaches that many events (before the
    /// closing walk to a final state), yielding several shorter test
    /// cases instead of one mega-tour.  The returned pointers alias this
    /// machine's transition storage: the machine must outlive the tours
    /// (do not call on a temporary).
    [[nodiscard]] std::vector<std::vector<const TransitionSpec*>> transition_tours(
        std::size_t max_tour_length = SIZE_MAX) const;

private:
    [[nodiscard]] std::vector<const TransitionSpec*> outgoing(
        const std::string& state) const;
    /// Shortest event path between states (BFS); empty when from == to,
    /// nullopt when unreachable.
    [[nodiscard]] std::optional<std::vector<const TransitionSpec*>> shortest_path(
        const std::string& from, const std::string& to) const;

    std::vector<StateSpec> states_;
    std::vector<TransitionSpec> transitions_;
    friend class Builder;
};

class StateMachine::Builder {
public:
    Builder& state(std::string id, bool is_initial = false, bool is_final = false);
    Builder& transition(std::string from, std::string event, std::string to);

    [[nodiscard]] StateMachine build() const;            ///< validated
    [[nodiscard]] StateMachine build_unchecked() const;

private:
    StateMachine machine_;
};

struct FsmSuiteOptions {
    std::uint64_t seed = 20010701;
    std::size_t max_tour_length = SIZE_MAX;
    /// t-spec method id of the constructor that realizes the initial
    /// state, and of the destructor closing each tour.
    std::string constructor_id = "m1";
    std::string destructor_id = "m2";
};

/// Turn the transition tours into an executable TestSuite: each tour is
/// one test case (constructor, the tour's events with generated argument
/// values, destructor).  `spec` supplies the method signatures and value
/// domains; `completions` plays the tester for structured parameters.
[[nodiscard]] driver::TestSuite generate_fsm_suite(
    const StateMachine& machine, const tspec::ComponentSpec& spec,
    FsmSuiteOptions options = {},
    const driver::CompletionRegistry* completions = nullptr);

}  // namespace stc::fsm
