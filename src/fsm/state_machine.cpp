#include "stc/fsm/state_machine.h"

#include <deque>
#include <map>
#include <set>

#include "stc/support/error.h"

namespace stc::fsm {

const StateSpec* StateMachine::find_state(const std::string& id) const {
    for (const auto& s : states_) {
        if (s.id == id) return &s;
    }
    return nullptr;
}

std::optional<std::string> StateMachine::initial_state() const {
    for (const auto& s : states_) {
        if (s.is_initial) return s.id;
    }
    return std::nullopt;
}

std::vector<tspec::SpecDiagnostic> StateMachine::validate() const {
    std::vector<tspec::SpecDiagnostic> out;

    std::size_t initials = 0;
    std::size_t finals = 0;
    std::set<std::string> ids;
    for (const auto& s : states_) {
        if (!ids.insert(s.id).second) out.push_back({s.id, "duplicate state id"});
        initials += s.is_initial ? 1 : 0;
        finals += s.is_final ? 1 : 0;
    }
    if (initials != 1) {
        out.push_back({"FSM", "exactly one initial state required, found " +
                                  std::to_string(initials)});
    }
    if (finals == 0) out.push_back({"FSM", "no final state declared"});

    std::set<std::pair<std::string, std::string>> seen;
    for (const auto& t : transitions_) {
        if (ids.count(t.from) == 0) out.push_back({t.from, "transition from unknown state"});
        if (ids.count(t.to) == 0) out.push_back({t.to, "transition to unknown state"});
        if (!seen.insert({t.from, t.event}).second) {
            out.push_back({t.from, "nondeterministic: two transitions on event " +
                                       t.event});
        }
    }

    // Reachability from the initial state.
    if (initials == 1) {
        std::set<std::string> reached;
        std::deque<std::string> work{*initial_state()};
        reached.insert(*initial_state());
        while (!work.empty()) {
            const std::string current = work.front();
            work.pop_front();
            for (const auto& t : transitions_) {
                if (t.from == current && reached.insert(t.to).second) {
                    work.push_back(t.to);
                }
            }
        }
        for (const auto& s : states_) {
            if (reached.count(s.id) == 0) {
                out.push_back({s.id, "state unreachable from the initial state"});
            }
        }
    }
    return out;
}

void StateMachine::ensure_valid() const {
    const auto problems = validate();
    if (problems.empty()) return;
    std::string msg = "state machine is invalid:";
    for (const auto& p : problems) msg += "\n  [" + p.where + "] " + p.message;
    throw SpecError(msg);
}

std::vector<const TransitionSpec*> StateMachine::outgoing(
    const std::string& state) const {
    std::vector<const TransitionSpec*> out;
    for (const auto& t : transitions_) {
        if (t.from == state) out.push_back(&t);
    }
    return out;
}

std::optional<std::vector<const TransitionSpec*>> StateMachine::shortest_path(
    const std::string& from, const std::string& to) const {
    if (from == to) return std::vector<const TransitionSpec*>{};
    std::map<std::string, const TransitionSpec*> parent;  // state -> edge used
    std::deque<std::string> work{from};
    std::set<std::string> seen{from};
    while (!work.empty()) {
        const std::string current = work.front();
        work.pop_front();
        for (const TransitionSpec* t : outgoing(current)) {
            if (!seen.insert(t->to).second) continue;
            parent[t->to] = t;
            if (t->to == to) {
                std::vector<const TransitionSpec*> path;
                for (std::string at = to; at != from;) {
                    const TransitionSpec* edge = parent.at(at);
                    path.insert(path.begin(), edge);
                    at = edge->from;
                }
                return path;
            }
            work.push_back(t->to);
        }
    }
    return std::nullopt;
}

std::vector<std::vector<const TransitionSpec*>> StateMachine::transition_tours(
    std::size_t max_tour_length) const {
    ensure_valid();
    const std::string initial = *initial_state();

    std::set<const TransitionSpec*> uncovered;
    for (const auto& t : transitions_) uncovered.insert(&t);

    auto nearest_final = [this](const std::string& from)
        -> std::optional<std::vector<const TransitionSpec*>> {
        std::optional<std::vector<const TransitionSpec*>> best;
        for (const auto& s : states_) {
            if (!s.is_final) continue;
            const auto path = shortest_path(from, s.id);
            if (path && (!best || path->size() < best->size())) best = path;
        }
        return best;
    };

    std::vector<std::vector<const TransitionSpec*>> tours;
    // Safety bound: each tour covers >= 1 new transition, so at most
    // |transitions| tours exist; anything beyond signals a model whose
    // uncovered transitions are unreachable (validated against above).
    while (!uncovered.empty() && tours.size() < transitions_.size()) {
        std::vector<const TransitionSpec*> tour;
        std::string current = initial;

        // Greedily chain uncovered transitions; when stuck, walk the
        // shortest path to a state that still has uncovered work.
        for (;;) {
            if (tour.size() >= max_tour_length) break;
            const TransitionSpec* next = nullptr;
            for (const TransitionSpec* t : outgoing(current)) {
                if (uncovered.count(t) != 0) {
                    next = t;
                    break;
                }
            }
            if (next == nullptr) {
                // Walk the shortest path to the closest state that still
                // has uncovered outgoing work.
                std::optional<std::vector<const TransitionSpec*>> best;
                for (const TransitionSpec* t : uncovered) {
                    const auto path = shortest_path(current, t->from);
                    if (path && (!best || path->size() < best->size())) best = path;
                }
                if (!best) break;          // nothing reachable from here
                if (best->empty()) break;  // defensive: cannot make progress
                for (const TransitionSpec* t : *best) {
                    tour.push_back(t);
                    uncovered.erase(t);
                }
                current = tour.back()->to;
                continue;
            }
            tour.push_back(next);
            uncovered.erase(next);
            current = next->to;
        }

        // Close the tour at the nearest final state.
        const auto closing = nearest_final(current);
        if (closing) {
            for (const TransitionSpec* t : *closing) {
                tour.push_back(t);
                uncovered.erase(t);
            }
        }
        if (tour.empty()) break;  // defensive: avoid spinning
        tours.push_back(std::move(tour));
    }
    return tours;
}

StateMachine::Builder& StateMachine::Builder::state(std::string id, bool is_initial,
                                                    bool is_final) {
    machine_.states_.push_back(StateSpec{std::move(id), is_initial, is_final});
    return *this;
}

StateMachine::Builder& StateMachine::Builder::transition(std::string from,
                                                         std::string event,
                                                         std::string to) {
    machine_.transitions_.push_back(
        TransitionSpec{std::move(from), std::move(event), std::move(to)});
    return *this;
}

StateMachine StateMachine::Builder::build() const {
    machine_.ensure_valid();
    return machine_;
}

StateMachine StateMachine::Builder::build_unchecked() const { return machine_; }

driver::TestSuite generate_fsm_suite(const StateMachine& machine,
                                     const tspec::ComponentSpec& spec,
                                     FsmSuiteOptions options,
                                     const driver::CompletionRegistry* completions) {
    machine.ensure_valid();
    const tspec::MethodSpec* ctor = spec.find_method(options.constructor_id);
    const tspec::MethodSpec* dtor = spec.find_method(options.destructor_id);
    if (ctor == nullptr || !ctor->is_constructor()) {
        throw SpecError("FSM suite: '" + options.constructor_id +
                        "' is not a constructor of " + spec.class_name);
    }
    if (dtor == nullptr || !dtor->is_destructor()) {
        throw SpecError("FSM suite: '" + options.destructor_id +
                        "' is not a destructor of " + spec.class_name);
    }

    driver::TestSuite suite;
    suite.class_name = spec.class_name;
    suite.seed = options.seed;
    suite.model_nodes = machine.states().size();
    suite.model_links = machine.transitions().size();

    support::Pcg32 rng(options.seed);
    std::size_t next_id = 0;

    auto synthesize = [&](const tspec::MethodSpec& method) {
        driver::MethodCall call;
        call.method_id = method.id;
        call.method_name = method.name;
        call.is_constructor = method.is_constructor();
        call.is_destructor = method.is_destructor();
        for (const tspec::TypedSlot& p : method.parameters) {
            if (p.domain) {
                call.arguments.push_back(p.domain->sample(rng));
                continue;
            }
            const driver::CompletionRegistry::Completion* completion =
                completions == nullptr ? nullptr : completions->find(p.class_name);
            if (completion != nullptr && *completion) {
                call.arguments.push_back((*completion)(rng));
            } else {
                call.arguments.push_back(
                    domain::Value::make_pointer(nullptr, p.class_name));
            }
        }
        return call;
    };

    const auto tours = machine.transition_tours(options.max_tour_length);
    suite.transactions_enumerated = tours.size();
    for (const auto& tour : tours) {
        driver::TestCase tc;
        tc.id = "TC" + std::to_string(next_id++);
        std::string text = "[" + *machine.initial_state() + "]";
        tc.calls.push_back(synthesize(*ctor));
        for (const TransitionSpec* t : tour) {
            const tspec::MethodSpec* method = spec.find_method(t->event);
            if (method == nullptr) {
                throw SpecError("FSM transition references unknown method id " +
                                t->event);
            }
            tc.calls.push_back(synthesize(*method));
            text += " -" + t->event + "-> " + t->to;
        }
        tc.calls.push_back(synthesize(*dtor));
        tc.transaction_text = text;
        suite.cases.push_back(std::move(tc));
    }
    return suite;
}

}  // namespace stc::fsm
