// C++ driver source generation — the paper's actual Concat output.
//
// Concat generated *source code* drivers because C++ has no reflection:
// each test case is a template function (Fig. 6) so it can be reused to
// test a subclass, and the executable suite (Fig. 7) instantiates the
// class under test and applies the test cases.  This module reproduces
// that output format with compilable modern C++:
//   - the class invariant is checked before each call and after return;
//   - calls run in a try block; an assertion violation is logged with
//     the test case name and the method being executed;
//   - Reporter stores the object's internal state in the log file;
//   - structured parameters the tester must complete are emitted as
//     calls to tester_supplied_<Class>(hint) hooks, making the suite
//     "executable after being completed" exactly as §3.4.1 describes.
#pragma once

#include <string>
#include <vector>

#include "stc/driver/test_case.h"
#include "stc/interclass/system_driver.h"
#include "stc/tspec/model.h"

namespace stc::codegen {

struct CodegenOptions {
    /// #include lines to emit (the component's public header(s)).
    std::vector<std::string> includes;
    /// `using namespace ...;` lines to emit after the includes, so the
    /// generated driver resolves the component's types.
    std::vector<std::string> usings;
    /// Log file name used by the generated drivers (Fig. 6 uses
    /// "Result.txt").
    std::string log_file = "Result.txt";
    /// Emit test cases as template functions (Fig. 6) so a subclass can
    /// reuse them; when false, emits plain functions over the concrete
    /// class.
    bool as_templates = true;
};

class DriverCodegen {
public:
    DriverCodegen(tspec::ComponentSpec spec, CodegenOptions options = {});

    /// Source of one test-case function in the Fig. 6 format.
    [[nodiscard]] std::string test_case_source(const driver::TestCase& test_case) const;

    /// Complete translation unit: prologue, tester-completion hook
    /// declarations, all test cases, and the executable suite main()
    /// (Fig. 7).
    [[nodiscard]] std::string suite_source(const driver::TestSuite& suite) const;

    /// The tester-completion hook classes referenced by a suite (one
    /// declaration per structured parameter class).
    [[nodiscard]] std::vector<std::string> completion_classes(
        const driver::TestSuite& suite) const;

private:
    [[nodiscard]] std::string render_argument(const domain::Value& value,
                                              int* hint_counter) const;
    [[nodiscard]] std::string render_call(const driver::MethodCall& call,
                                          int* hint_counter) const;

    tspec::ComponentSpec spec_;  // owned: callers may pass temporaries
    CodegenOptions options_;
};

/// Driver source generation for interclass (system) suites: each test
/// case becomes a plain function that constructs every role on the
/// stack, applies the transaction's calls (role references render as
/// `&role_obj`), and checks each role's invariant around every call.
/// Roles must be self-testable classes (they inherit BuiltInTest — the
/// premise of the whole approach).
class SystemDriverCodegen {
public:
    SystemDriverCodegen(interclass::SystemSpec spec, CodegenOptions options = {});

    [[nodiscard]] std::string test_case_source(
        const interclass::SystemTestCase& test_case) const;

    [[nodiscard]] std::string suite_source(
        const interclass::SystemTestSuite& suite) const;

private:
    [[nodiscard]] std::string render_args(
        const std::vector<interclass::SystemArg>& args, int* hint_counter) const;

    interclass::SystemSpec spec_;
    CodegenOptions options_;
};

}  // namespace stc::codegen
