#include "stc/codegen/driver_codegen.h"

#include <set>

#include "stc/support/indent_writer.h"
#include "stc/support/strings.h"

namespace stc::codegen {

using support::IndentWriter;

DriverCodegen::DriverCodegen(tspec::ComponentSpec spec, CodegenOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

std::string DriverCodegen::render_argument(const domain::Value& value,
                                           int* hint_counter) const {
    using domain::ValueKind;
    if (value.kind() == ValueKind::Pointer || value.kind() == ValueKind::Object) {
        // Structured parameter: the tester completes it (§3.4.1).  The
        // class name travels in the value's type tag.
        const std::string cls = value.as_object().type_name.empty()
                                    ? "CObject"
                                    : value.as_object().type_name;
        return "tester_supplied_" + cls + "(" + std::to_string((*hint_counter)++) +
               ")";
    }
    return value.to_source();
}

std::string DriverCodegen::render_call(const driver::MethodCall& call,
                                       int* hint_counter) const {
    std::string out = call.method_name + "(";
    for (std::size_t i = 0; i < call.arguments.size(); ++i) {
        if (i != 0) out += ", ";
        out += render_argument(call.arguments[i], hint_counter);
    }
    out += ")";
    return out;
}

std::vector<std::string> DriverCodegen::completion_classes(
    const driver::TestSuite& suite) const {
    std::set<std::string> classes;
    for (const auto& tc : suite.cases) {
        for (const auto& call : tc.calls) {
            for (const auto& arg : call.arguments) {
                if (arg.kind() == domain::ValueKind::Pointer ||
                    arg.kind() == domain::ValueKind::Object) {
                    const std::string& cls = arg.as_object().type_name;
                    classes.insert(cls.empty() ? "CObject" : cls);
                }
            }
        }
    }
    return {classes.begin(), classes.end()};
}

std::string DriverCodegen::test_case_source(const driver::TestCase& test_case) const {
    IndentWriter w;
    int hints = 0;

    w.line("// Transaction: " + test_case.transaction_text);
    if (options_.as_templates) {
        // Test cases are template functions "to allow reuse when testing a
        // subclass" (§3.4.1, Fig. 6).
        w.line("template <class ClassType>");
        w.open("void TestCase" + test_case.id.substr(2) + "(ClassType* CUT) {");
    } else {
        w.open("void TestCase" + test_case.id.substr(2) + "(" + spec_.class_name +
               "* CUT) {");
    }

    w.line("const char* CurrentMethod = \"<constructor>\";");
    w.line("std::ofstream LogFile(" + support::cpp_string_literal(options_.log_file) +
           ", std::ios::app);");
    w.line("if (!LogFile) std::cout << \"Error opening log file! \\n\";");
    w.open("try {");

    for (std::size_t i = 1; i < test_case.calls.size(); ++i) {
        const driver::MethodCall& call = test_case.calls[i];
        if (call.is_destructor) continue;  // emitted as delete below
        const std::string rendered = render_call(call, &hints);
        // Discard (not ignore) returned values: keeps -Wunused-result
        // clean for [[nodiscard]] accessors.
        const tspec::MethodSpec* method = spec_.find_method(call.method_id);
        const bool returns_value = method != nullptr && !method->return_type.empty();
        // Invariant before the call and after its return (Fig. 6).
        w.line("CUT->InvariantTest();");
        w.line("CurrentMethod = " + support::cpp_string_literal(rendered) + ";");
        if (call.expect_rejection) {
            // Error-recovery call: the precondition must fire.
            w.open("try {");
            w.line((returns_value ? "(void)CUT->" : "CUT->") + rendered + ";");
            w.line("LogFile << \"CONTRACT NOT ENFORCED: \" << CurrentMethod "
                   "<< \"\\n\";");
            w.close("} catch (const stc::bit::AssertionViolation&) {");
            w.indent();
            w.line("// expected: the contract rejected the call");
            w.outdent();
            w.line("}");
        } else {
            w.line((returns_value ? "(void)CUT->" : "CUT->") + rendered + ";");
        }
        w.line("CUT->InvariantTest();");
    }

    w.line("LogFile << \"TestCase " + test_case.id + " OK!\\n\";");
    w.line("LogFile.flush();");
    w.line("// store the object's internal state");
    w.line("CUT->Reporter(LogFile);");
    w.line("LogFile << \"\\n\";");
    w.line("delete CUT;");
    w.close("} catch (const std::exception& er) {");
    w.indent();
    w.line("// the name of the called method is stored in the log file");
    w.line("LogFile << \"TestCase " + test_case.id + "\\n\";");
    w.line("LogFile << er.what() << \"\\n\";");
    w.line("LogFile << \"Method called: \" << CurrentMethod << \"\\n\";");
    w.line("LogFile.flush();");
    w.line("delete CUT;");
    w.outdent();
    w.line("}");
    w.line("LogFile.close();");
    w.close("}");
    return w.str();
}

std::string DriverCodegen::suite_source(const driver::TestSuite& suite) const {
    IndentWriter w;
    w.line("// Generated by the Concat Driver Generator.");
    w.line("// Class under test: " + suite.class_name);
    w.line("// Seed: " + std::to_string(suite.seed) + "; test model " +
           std::to_string(suite.model_nodes) + " node(s) / " +
           std::to_string(suite.model_links) + " link(s); " +
           std::to_string(suite.size()) + " test case(s).");
    w.line();
    w.line("#include <fstream>");
    w.line("#include <iostream>");
    for (const auto& inc : options_.includes) {
        w.line("#include " + (inc.front() == '<' ? inc : "\"" + inc + "\""));
    }
    for (const auto& ns : options_.usings) {
        w.line("using namespace " + ns + ";");
    }
    w.line();

    const auto classes = completion_classes(suite);
    if (!classes.empty()) {
        w.line("// Tester-supplied completions for structured parameter types");
        w.line("// (the suite is executable after these are implemented, §3.4.1):");
        for (const auto& cls : classes) {
            w.line(cls + "* tester_supplied_" + cls + "(int hint);");
        }
        w.line();
    }

    for (const auto& tc : suite.cases) {
        w.line(test_case_source(tc));
    }

    // Fig. 7: the executable suite constructs the CUT per test case and
    // applies the test-case functions.
    w.open("int main() {");
    for (const auto& tc : suite.cases) {
        int hints = 0;
        const auto& ctor = tc.calls.front();
        std::string args;
        for (std::size_t i = 0; i < ctor.arguments.size(); ++i) {
            if (i != 0) args += ", ";
            args += render_argument(ctor.arguments[i], &hints);
        }
        w.line("TestCase" + tc.id.substr(2) + "(new " + suite.class_name + "(" + args +
               "));");
    }
    w.line("return 0;");
    w.close("}");
    return w.str();
}

SystemDriverCodegen::SystemDriverCodegen(interclass::SystemSpec spec,
                                         CodegenOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

std::string SystemDriverCodegen::render_args(
    const std::vector<interclass::SystemArg>& args, int* hint_counter) const {
    std::string out;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i != 0) out += ", ";
        if (args[i].is_role_ref()) {
            out += "&" + args[i].role_ref + "_obj";
            continue;
        }
        const auto& value = args[i].value;
        if (value.kind() == domain::ValueKind::Pointer ||
            value.kind() == domain::ValueKind::Object) {
            const std::string cls = value.as_object().type_name.empty()
                                        ? "CObject"
                                        : value.as_object().type_name;
            out += "tester_supplied_" + cls + "(" +
                   std::to_string((*hint_counter)++) + ")";
        } else {
            out += value.to_source();
        }
    }
    return out;
}

std::string SystemDriverCodegen::test_case_source(
    const interclass::SystemTestCase& test_case) const {
    IndentWriter w;
    int hints = 0;

    w.line("// Transaction: " + test_case.transaction_text);
    w.open("void SystemCase" + test_case.id.substr(3) + "() {");
    w.line("const char* CurrentMethod = \"<setup>\";");
    w.line("std::ofstream LogFile(" + support::cpp_string_literal(options_.log_file) +
           ", std::ios::app);");

    // Roles on the stack, in declaration order (reverse teardown for free).
    for (const auto& ctor : test_case.setup) {
        const interclass::RoleSpec* role = spec_.find_role(ctor.role);
        const std::string args = render_args(ctor.arguments, &hints);
        // No empty parentheses: `T obj();` is the most vexing parse.
        w.line(role->class_name + " " + ctor.role + "_obj" +
               (args.empty() ? "" : "(" + args + ")") + ";");
    }

    auto invariants = [&] {
        for (const auto& role : spec_.roles) {
            w.line(role.role + "_obj.InvariantTest();");
        }
    };

    w.open("try {");
    for (const auto& call : test_case.body) {
        const std::string rendered =
            call.method_name + "(" + render_args(call.arguments, &hints) + ")";
        invariants();
        w.line("CurrentMethod = " +
               support::cpp_string_literal(call.role + "." + rendered) + ";");
        const tspec::ComponentSpec* cls =
            spec_.spec_of(spec_.find_role(call.role)->class_name);
        const tspec::MethodSpec* method =
            cls == nullptr ? nullptr : cls->find_method(call.method_id);
        const bool returns_value = method != nullptr && !method->return_type.empty();
        w.line((returns_value ? "(void)" : "") + call.role + "_obj." + rendered +
               ";");
        invariants();
    }
    w.line("LogFile << \"TestCase " + test_case.id + " OK!\\n\";");
    for (const auto& role : spec_.roles) {
        w.line(role.role + "_obj.Reporter(LogFile);");
        w.line("LogFile << \"\\n\";");
    }
    w.close("} catch (const std::exception& er) {");
    w.indent();
    w.line("LogFile << \"TestCase " + test_case.id + "\\n\" << er.what() << "
           "\"\\n\";");
    w.line("LogFile << \"Method called: \" << CurrentMethod << \"\\n\";");
    w.outdent();
    w.line("}");
    w.line("LogFile.close();");
    w.close("}");
    return w.str();
}

std::string SystemDriverCodegen::suite_source(
    const interclass::SystemTestSuite& suite) const {
    IndentWriter w;
    w.line("// Generated by the Concat Driver Generator (interclass).");
    w.line("// Component under test: " + suite.component_name);
    w.line("// Seed: " + std::to_string(suite.seed) + "; system model " +
           std::to_string(suite.model_nodes) + " node(s) / " +
           std::to_string(suite.model_links) + " link(s); " +
           std::to_string(suite.size()) + " test case(s).");
    w.line();
    w.line("#include <fstream>");
    w.line("#include <iostream>");
    for (const auto& inc : options_.includes) {
        w.line("#include " + (inc.front() == '<' ? inc : "\"" + inc + "\""));
    }
    for (const auto& ns : options_.usings) {
        w.line("using namespace " + ns + ";");
    }
    w.line();

    for (const auto& tc : suite.cases) {
        w.line(test_case_source(tc));
    }

    w.open("int main() {");
    for (const auto& tc : suite.cases) {
        w.line("SystemCase" + tc.id.substr(3) + "();");
    }
    w.line("return 0;");
    w.close("}");
    return w.str();
}

}  // namespace stc::codegen
