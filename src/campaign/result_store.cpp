#include "stc/campaign/result_store.h"

#include <iterator>
#include <string_view>
#include <utility>
#include <vector>

#include "stc/support/error.h"

namespace stc::campaign {

JsonObject ItemRecord::to_json() const {
    JsonObject o;
    o.set("key", key)
        .set("mutant", mutant_id)
        .set("item", static_cast<std::uint64_t>(item_index))
        .set("fate", fate)
        .set("reason", reason)
        .set("hit", hit_by_suite)
        .set("probe_kill", killed_by_probe)
        .set("item_seed", item_seed)
        .set("wall_ms", wall_ms);
    if (model_only) o.set("model_only", true);
    if (!sandbox.empty()) o.set("sandbox", sandbox);
    if (synthesized) o.set("synthesized", true);
    return o;
}

std::optional<ItemRecord> ItemRecord::from_json(const JsonObject& o) {
    ItemRecord r;
    const auto key = o.get_string("key");
    const auto mutant = o.get_string("mutant");
    const auto item = o.get_uint("item");
    const auto fate = o.get_string("fate");
    const auto reason = o.get_string("reason");
    const auto hit = o.get_bool("hit");
    const auto probe_kill = o.get_bool("probe_kill");
    if (!key || !mutant || !item || !fate || !reason || !hit || !probe_kill) {
        return {};
    }
    r.key = *key;
    r.mutant_id = *mutant;
    r.item_index = static_cast<std::size_t>(*item);
    r.fate = *fate;
    r.reason = *reason;
    r.hit_by_suite = *hit;
    r.killed_by_probe = *probe_kill;
    r.model_only = o.get_bool("model_only").value_or(false);
    r.item_seed = o.get_uint("item_seed").value_or(0);
    r.wall_ms = o.get_double("wall_ms").value_or(0.0);
    r.sandbox = o.get_string("sandbox").value_or("");
    r.synthesized = o.get_bool("synthesized").value_or(false);
    return r;
}

const ItemRecord* StorePeek::find(const std::string& key) const {
    for (const ItemRecord& r : records) {
        if (r.key == key) return &r;
    }
    return nullptr;
}

std::optional<StorePeek> peek_store(const std::string& path,
                                    std::string* error) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr) *error = "cannot open result store: " + path;
        return {};
    }
    const std::string content{std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>()};
    const bool terminated = !content.empty() && content.back() == '\n';
    StorePeek out;
    std::size_t pos = 0;
    bool header_line = true;
    while (pos < content.size()) {
        const std::size_t nl = content.find('\n', pos);
        const bool last = nl == std::string::npos;
        const std::string_view line(content.data() + pos,
                                    (last ? content.size() : nl) - pos);
        pos = last ? content.size() : nl + 1;
        const bool torn = last && !terminated;
        if (header_line) {
            header_line = false;
            const auto header = JsonObject::parse(line);
            const auto campaign =
                header ? header->get_string("campaign") : std::nullopt;
            if (!header || header->get_string("event") != "store-header" ||
                !campaign || torn) {
                if (error != nullptr) {
                    *error = "not a result store (bad header): " + path;
                }
                return {};
            }
            out.fingerprint = *campaign;
            continue;
        }
        const auto parsed = JsonObject::parse(line);
        auto record = parsed ? ItemRecord::from_json(*parsed) : std::nullopt;
        if (!record || torn) {
            ++out.dropped;
            continue;
        }
        out.records.push_back(std::move(*record));
    }
    if (header_line) {
        if (error != nullptr) *error = "empty result store: " + path;
        return {};
    }
    return out;
}

void rewrite_store(const std::string& path, const std::string& fingerprint,
                   const std::vector<ItemRecord>& records) {
    std::ofstream out(path, std::ios::trunc);
    JsonObject header;
    header.set("event", "store-header").set("campaign", fingerprint);
    out << header.to_line() << '\n';
    for (const ItemRecord& record : records) {
        out << record.to_json().to_line() << '\n';
    }
    out.flush();
    if (!out) throw Error("cannot rewrite result store: " + path);
}

ResultStore::ResultStore(const std::string& path, const std::string& fingerprint)
    : fingerprint_(fingerprint) {
    bool resumable = false;
    bool needs_rewrite = false;
    std::vector<ItemRecord> recovered;  // load order, for faithful rewrite
    {
        std::ifstream in(path, std::ios::binary);
        if (in) {
            const std::string content{std::istreambuf_iterator<char>(in),
                                      std::istreambuf_iterator<char>()};
            const bool terminated = !content.empty() && content.back() == '\n';
            std::size_t pos = 0;
            bool header_line = true;
            while (pos < content.size()) {
                const std::size_t nl = content.find('\n', pos);
                const bool last = nl == std::string::npos;
                const std::string_view line(
                    content.data() + pos, (last ? content.size() : nl) - pos);
                pos = last ? content.size() : nl + 1;
                // A final line with no newline is a write that the
                // previous process died inside: the record (if it even
                // parses) may be incomplete, so the tail must be cut
                // and the file rewritten before this run appends.
                const bool torn = last && !terminated;
                if (header_line) {
                    header_line = false;
                    const auto header = JsonObject::parse(line);
                    resumable = header &&
                                header->get_string("event") == "store-header" &&
                                header->get_string("campaign") == fingerprint_;
                    if (!resumable) break;
                    if (torn) needs_rewrite = true;
                    continue;
                }
                const auto parsed = JsonObject::parse(line);
                auto record =
                    parsed ? ItemRecord::from_json(*parsed) : std::nullopt;
                if (!record || torn) {
                    ++dropped_;
                    needs_rewrite = true;
                    continue;
                }
                recovered.push_back(std::move(*record));
            }
        }
    }

    if (resumable) {
        for (const ItemRecord& record : recovered) {
            records_.insert_or_assign(record.key, record);
        }
        loaded_ = records_.size();
        if (needs_rewrite) {
            std::ofstream rewrite(path, std::ios::trunc);
            JsonObject header;
            header.set("event", "store-header").set("campaign", fingerprint_);
            rewrite << header.to_line() << '\n';
            for (const ItemRecord& record : recovered) {
                rewrite << record.to_json().to_line() << '\n';
            }
            rewrite.flush();
            if (!rewrite) throw Error("cannot rewrite result store: " + path);
        }
        out_.open(path, std::ios::app);
    } else {
        start_fresh(path);
    }
    if (!out_) throw Error("cannot open result store: " + path);
}

void ResultStore::start_fresh(const std::string& path) {
    records_.clear();
    loaded_ = 0;
    dropped_ = 0;
    out_.open(path, std::ios::trunc);
    if (!out_) return;  // constructor reports the failure
    JsonObject header;
    header.set("event", "store-header").set("campaign", fingerprint_);
    out_ << header.to_line() << '\n';
    out_.flush();
}

const ItemRecord* ResultStore::find(const std::string& key) const {
    const auto it = records_.find(key);
    return it == records_.end() ? nullptr : &it->second;
}

void ResultStore::append(const ItemRecord& record) {
    const std::lock_guard<std::mutex> lock(mutex_);
    out_ << record.to_json().to_line() << '\n';
    out_.flush();
    records_.insert_or_assign(record.key, record);
}

}  // namespace stc::campaign
