#include "stc/campaign/result_store.h"

#include <utility>

#include "stc/support/error.h"

namespace stc::campaign {

JsonObject ItemRecord::to_json() const {
    JsonObject o;
    o.set("key", key)
        .set("mutant", mutant_id)
        .set("item", static_cast<std::uint64_t>(item_index))
        .set("fate", fate)
        .set("reason", reason)
        .set("hit", hit_by_suite)
        .set("probe_kill", killed_by_probe)
        .set("item_seed", item_seed)
        .set("wall_ms", wall_ms);
    return o;
}

std::optional<ItemRecord> ItemRecord::from_json(const JsonObject& o) {
    ItemRecord r;
    const auto key = o.get_string("key");
    const auto mutant = o.get_string("mutant");
    const auto item = o.get_uint("item");
    const auto fate = o.get_string("fate");
    const auto reason = o.get_string("reason");
    const auto hit = o.get_bool("hit");
    const auto probe_kill = o.get_bool("probe_kill");
    if (!key || !mutant || !item || !fate || !reason || !hit || !probe_kill) {
        return {};
    }
    r.key = *key;
    r.mutant_id = *mutant;
    r.item_index = static_cast<std::size_t>(*item);
    r.fate = *fate;
    r.reason = *reason;
    r.hit_by_suite = *hit;
    r.killed_by_probe = *probe_kill;
    r.item_seed = o.get_uint("item_seed").value_or(0);
    r.wall_ms = o.get_double("wall_ms").value_or(0.0);
    return r;
}

ResultStore::ResultStore(const std::string& path, const std::string& fingerprint)
    : fingerprint_(fingerprint) {
    bool resumable = false;
    {
        std::ifstream in(path);
        if (in) {
            std::string line;
            if (std::getline(in, line)) {
                const auto header = JsonObject::parse(line);
                resumable = header && header->get_string("event") == "store-header" &&
                            header->get_string("campaign") == fingerprint_;
            }
            if (resumable) {
                while (std::getline(in, line)) {
                    const auto parsed = JsonObject::parse(line);
                    if (!parsed) continue;  // torn tail write: drop
                    auto record = ItemRecord::from_json(*parsed);
                    if (!record) continue;
                    records_.insert_or_assign(record->key, std::move(*record));
                }
                loaded_ = records_.size();
            }
        }
    }

    if (resumable) {
        out_.open(path, std::ios::app);
    } else {
        start_fresh(path);
    }
    if (!out_) throw Error("cannot open result store: " + path);
}

void ResultStore::start_fresh(const std::string& path) {
    records_.clear();
    loaded_ = 0;
    out_.open(path, std::ios::trunc);
    if (!out_) return;  // constructor reports the failure
    JsonObject header;
    header.set("event", "store-header").set("campaign", fingerprint_);
    out_ << header.to_line() << '\n';
    out_.flush();
}

const ItemRecord* ResultStore::find(const std::string& key) const {
    const auto it = records_.find(key);
    return it == records_.end() ? nullptr : &it->second;
}

void ResultStore::append(const ItemRecord& record) {
    const std::lock_guard<std::mutex> lock(mutex_);
    out_ << record.to_json().to_line() << '\n';
    out_.flush();
    records_.insert_or_assign(record.key, record);
}

}  // namespace stc::campaign
