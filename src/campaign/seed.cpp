#include "stc/campaign/seed.h"

#include <cstdio>

namespace stc::campaign {

std::string to_hex(std::uint64_t value) {
    char buffer[17];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(value));
    return std::string(buffer, 16);
}

}  // namespace stc::campaign
