#include "stc/campaign/scheduler.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <sstream>

#include "stc/campaign/seed.h"
#include "stc/campaign/thread_pool.h"
#include "stc/campaign/work_list.h"
#include "stc/fuzz/fuzzer.h"
#include "stc/fuzz/shrink.h"
#include "stc/mutation/controller.h"
#include "stc/mutation/prune.h"
#include "stc/sandbox/codec.h"
#include "stc/sandbox/worker_pool.h"
#include "stc/support/error.h"

namespace stc::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Chained content hashing: h' = mix(h ^ fnv(token)).
std::uint64_t absorb(std::uint64_t h, std::string_view token) {
    return splitmix64(h ^ fnv1a64(token));
}
std::uint64_t absorb(std::uint64_t h, std::uint64_t value) {
    return splitmix64(h ^ value);
}

std::uint64_t absorb_suite(std::uint64_t h, const driver::TestSuite& suite) {
    h = absorb(h, suite.class_name);
    h = absorb(h, suite.seed);
    h = absorb(h, static_cast<std::uint64_t>(suite.cases.size()));
    for (const auto& tc : suite.cases) {
        h = absorb(h, tc.id);
        h = absorb(h, tc.transaction_text);
        h = absorb(h, tc.entry_state);
    }
    return h;
}

}  // namespace

CampaignScheduler::CampaignScheduler(const reflect::Registry& bindings,
                                     CampaignOptions options)
    : bindings_(bindings), options_(std::move(options)) {
    if (!options_.engine.runner.log_path.empty()) {
        throw ContractError(
            "campaign runner cannot append to a shared log file; leave "
            "RunnerOptions::log_path empty (use --telemetry-out for telemetry)");
    }
}

std::string CampaignScheduler::fingerprint(
    const driver::TestSuite& suite, const std::vector<mutation::Mutant>& mutants,
    const driver::TestSuite* probe_suite) const {
    std::uint64_t h = fnv1a64("stc-campaign-v1");
    h = absorb(h, options_.seed);
    h = absorb_suite(h, suite);
    h = absorb(h, static_cast<std::uint64_t>(mutants.size()));
    for (const auto& m : mutants) h = absorb(h, m.id());
    const auto& oracle = options_.engine.oracle;
    h = absorb(h, static_cast<std::uint64_t>((oracle.use_crashes ? 1 : 0) |
                                             (oracle.use_assertions ? 2 : 0) |
                                             (oracle.use_output_diff ? 4 : 0)));
    const auto& runner = options_.engine.runner;
    h = absorb(h, static_cast<std::uint64_t>((runner.check_invariants ? 1 : 0) |
                                             (runner.capture_reports ? 2 : 0) |
                                             (runner.observe_each_call ? 4 : 0)));
    // The model oracle changes what "killed" means, so it is campaign
    // identity — but only when actually engaged, keeping every
    // pre-model store fingerprint (and thus resumability) intact.
    if (runner.model != nullptr && runner.model->valid() && oracle.use_model) {
        h = absorb(h, "model-oracle");
    }
    // Same pattern for the fast execution tier: fates are identical by
    // contract, but the token still enters the identity (only when the
    // tier is engaged, preserving old stores) so a prune-rule revision —
    // kPruneIndexVersion bump — invalidates rather than resumes.
    if (options_.prune && !options_.engine.manual_oracle) {
        h = absorb(h, mutation::kPruneIndexToken);
    }
    if (probe_suite != nullptr) h = absorb_suite(h, *probe_suite);
    return to_hex(h);
}

CampaignResult CampaignScheduler::run(
    const driver::TestSuite& suite, const std::vector<mutation::Mutant>& mutants,
    const driver::TestSuite* probe_suite) const {
    const std::size_t jobs =
        options_.jobs == 0 ? WorkStealingPool::hardware_workers() : options_.jobs;
    const bool shrink_kills = !options_.shrink_corpus_dir.empty();
    if (shrink_kills && options_.spec == nullptr) {
        throw ContractError(
            "CampaignOptions::shrink_corpus_dir requires CampaignOptions::spec "
            "(the shrinker needs the TFM and the value domains)");
    }
    if (options_.isolate && shrink_kills) {
        throw ContractError(
            "CampaignOptions::isolate cannot be combined with "
            "shrink_corpus_dir: the shrinker re-executes mutants inside the "
            "orchestrator process, defeating the isolation");
    }

    CampaignResult out;
    out.fingerprint = fingerprint(suite, mutants, probe_suite);
    out.stats.items = mutants.size();
    out.stats.workers = jobs;

    // The campaign-level observability context flows into every layer
    // below: runner (test-case/method-call spans), oracle, and each
    // mutant evaluation.  Never into the fingerprint or the report.
    mutation::EngineOptions engine = options_.engine;
    engine.obs = options_.obs;
    engine.runner.obs = options_.obs;
    const obs::SpanScope campaign_span(options_.obs.tracer, "phase", "campaign",
                                       obs::JsonObject()
                                           .set("class", suite.class_name)
                                           .set("fingerprint", out.fingerprint));

    // Executors, shared read-only across workers (TestRunner::run is
    // const and keeps all per-run state on the stack).
    const driver::TestRunner runner(bindings_, engine.runner);
    driver::RunnerOptions probe_opts = engine.runner;
    probe_opts.observe_each_call = true;
    const driver::TestRunner probe_runner(bindings_, probe_opts);

    const mutation::MutationEngine::SuiteExecutor run_suite = [&runner, &suite] {
        return runner.run(suite);
    };
    mutation::MutationEngine::SuiteExecutor run_probe;
    if (probe_suite != nullptr) {
        run_probe = [&probe_runner, probe_suite] {
            return probe_runner.run(*probe_suite);
        };
    }

    TelemetrySink trace;
    if (!options_.telemetry_path.empty()) {
        // A resumable campaign appends: the telemetry of the generation
        // being resumed is evidence, not scratch.
        trace = TelemetrySink::to_file(options_.telemetry_path,
                                       options_.store_path.empty()
                                           ? TelemetrySink::OpenMode::Truncate
                                           : TelemetrySink::OpenMode::Append);
    }

    // Fast execution tier: engaged unless disabled or a manual oracle is
    // configured (the one detector that can kill a byte-identical
    // report, breaking the skip-unreached-pairs premise).  A lockstep
    // model only gates the memoization half — unreached cases still run
    // byte-identically, model comparisons included.
    const bool prune_engaged = options_.prune && !engine.manual_oracle;
    const bool model_engaged = engine.runner.model != nullptr &&
                               engine.runner.model->valid() &&
                               engine.oracle.use_model;
    const reflect::ClassBinding& binding = bindings_.at(suite.class_name);

    // Baseline golden runs, captured once, serially, before sharding
    // (the paper validates the original program's outputs up front).
    // With pruning engaged the SAME single run also records the
    // coverage-signature index — observation is free.
    oracle::GoldenRecord probe_golden;
    mutation::CoverageIndex coverage;
    mutation::CoverageIndex probe_coverage;
    {
        const auto phase_start = Clock::now();
        const obs::SpanScope span(options_.obs.tracer, "phase",
                                  "golden-baseline");
        if (prune_engaged) {
            mutation::CoveredRun covered =
                mutation::run_with_coverage(bindings_, engine.runner, suite);
            out.run.golden = oracle::GoldenRecord::from(covered.result);
            coverage = std::move(covered.index);
            if (probe_suite != nullptr) {
                mutation::CoveredRun probe_covered = mutation::run_with_coverage(
                    bindings_, probe_opts, *probe_suite);
                probe_golden = oracle::GoldenRecord::from(probe_covered.result);
                probe_coverage = std::move(probe_covered.index);
            }
        } else {
            out.run.golden = oracle::GoldenRecord::from(run_suite());
            if (run_probe) probe_golden = oracle::GoldenRecord::from(run_probe());
        }
        out.run.baseline_clean = out.run.golden.all_passed();
        options_.obs.metrics.observe_ms("campaign.phase.baseline_ms",
                                        ms_since(phase_start));
    }

    // Shared-prefix checkpoint ladders, built serially on the un-mutated
    // component.  Read-only afterwards: safe for concurrent workers, and
    // inherited copy-on-write by the forked sandbox children under
    // --isolate.
    mutation::PrunePlan plan;
    if (prune_engaged) {
        const auto phase_start = Clock::now();
        const obs::SpanScope span(options_.obs.tracer, "phase", "prune-plan");
        mutation::PrunePlanOptions plan_options;
        plan_options.memoize = !model_engaged;
        plan = mutation::build_prune_plan(runner, binding, suite,
                                          std::move(coverage), &probe_runner,
                                          probe_suite, std::move(probe_coverage),
                                          plan_options);
        options_.obs.metrics.observe_ms("campaign.phase.prune_plan_ms",
                                        ms_since(phase_start));
    }

    // Work items with derived seeds and content keys — identical to the
    // list the dispatch coordinator builds for this campaign
    // (work_list.h is the shared source of item identity).
    std::vector<CampaignItem> items;
    items.reserve(mutants.size());
    for (WorkItem& shared :
         build_work_list(options_.seed, out.fingerprint, suite, mutants)) {
        CampaignItem item;
        item.index = shared.index;
        item.mutant = &mutants[shared.index];
        item.item_seed = shared.item_seed;
        item.key = std::move(shared.key);
        items.push_back(std::move(item));
    }

    std::unique_ptr<ResultStore> store;
    if (!options_.store_path.empty()) {
        store = std::make_unique<ResultStore>(options_.store_path, out.fingerprint);
    }

    trace.emit(JsonObject()
                   .set("event", "campaign-start")
                   .set("campaign", out.fingerprint)
                   .set("class", suite.class_name)
                   .set("seed", options_.seed)
                   .set("jobs", static_cast<std::uint64_t>(jobs))
                   .set("mutants", static_cast<std::uint64_t>(mutants.size()))
                   .set("cases", static_cast<std::uint64_t>(suite.cases.size()))
                   .set("probe", probe_suite != nullptr)
                   .set("model", model_engaged)
                   .set("prune", prune_engaged)
                   .set("baseline_clean", out.run.baseline_clean));
    if (prune_engaged) {
        // Coverage-index record (docs/FORMATS.md §12): what the golden
        // run learned, and the digest a reader can correlate across the
        // with/without-prune telemetry of one campaign.
        std::size_t checkpoints = 0;
        for (const auto& cp : plan.case_plans) checkpoints += cp.checkpoints.size();
        for (const auto& cp : plan.probe_case_plans) {
            checkpoints += cp.checkpoints.size();
        }
        trace.emit(JsonObject()
                       .set("event", "coverage-index")
                       .set("campaign", out.fingerprint)
                       .set("version", mutation::kPruneIndexVersion)
                       .set("cases", static_cast<std::uint64_t>(
                                         plan.coverage.cases().size()))
                       .set("pairs", static_cast<std::uint64_t>(
                                         plan.coverage.pair_count()))
                       .set("probe_pairs", static_cast<std::uint64_t>(
                                               plan.probe_coverage.pair_count()))
                       .set("checkpoints",
                            static_cast<std::uint64_t>(checkpoints))
                       .set("digest", to_hex(plan.coverage.fingerprint())));
    }

    // Resume pass (single-threaded, before the pool starts): restore
    // finished items, queue the rest.
    const auto resume_start = Clock::now();
    obs::Tracer::Span resume_span =
        options_.obs.tracer.begin("phase", "resume-scan");
    std::vector<mutation::MutantOutcome> outcomes(mutants.size());
    std::vector<const CampaignItem*> pending;
    pending.reserve(items.size());
    for (const CampaignItem& item : items) {
        const ItemRecord* record =
            store == nullptr ? nullptr : store->find(item.key);
        if (record == nullptr) {
            pending.push_back(&item);
            continue;
        }
        mutation::MutantOutcome& outcome = outcomes[item.index];
        if (!restore_outcome(*record, &outcome)) {
            pending.push_back(&item);  // unreadable record: re-execute
            continue;
        }
        outcome.mutant = item.mutant;
        ++out.stats.resumed;
        trace.emit(JsonObject()
                       .set("event", "item-resumed")
                       .set("item", static_cast<std::uint64_t>(item.index))
                       .set("mutant", item.mutant->id())
                       .set("fate", record->fate)
                       .set("reason", record->reason)
                       .set("model_only", record->model_only));
    }

    options_.obs.tracer.end(std::move(resume_span));
    options_.obs.metrics.observe_ms("campaign.phase.resume_ms",
                                    ms_since(resume_start));

    // Killing-case shrinking (optional).  Everything here is a pure
    // function of (mutant, suite, spec, item_seed) — no RNG, no shared
    // mutable state — so the corpus is byte-identical at any --jobs.
    const reflect::ClassBinding* shrink_binding = nullptr;
    std::optional<tfm::Graph> shrink_graph;
    if (shrink_kills) {
        shrink_binding = &bindings_.at(suite.class_name);
        shrink_graph.emplace(options_.spec->build_tfm());
    }
    std::vector<unsigned char> shrunk_flags(mutants.size(), 0);

    const auto shrink_kill = [&](const CampaignItem& item) -> bool {
        const mutation::Mutant& mutant = *item.mutant;
        const auto run_mutated = [&](const driver::TestCase& tc) {
            const mutation::MutantActivation activation(mutant);
            return runner.run_case(*shrink_binding, tc);
        };
        // The shrink predicate preserves the oracle's classification, not
        // just the verdict: a candidate counts only if the mutated run
        // still differs from its own unmutated baseline for the same
        // reason (so OutputDiff kills shrink correctly even though both
        // runs Pass).
        const auto classify_candidate =
            [&](const driver::TestCase& tc) -> oracle::KillReason {
            const driver::TestResult baseline = runner.run_case(*shrink_binding, tc);
            oracle::GoldenEntry entry;
            entry.case_id = baseline.case_id;
            entry.verdict = baseline.verdict;
            entry.report = baseline.report;
            entry.message = baseline.message;
            return oracle::classify(entry, run_mutated(tc), engine.oracle,
                                    engine.manual_oracle);
        };

        // Locate the killing case: first kill in suite order.
        const driver::TestCase* killing = nullptr;
        oracle::KillReason reason = oracle::KillReason::None;
        for (const driver::TestCase& tc : suite.cases) {
            const oracle::GoldenEntry* golden_entry = out.run.golden.find(tc.id);
            if (golden_entry == nullptr) continue;
            reason = oracle::classify(*golden_entry, run_mutated(tc),
                                      engine.oracle, engine.manual_oracle);
            if (reason != oracle::KillReason::None) {
                killing = &tc;
                break;
            }
        }
        if (killing == nullptr) return false;  // no single case reproduces it

        fuzz::ShrinkOptions shrink_options;
        shrink_options.max_steps = options_.max_shrink_steps;
        shrink_options.obs = options_.obs;
        const oracle::KillReason target = reason;
        const fuzz::ShrinkResult shrunk = fuzz::shrink_case(
            *options_.spec, *shrink_graph, *killing,
            [&](const driver::TestCase& tc) {
                return classify_candidate(tc) == target;
            },
            shrink_options);

        fuzz::CorpusEntry entry;
        entry.suite.class_name = suite.class_name;
        entry.suite.model_nodes = suite.model_nodes;
        entry.suite.model_links = suite.model_links;
        entry.suite.cases.push_back(shrunk.minimized);
        const driver::TestResult observed = run_mutated(shrunk.minimized);
        entry.verdict = observed.verdict;
        entry.failed_method = observed.failed_method;
        entry.mutant_id = mutant.id();
        entry.kill_reason = oracle::to_string(target);
        const fuzz::PersistOutcome persisted =
            fuzz::persist_entry(options_.shrink_corpus_dir, entry,
                                options_.completions, run_mutated, item.item_seed);
        return persisted.reproducible;
    };

    // One kill-reason declaration per kind at campaign end, so `concat
    // stats` renders every detector as a row — zero-count included —
    // instead of silently dropping the kinds that never fired.
    const auto emit_kill_reason_rows = [&] {
        for (const oracle::KillReason reason : oracle::kAllKillReasons) {
            if (reason == oracle::KillReason::None) continue;
            trace.emit(JsonObject()
                           .set("event", "kill-reason")
                           .set("reason", oracle::to_string(reason))
                           .set("kills", static_cast<std::uint64_t>(
                                             out.run.kills_by(reason))));
        }
    };

    // Fast-tier accounting.  Atomic because thread-pool workers sum
    // their per-item stats concurrently; the isolate loop is
    // single-threaded but reuses the same counters.
    std::atomic<std::uint64_t> executed_pairs{0};
    std::atomic<std::uint64_t> pruned_pairs{0};
    std::atomic<std::uint64_t> memoized_pairs{0};
    std::atomic<std::uint64_t> memoized_calls{0};
    const auto add_pair_stats = [&](const mutation::PruneStats& s) {
        executed_pairs.fetch_add(s.executed_pairs, std::memory_order_relaxed);
        pruned_pairs.fetch_add(s.pruned_pairs, std::memory_order_relaxed);
        memoized_pairs.fetch_add(s.memoized_pairs, std::memory_order_relaxed);
        memoized_calls.fetch_add(s.memoized_calls, std::memory_order_relaxed);
    };
    const auto fill_prune_stats = [&] {
        out.stats.pruned = prune_engaged;
        out.stats.executed_pairs = executed_pairs.load();
        out.stats.pruned_pairs = pruned_pairs.load();
        out.stats.memoized_pairs = memoized_pairs.load();
        out.stats.memoized_calls = memoized_calls.load();
        if (prune_engaged) {
            options_.obs.metrics.add("campaign.executed_pairs",
                                     out.stats.executed_pairs);
            options_.obs.metrics.add("campaign.pruned_pairs",
                                     out.stats.pruned_pairs);
            options_.obs.metrics.add("campaign.memoized_pairs",
                                     out.stats.memoized_pairs);
            options_.obs.metrics.add("campaign.memoized_calls",
                                     out.stats.memoized_calls);
        }
    };
    const driver::TestRunner* maybe_probe_runner =
        probe_suite != nullptr ? &probe_runner : nullptr;

    // Parallel phase: each pending item evaluates on some worker and
    // writes only its own outcome slot.
    const auto t0 = Clock::now();
    if (options_.isolate) {
        // Isolated phase: forked sandbox workers driven by a
        // single-threaded event loop (forking from the multithreaded
        // pool would clone locks held by other threads).  The request
        // payload is a decimal index into `pending`; the reply is the
        // encoded outcome.  A worker that crashes, hangs, or trips a
        // limit yields no reply — the decoded termination becomes the
        // item's outcome (Killed / Crash, MutantOutcome::sandbox set)
        // and the worker is respawned for the next item.
        const obs::SpanScope items_span(options_.obs.tracer, "phase",
                                        "item-execution");
        std::vector<std::string> payloads;
        payloads.reserve(pending.size());
        for (std::size_t i = 0; i < pending.size(); ++i) {
            payloads.push_back(std::to_string(i));
        }

        const sandbox::Job job = [&](const std::string& payload) {
            const std::size_t slot = std::stoull(payload);
            if (prune_engaged) {
                // The plan was built pre-fork: the child inherits the
                // checkpoint prototypes copy-on-write and never writes
                // them (clones only), so the pages stay shared.
                mutation::PruneStats item_stats;
                const mutation::MutantOutcome outcome =
                    mutation::evaluate_mutant_pruned(
                        *pending[slot]->mutant, runner, binding, suite,
                        out.run.golden, maybe_probe_runner, probe_suite,
                        probe_golden, plan, engine, &item_stats);
                return sandbox::encode_outcome(outcome, &item_stats);
            }
            return sandbox::encode_outcome(mutation::evaluate_mutant(
                *pending[slot]->mutant, run_suite, out.run.golden, run_probe,
                probe_golden, engine));
        };

        sandbox::PoolOptions pool_options;
        pool_options.workers = jobs;
        pool_options.limits = options_.sandbox;
        pool_options.obs = options_.obs;
        pool_options.on_event = [&](const sandbox::WorkerEvent& event) {
            JsonObject o;
            o.set("event", sandbox::to_string(event.kind))
                .set("worker", static_cast<std::uint64_t>(event.worker))
                .set("pid", event.pid);
            if (!event.detail.empty()) o.set("detail", event.detail);
            trace.emit(o);
        };
        pool_options.on_dispatch = [&](std::size_t slot, std::size_t worker) {
            const CampaignItem& item = *pending[slot];
            trace.emit(JsonObject()
                           .set("event", "item-start")
                           .set("item", static_cast<std::uint64_t>(item.index))
                           .set("mutant", item.mutant->id())
                           .set("worker", static_cast<std::uint64_t>(worker)));
        };

        sandbox::WorkerPool pool(job, std::move(pool_options));
        pool.run(payloads, [&](std::size_t slot, sandbox::TaskResult result) {
            const CampaignItem& item = *pending[slot];
            mutation::MutantOutcome outcome;
            mutation::PruneStats item_stats;
            if (result.ok()) {
                const auto decoded = sandbox::decode_outcome(result.payload);
                outcome = decoded ? *decoded
                                  : sandbox::outcome_from_termination(
                                        "worker-exit:-3");  // garbled reply
                item_stats = sandbox::decode_outcome_stats(result.payload);
                add_pair_stats(item_stats);
            } else {
                outcome = sandbox::outcome_from_termination(result.outcome());
            }
            outcome.mutant = item.mutant;
            outcomes[item.index] = outcome;
            // The children's mutation.* instruments die with them;
            // mirror the fate counter and evaluation latency here.
            options_.obs.metrics.add(std::string("mutation.fate.") +
                                     mutation::to_string(outcome.fate));
            options_.obs.metrics.observe_ms("mutation.eval_ms",
                                            result.wall_ms);

            JsonObject finish;
            finish.set("event", "item-finish")
                .set("item", static_cast<std::uint64_t>(item.index))
                .set("mutant", item.mutant->id())
                .set("worker", static_cast<std::uint64_t>(result.worker))
                .set("fate", mutation::to_string(outcome.fate))
                .set("reason", oracle::to_string(outcome.reason))
                .set("hit", outcome.hit_by_suite)
                .set("probe_kill", outcome.killed_by_probe)
                .set("model_only", outcome.model_only)
                .set("shrunk", false)
                .set("item_seed", item.item_seed)
                .set("wall_ms", result.wall_ms);
            if (prune_engaged) {
                finish.set("executed_pairs", item_stats.executed_pairs)
                    .set("pruned_pairs", item_stats.pruned_pairs)
                    .set("memoized_pairs", item_stats.memoized_pairs);
            }
            if (!outcome.sandbox.empty()) {
                finish.set("sandbox", outcome.sandbox);
            }
            trace.emit(finish);

            if (store != nullptr) {
                ItemRecord record;
                record.key = item.key;
                record.mutant_id = item.mutant->id();
                record.item_index = item.index;
                record.fate = mutation::to_string(outcome.fate);
                record.reason = oracle::to_string(outcome.reason);
                record.hit_by_suite = outcome.hit_by_suite;
                record.killed_by_probe = outcome.killed_by_probe;
                record.model_only = outcome.model_only;
                record.item_seed = item.item_seed;
                record.wall_ms = result.wall_ms;
                record.sandbox = outcome.sandbox;
                store->append(record);
            }
        });
        out.stats.respawns = pool.stats().respawned;
        out.stats.executed = pending.size();
        fill_prune_stats();
        out.stats.wall_ms = ms_since(t0);
        options_.obs.metrics.observe_ms("campaign.phase.items_ms",
                                        out.stats.wall_ms);
        options_.obs.metrics.add("campaign.items", out.stats.items);
        options_.obs.metrics.add("campaign.executed", out.stats.executed);
        options_.obs.metrics.add("campaign.resumed", out.stats.resumed);
        options_.obs.metrics.add("campaign.respawns", out.stats.respawns);

        out.run.outcomes = std::move(outcomes);

        emit_kill_reason_rows();
        trace.emit(JsonObject()
                       .set("event", "campaign-end")
                       .set("campaign", out.fingerprint)
                       .set("items", static_cast<std::uint64_t>(out.stats.items))
                       .set("executed",
                            static_cast<std::uint64_t>(out.stats.executed))
                       .set("resumed",
                            static_cast<std::uint64_t>(out.stats.resumed))
                       .set("killed", static_cast<std::uint64_t>(out.run.killed()))
                       .set("killed_model_only",
                            static_cast<std::uint64_t>(out.run.kills_model_only()))
                       .set("equivalent",
                            static_cast<std::uint64_t>(out.run.equivalent()))
                       .set("not_covered",
                            static_cast<std::uint64_t>(out.run.not_covered()))
                       .set("score", out.run.score())
                       .set("workers",
                            static_cast<std::uint64_t>(out.stats.workers))
                       .set("respawns",
                            static_cast<std::uint64_t>(out.stats.respawns))
                       .set("pruned", out.stats.pruned)
                       .set("executed_pairs", out.stats.executed_pairs)
                       .set("pruned_pairs", out.stats.pruned_pairs)
                       .set("memoized_pairs", out.stats.memoized_pairs)
                       .set("memoized_calls", out.stats.memoized_calls)
                       .set("wall_ms", out.stats.wall_ms));
        return out;
    }
    std::vector<WorkStealingPool::Task> tasks;
    tasks.reserve(pending.size());
    for (const CampaignItem* item : pending) {
        tasks.push_back([&, item](const WorkerContext& context) {
            const auto item_start = Clock::now();
            trace.emit(
                JsonObject()
                    .set("event", "item-start")
                    .set("item", static_cast<std::uint64_t>(item->index))
                    .set("mutant", item->mutant->id())
                    .set("worker", static_cast<std::uint64_t>(context.worker))
                    .set("queue", static_cast<std::uint64_t>(context.queue_depth))
                    .set("stolen", context.stolen));

            mutation::PruneStats item_stats;
            const mutation::MutantOutcome outcome =
                prune_engaged
                    ? mutation::evaluate_mutant_pruned(
                          *item->mutant, runner, binding, suite, out.run.golden,
                          maybe_probe_runner, probe_suite, probe_golden, plan,
                          engine, &item_stats)
                    : mutation::evaluate_mutant(*item->mutant, run_suite,
                                                out.run.golden, run_probe,
                                                probe_golden, engine);
            if (prune_engaged) add_pair_stats(item_stats);
            outcomes[item->index] = outcome;
            if (shrink_kills && outcome.fate == mutation::MutantFate::Killed) {
                shrunk_flags[item->index] = shrink_kill(*item) ? 1 : 0;
            }
            const double wall = ms_since(item_start);

            JsonObject finish;
            finish.set("event", "item-finish")
                .set("item", static_cast<std::uint64_t>(item->index))
                .set("mutant", item->mutant->id())
                .set("worker", static_cast<std::uint64_t>(context.worker))
                .set("fate", mutation::to_string(outcome.fate))
                .set("reason", oracle::to_string(outcome.reason))
                .set("hit", outcome.hit_by_suite)
                .set("probe_kill", outcome.killed_by_probe)
                .set("model_only", outcome.model_only)
                .set("shrunk", shrunk_flags[item->index] != 0)
                .set("item_seed", item->item_seed)
                .set("wall_ms", wall);
            if (prune_engaged) {
                finish.set("executed_pairs", item_stats.executed_pairs)
                    .set("pruned_pairs", item_stats.pruned_pairs)
                    .set("memoized_pairs", item_stats.memoized_pairs);
            }
            trace.emit(finish);

            if (store != nullptr) {
                ItemRecord record;
                record.key = item->key;
                record.mutant_id = item->mutant->id();
                record.item_index = item->index;
                record.fate = mutation::to_string(outcome.fate);
                record.reason = oracle::to_string(outcome.reason);
                record.hit_by_suite = outcome.hit_by_suite;
                record.killed_by_probe = outcome.killed_by_probe;
                record.model_only = outcome.model_only;
                record.item_seed = item->item_seed;
                record.wall_ms = wall;
                store->append(record);
            }
        });
    }

    {
        const obs::SpanScope items_span(options_.obs.tracer, "phase",
                                        "item-execution");
        const WorkStealingPool pool(jobs);
        out.stats.steals = pool.run(std::move(tasks));
    }
    out.stats.executed = pending.size();
    for (const unsigned char flag : shrunk_flags) out.stats.shrunk += flag;
    fill_prune_stats();
    out.stats.wall_ms = ms_since(t0);
    options_.obs.metrics.observe_ms("campaign.phase.items_ms",
                                    out.stats.wall_ms);
    options_.obs.metrics.add("campaign.items", out.stats.items);
    options_.obs.metrics.add("campaign.executed", out.stats.executed);
    options_.obs.metrics.add("campaign.resumed", out.stats.resumed);
    options_.obs.metrics.add("campaign.steals", out.stats.steals);
    options_.obs.metrics.add("campaign.shrunk", out.stats.shrunk);

    out.run.outcomes = std::move(outcomes);

    emit_kill_reason_rows();
    trace.emit(JsonObject()
                   .set("event", "campaign-end")
                   .set("campaign", out.fingerprint)
                   .set("items", static_cast<std::uint64_t>(out.stats.items))
                   .set("executed", static_cast<std::uint64_t>(out.stats.executed))
                   .set("resumed", static_cast<std::uint64_t>(out.stats.resumed))
                   .set("killed", static_cast<std::uint64_t>(out.run.killed()))
                   .set("killed_model_only",
                        static_cast<std::uint64_t>(out.run.kills_model_only()))
                   .set("equivalent",
                        static_cast<std::uint64_t>(out.run.equivalent()))
                   .set("not_covered",
                        static_cast<std::uint64_t>(out.run.not_covered()))
                   .set("score", out.run.score())
                   .set("workers", static_cast<std::uint64_t>(out.stats.workers))
                   .set("steals", out.stats.steals)
                   .set("pruned", out.stats.pruned)
                   .set("executed_pairs", out.stats.executed_pairs)
                   .set("pruned_pairs", out.stats.pruned_pairs)
                   .set("memoized_pairs", out.stats.memoized_pairs)
                   .set("memoized_calls", out.stats.memoized_calls)
                   .set("wall_ms", out.stats.wall_ms));

    return out;
}

}  // namespace stc::campaign
