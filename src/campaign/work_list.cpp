#include "stc/campaign/work_list.h"

#include "stc/campaign/seed.h"

namespace stc::campaign {

namespace {

/// Chained content hashing: h' = mix(h ^ fnv(token)).
std::uint64_t absorb(std::uint64_t h, std::string_view token) {
    return splitmix64(h ^ fnv1a64(token));
}

}  // namespace

std::string suite_tag(const driver::TestSuite& suite) {
    return suite.class_name + "#" + std::to_string(suite.seed);
}

std::string item_key(const std::string& fingerprint,
                     const std::string& mutant_id) {
    return to_hex(absorb(fnv1a64(fingerprint), mutant_id));
}

std::vector<WorkItem> build_work_list(
    std::uint64_t campaign_seed, const std::string& fingerprint,
    const driver::TestSuite& suite,
    const std::vector<mutation::Mutant>& mutants) {
    const std::string tag = suite_tag(suite);
    std::vector<WorkItem> items;
    items.reserve(mutants.size());
    for (std::size_t i = 0; i < mutants.size(); ++i) {
        WorkItem item;
        item.index = i;
        item.mutant_id = mutants[i].id();
        item.item_seed = derive_item_seed(campaign_seed, item.mutant_id, tag);
        item.key = item_key(fingerprint, item.mutant_id);
        items.push_back(std::move(item));
    }
    return items;
}

std::size_t shard_of(const std::string& key, std::size_t shards) noexcept {
    if (shards <= 1) return 0;
    return static_cast<std::size_t>(splitmix64(fnv1a64(key)) % shards);
}

bool restore_outcome(const ItemRecord& record, mutation::MutantOutcome* out) {
    const auto fate = mutation::fate_from_string(record.fate);
    const auto reason = oracle::kill_reason_from_string(record.reason);
    if (!fate || !reason) return false;
    out->mutant = nullptr;
    out->fate = *fate;
    out->reason = *reason;
    out->hit_by_suite = record.hit_by_suite;
    out->killed_by_probe = record.killed_by_probe;
    out->model_only = record.model_only;
    out->sandbox = record.sandbox;
    out->synthesized = record.synthesized;
    return true;
}

}  // namespace stc::campaign
