#include "stc/campaign/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <thread>

namespace stc::campaign {

namespace {

/// One worker's shard: a mutex-guarded deque.  The owner pops from the
/// front, thieves take from the back, so an owner and a thief contend
/// only when a single task remains.
struct Shard {
    std::mutex mutex;
    std::deque<std::size_t> tasks;  // indices into the shared task vector

    bool pop_front(std::size_t& out, std::size_t& depth_after) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty()) return false;
        out = tasks.front();
        tasks.pop_front();
        depth_after = tasks.size();
        return true;
    }

    bool steal_back(std::size_t& out) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty()) return false;
        out = tasks.back();
        tasks.pop_back();
        return true;
    }
};

}  // namespace

WorkStealingPool::WorkStealingPool(std::size_t workers)
    : workers_(workers == 0 ? hardware_workers() : workers) {}

std::size_t WorkStealingPool::hardware_workers() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::uint64_t WorkStealingPool::run(std::vector<Task> tasks) const {
    if (tasks.empty()) return 0;

    if (workers_ == 1) {
        WorkerContext context;
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            context.queue_depth = tasks.size() - i - 1;
            tasks[i](context);
        }
        return 0;
    }

    const std::size_t n = std::min(workers_, tasks.size());
    std::vector<Shard> shards(n);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        shards[i % n].tasks.push_back(i);  // deterministic round-robin deal
    }

    std::atomic<std::size_t> remaining{tasks.size()};
    std::atomic<std::uint64_t> steals{0};

    auto worker_loop = [&](std::size_t me) {
        WorkerContext context;
        context.worker = me;
        while (remaining.load(std::memory_order_acquire) > 0) {
            std::size_t task_index = 0;
            std::size_t depth = 0;
            bool found = shards[me].pop_front(task_index, depth);
            bool stolen = false;
            if (!found) {
                for (std::size_t k = 1; k < n && !found; ++k) {
                    found = shards[(me + k) % n].steal_back(task_index);
                }
                stolen = found;
                depth = 0;
            }
            if (!found) {
                // Nothing queued anywhere, but tasks may still be
                // in-flight on other workers; yield until the count
                // drains (items are long; this wastes microseconds).
                std::this_thread::yield();
                continue;
            }
            if (stolen) steals.fetch_add(1, std::memory_order_relaxed);
            context.queue_depth = depth;
            context.stolen = stolen;
            tasks[task_index](context);
            remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(n - 1);
    for (std::size_t w = 1; w < n; ++w) threads.emplace_back(worker_loop, w);
    worker_loop(0);
    for (auto& t : threads) t.join();

    return steals.load(std::memory_order_relaxed);
}

}  // namespace stc::campaign
