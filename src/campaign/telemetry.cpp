#include "stc/campaign/telemetry.h"

#include "stc/support/error.h"

namespace stc::campaign {

TelemetrySink TelemetrySink::to_file(const std::string& path) {
    TelemetrySink sink;
    sink.state_ = std::make_shared<State>();
    sink.state_->file.open(path, std::ios::trunc);
    if (!sink.state_->file) {
        throw Error("cannot open telemetry file: " + path);
    }
    sink.out_ = &sink.state_->file;
    return sink;
}

TelemetrySink TelemetrySink::to_stream(std::ostream& os) {
    TelemetrySink sink;
    sink.state_ = std::make_shared<State>();
    sink.out_ = &os;
    return sink;
}

void TelemetrySink::emit(JsonObject event) {
    if (out_ == nullptr) return;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    event.set("seq", state_->next_seq++);
    *out_ << event.to_line() << '\n';
    out_->flush();
}

std::uint64_t TelemetrySink::count() const noexcept {
    if (state_ == nullptr) return 0;
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->next_seq;
}

}  // namespace stc::campaign
