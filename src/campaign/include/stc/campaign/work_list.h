// The campaign work list, factored out of CampaignScheduler so every
// executor of campaign items — the in-process scheduler, the sandbox
// pool, and the distributed coordinator (`concat dispatch`) — agrees on
// item identity: the same per-item seed, the same result-store content
// key, and the same deterministic shard assignment for any given
// (campaign seed, fingerprint, suite, mutant list).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stc/campaign/result_store.h"
#include "stc/mutation/engine.h"

namespace stc::campaign {

/// The suite-level transaction id used in per-item seed derivation: the
/// whole suite is one work item's "transaction" (finer sharding would
/// split classification across cases).
[[nodiscard]] std::string suite_tag(const driver::TestSuite& suite);

/// The result-store content key of one (campaign, mutant) item —
/// hex(mix(hash(fingerprint), hash(mutant id))).  Stable across
/// processes and hosts: the resume contract and the dispatch merge both
/// hang off this value.
[[nodiscard]] std::string item_key(const std::string& fingerprint,
                                   const std::string& mutant_id);

/// One campaign work item, pointer-free so it can cross a process or
/// host boundary (the coordinator ships index/mutant_id/item_seed in a
/// Work frame; the worker re-derives everything else from the
/// handshake config).
struct WorkItem {
    std::size_t index = 0;       ///< position in the mutant list
    std::string mutant_id;
    std::uint64_t item_seed = 0;
    std::string key;             ///< result-store content key
};

/// The full item list of a campaign, in mutant-list order.
[[nodiscard]] std::vector<WorkItem> build_work_list(
    std::uint64_t campaign_seed, const std::string& fingerprint,
    const driver::TestSuite& suite,
    const std::vector<mutation::Mutant>& mutants);

/// Deterministic shard assignment: which of `shards` owns `key`.
/// Stable across runs (content-hash based, not index based), so the
/// same campaign splits identically on every dispatch.
[[nodiscard]] std::size_t shard_of(const std::string& key,
                                   std::size_t shards) noexcept;

/// Decode a persisted record back into a MutantOutcome (fate and
/// reason strings parsed); false when the record is unreadable and the
/// item must be re-executed.  `out->mutant` is left null — the caller
/// rebinds it by item index.
[[nodiscard]] bool restore_outcome(const ItemRecord& record,
                                   mutation::MutantOutcome* out);

}  // namespace stc::campaign
