// JSONL campaign telemetry.
//
// Every campaign event is one flat JSON object per line: campaign
// start/end, item start/finish/resume.  The stream is append-only,
// ordered by a global sequence number, and safe to write from any
// worker thread.  docs/FORMATS.md §5 documents the schema; the
// round-trip tests in tests/campaign_test.cpp pin it.
//
// The sink itself is the observability layer's generic JSONL backend
// (stc::obs::JsonlSink); this header keeps the campaign-side name.  A
// resuming campaign opens the sink in Append mode so the interrupted
// generation's telemetry survives (docs/FORMATS.md §5).
#pragma once

#include "stc/campaign/jsonl.h"
#include "stc/obs/jsonl_sink.h"

namespace stc::campaign {

using TelemetrySink = obs::JsonlSink;

}  // namespace stc::campaign
