// JSONL campaign telemetry.
//
// Every campaign event is one flat JSON object per line: campaign
// start/end, item start/finish/resume.  The stream is append-only,
// ordered by a global sequence number, and safe to write from any
// worker thread (one mutex; events are rare relative to test
// execution).  docs/FORMATS.md §5 documents the schema; the round-trip
// tests in tests/campaign_test.cpp pin it.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "stc/campaign/jsonl.h"

namespace stc::campaign {

/// Thread-safe sink of JSONL telemetry events.  A default-constructed
/// sink is disabled: emit() is a cheap no-op, so call sites need no
/// `if (tracing)` guards.
class TelemetrySink {
public:
    TelemetrySink() = default;

    /// Write to a file (truncates).  Throws stc::Error when the file
    /// cannot be opened.
    static TelemetrySink to_file(const std::string& path);

    /// Write to a caller-owned stream (tests); the stream must outlive
    /// the sink.
    static TelemetrySink to_stream(std::ostream& os);

    [[nodiscard]] bool enabled() const noexcept { return out_ != nullptr; }

    /// Append `event` (a "seq" field is added), flush the line.
    void emit(JsonObject event);

    /// Events emitted so far.
    [[nodiscard]] std::uint64_t count() const noexcept;

private:
    // Shared state so the sink is copyable into worker closures.
    struct State {
        std::mutex mutex;
        std::ofstream file;
        std::uint64_t next_seq = 0;
    };

    std::shared_ptr<State> state_;
    std::ostream* out_ = nullptr;  // points into state_->file or external
};

}  // namespace stc::campaign
