// Compatibility shim: the flat-JSON line format grew out of the
// campaign's telemetry and result store, then moved down into the
// observability layer (stc::obs) so tracing and metrics could share
// it.  Campaign code and its callers keep the old names.
#pragma once

#include "stc/obs/json.h"

namespace stc::campaign {

using JsonObject = obs::JsonObject;
using obs::json_escape;

}  // namespace stc::campaign
