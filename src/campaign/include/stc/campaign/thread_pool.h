// Work-stealing thread pool for campaign execution.
//
// Deterministic sharding: the task list is dealt round-robin into
// per-worker deques up front, so the *initial* assignment of item i is
// worker (i mod N) regardless of timing.  Workers drain their own deque
// from the front (preserving item order within a shard) and steal from
// the back of a victim's deque when empty — the classic Chase-Lev
// discipline, here with a plain mutex per deque since campaign items
// are milliseconds-to-seconds long and queue operations are not the
// bottleneck.
//
// Determinism contract: tasks must not communicate through schedule-
// dependent shared state; each task writes only to its own result slot.
// Under that contract the pool's output is independent of N, stealing,
// and timing — the property the campaign determinism tests pin down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace stc::campaign {

/// Execution context handed to every task.
struct WorkerContext {
    std::size_t worker = 0;       ///< worker index in [0, workers)
    std::size_t queue_depth = 0;  ///< tasks left in this worker's own deque
    bool stolen = false;          ///< task was stolen from another shard
};

class WorkStealingPool {
public:
    using Task = std::function<void(const WorkerContext&)>;

    /// `workers` == 0 selects the hardware concurrency.
    explicit WorkStealingPool(std::size_t workers);

    [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

    /// Run all tasks to completion; returns the number of successful
    /// steals (0 in every single-worker run).  With one worker the tasks
    /// execute inline on the calling thread, in order — the serial
    /// reference the determinism tests compare against.  A task that
    /// throws terminates (tasks are expected to catch their own
    /// failures and record them as results).
    std::uint64_t run(std::vector<Task> tasks) const;

    /// max(1, std::thread::hardware_concurrency()).
    [[nodiscard]] static std::size_t hardware_workers() noexcept;

private:
    std::size_t workers_;
};

}  // namespace stc::campaign
