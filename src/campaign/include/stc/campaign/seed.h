// Deterministic seed derivation for campaign work items.
//
// A campaign shards (mutant x suite) work items across worker threads;
// any randomness a work item consumes must NOT come from a shared
// sequential stream, or the schedule (which worker ran which item when)
// would leak into the results.  Instead every item derives its own seed
// from the campaign seed and the item's stable identity:
//
//     item_seed = mix(campaign_seed, mutant_id, transaction_id)
//
// so a 1-worker run and an 8-worker run are bit-identical, and an item
// re-executed after a resume sees exactly the values it would have seen
// in the original run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace stc::campaign {

/// FNV-1a 64-bit over a byte string — stable across platforms/runs
/// (unlike std::hash, which is allowed to vary per process).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// splitmix64 finalizer — decorrelates structured inputs (sequential
/// seeds, similar ids) into well-mixed 64-bit values.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// The per-item seed: hash(campaign_seed, mutant_id, transaction_id).
/// Order-sensitive (swapping mutant and transaction ids changes the
/// result) and avalanche-mixed, so adjacent items get unrelated streams.
[[nodiscard]] constexpr std::uint64_t derive_item_seed(
    std::uint64_t campaign_seed, std::string_view mutant_id,
    std::string_view transaction_id) noexcept {
    std::uint64_t h = splitmix64(campaign_seed);
    h = splitmix64(h ^ fnv1a64(mutant_id));
    h = splitmix64(h ^ fnv1a64(transaction_id));
    return h;
}

/// Fixed-width lowercase hex rendering of a 64-bit hash — the content
/// keys of the result store.
[[nodiscard]] std::string to_hex(std::uint64_t value);

}  // namespace stc::campaign
