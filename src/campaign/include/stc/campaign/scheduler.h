// CampaignScheduler — parallel orchestration of mutation campaigns.
//
// The serial MutationEngine evaluates mutants one at a time; campaign
// cost is mutants x transactions.  The scheduler shards the (mutant x
// suite) work items of one campaign across a work-stealing pool and
// reassembles a MutationRun whose fates and kill reasons are
// bit-identical to the serial engine's, because
//   - every item derives its own RNG seed from (campaign seed, mutant
//     id, transaction id) instead of sharing a sequential stream
//     (seed.h),
//   - mutant activation and hit tracking are per-thread
//     (MutationController is thread_local), and
//   - outcomes land in per-item slots, ordered by item index, never by
//     completion time.
//
// Resumability: with a store path set, every finished item is appended
// to a content-hashed JSONL results file; reopening the same campaign
// skips the finished items (ResultStore).  Telemetry: every scheduling
// event can be streamed as JSONL (TelemetrySink, docs/FORMATS.md §5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stc/campaign/result_store.h"
#include "stc/campaign/telemetry.h"
#include "stc/mutation/engine.h"
#include "stc/obs/context.h"
#include "stc/sandbox/limits.h"

namespace stc::campaign {

struct CampaignOptions {
    /// Worker threads; 0 selects the hardware concurrency, 1 runs the
    /// items inline (the serial reference).
    std::size_t jobs = 1;
    /// Campaign seed: root of all per-item seed derivation, and part of
    /// the campaign fingerprint.
    std::uint64_t seed = 20010701;
    /// Path of the resumable result store; empty disables persistence.
    /// A store written by a different campaign (seed, suite, mutants or
    /// oracle changed) is discarded, not resumed.
    std::string store_path;
    /// Path of the JSONL telemetry stream (docs/FORMATS.md §5); empty
    /// disables it.  When store_path is also set (a resumable
    /// campaign), the file opens in append mode so a resumed run
    /// extends — never wipes — the interrupted generation's telemetry.
    /// Distinct from the Chrome trace written by obs.tracer.
    std::string telemetry_path;
    /// Span tracer + metrics registry, threaded through the runner, the
    /// oracle, and every mutant evaluation.  Disabled by default; both
    /// handles are thread-safe.
    obs::Context obs;
    /// Engine configuration shared by every item.  The runner's
    /// log_path must be empty (a shared append-file would interleave
    /// across workers); manual_oracle, when set, must be thread-safe.
    /// Its obs context is overwritten with the campaign-level `obs`.
    mutation::EngineOptions engine;
    /// When non-empty, every mutant KILLED in this run has its killing
    /// test case located, minimized with the delta-debugging shrinker
    /// (stc::fuzz, preserving the oracle's kill classification), and
    /// persisted into this corpus directory as a replayable reproducer.
    /// Requires `spec`.  Deterministic per item: the corpus contents do
    /// not depend on --jobs.  Resumed items are skipped (the original
    /// run already saved theirs).
    std::string shrink_corpus_dir;
    /// Shrink budget per killed mutant, in predicate evaluations (each
    /// costs a mutated + an unmutated execution of the candidate).
    std::size_t max_shrink_steps = 256;
    /// Component spec backing the suite — needed to shrink (TFM path
    /// validity, value domains).  Non-owning; required iff
    /// shrink_corpus_dir is set.
    const tspec::ComponentSpec* spec = nullptr;
    /// Completions for replay verification of persisted reproducers.
    const driver::CompletionRegistry* completions = nullptr;
    /// Process isolation (`concat campaign --isolate`): evaluate every
    /// pending item in a forked sandbox worker (stc::sandbox) instead
    /// of the thread pool, so a mutant that really segfaults, hangs, or
    /// exhausts memory kills only its worker.  The worker is respawned
    /// and the item recorded with MutantOutcome::sandbox set; for
    /// mutants that do not crash, fates are byte-identical to the
    /// in-process run at any `jobs`.  Incompatible with
    /// shrink_corpus_dir (the shrinker re-executes mutants in the
    /// orchestrator process).
    bool isolate = false;
    /// Per-item wall deadline and child rlimits; used only with
    /// `isolate`.
    sandbox::SandboxLimits sandbox;
    /// The fast execution tier (`concat campaign --prune`, the default):
    /// record a coverage-signature index during the golden run, skip
    /// every (mutant, case) pair whose mutation site the case provably
    /// never reaches, and resume covered cases from shared-prefix
    /// checkpoints (stc/mutation/prune.h).  Fates are byte-identical to
    /// the unpruned run — enforced by the differential harness in
    /// tests/prune_test.cpp — but the store fingerprint absorbs the
    /// prune-tier version, so pruned and unpruned stores never resume
    /// into each other.  Silently disengaged when a manual oracle is
    /// configured (the one detector that can kill a byte-identical
    /// report); a lockstep model only disables the memoization half.
    bool prune = true;
};

/// One (mutant x suite) work item.
struct CampaignItem {
    std::size_t index = 0;                    ///< position in the mutant list
    const mutation::Mutant* mutant = nullptr;
    std::uint64_t item_seed = 0;  ///< derive_item_seed(campaign, mutant, suite)
    std::string key;              ///< content key in the result store
};

struct CampaignStats {
    std::size_t items = 0;
    std::size_t executed = 0;  ///< evaluated in this run
    std::size_t resumed = 0;   ///< restored from the result store
    std::size_t shrunk = 0;    ///< killed mutants with a persisted reproducer
    std::size_t workers = 1;
    std::uint64_t steals = 0;
    /// Sandbox workers re-forked after a crash/timeout/limit kill (0
    /// for in-process runs).
    std::size_t respawns = 0;
    double wall_ms = 0.0;      ///< item-execution phase only
    /// Fast-tier accounting (all zero when pruning was not engaged).
    bool pruned = false;            ///< the fast tier was engaged
    std::uint64_t executed_pairs = 0;  ///< (mutant, case) pairs run
    std::uint64_t pruned_pairs = 0;    ///< pairs skipped via the coverage index
    std::uint64_t memoized_pairs = 0;  ///< executed pairs resumed mid-case
    std::uint64_t memoized_calls = 0;  ///< body calls those resumes skipped
};

struct CampaignResult {
    mutation::MutationRun run;
    CampaignStats stats;
    std::string fingerprint;  ///< campaign identity (store header value)
};

class CampaignScheduler {
public:
    explicit CampaignScheduler(const reflect::Registry& bindings,
                               CampaignOptions options = {});

    /// Run the campaign: golden baselines are captured once (serially),
    /// then the items execute across the pool.  Equivalent to
    /// MutationEngine::run on the same inputs, fate-for-fate.
    [[nodiscard]] CampaignResult run(
        const driver::TestSuite& suite,
        const std::vector<mutation::Mutant>& mutants,
        const driver::TestSuite* probe_suite = nullptr) const;

    /// The campaign identity: a stable hash of the campaign seed, the
    /// suite (class, seed, case ids), the mutant population, and the
    /// oracle/runner configuration.  Items of equal fingerprint are
    /// interchangeable across process restarts — the resume contract.
    [[nodiscard]] std::string fingerprint(
        const driver::TestSuite& suite,
        const std::vector<mutation::Mutant>& mutants,
        const driver::TestSuite* probe_suite) const;

private:
    const reflect::Registry& bindings_;
    CampaignOptions options_;
};

}  // namespace stc::campaign
