// Resumable campaign result store.
//
// Every completed work item is appended (and flushed) to a JSONL file
// keyed by a content hash of (campaign fingerprint, mutant id), so an
// interrupted campaign can restart and skip finished items.  The first
// line is a header carrying the campaign fingerprint — a hash of the
// campaign seed, the suite identity, the mutant population, and the
// oracle configuration.  Opening a store whose header names a
// *different* fingerprint discards the stale contents rather than
// resuming from results that a different campaign produced.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "stc/campaign/jsonl.h"

namespace stc::campaign {

/// The persisted outcome of one completed work item.
struct ItemRecord {
    std::string key;        ///< content key: hex(hash(fingerprint, mutant id))
    std::string mutant_id;  ///< for human audit; not used for matching
    std::size_t item_index = 0;
    std::string fate;       ///< mutation::to_string(MutantFate)
    std::string reason;     ///< oracle::to_string(KillReason)
    bool hit_by_suite = false;
    bool killed_by_probe = false;
    /// Killed only by the reference-model channel
    /// (MutantOutcome::model_only).  Serialized only when true, so
    /// stores from model-less campaigns are byte-unchanged.
    bool model_only = false;
    std::uint64_t item_seed = 0;
    double wall_ms = 0.0;
    /// Sandbox termination kind ("crash-signal:<n>" / "timeout" /
    /// "resource-limit" / "worker-exit:<c>"); empty for in-process runs
    /// and isolated items that completed normally.  Serialized only
    /// when non-empty, so in-process stores are byte-unchanged.
    std::string sandbox;
    /// Killed by a killer `stc::kill` synthesized after the campaign
    /// (MutantOutcome::synthesized).  Serialized only when true, so
    /// stores a kill pass never touched are byte-unchanged.
    bool synthesized = false;

    [[nodiscard]] JsonObject to_json() const;
    [[nodiscard]] static std::optional<ItemRecord> from_json(const JsonObject& o);
};

/// A read-only look at a result store on disk — unlike opening a
/// ResultStore, peeking never truncates, rewrites, or appends.
/// `stc::kill` uses this to enumerate a finished campaign's survivors:
/// a fingerprint mismatch there is a hard error naming the store, not a
/// silent start-over.
struct StorePeek {
    std::string fingerprint;          ///< store-header campaign value
    std::vector<ItemRecord> records;  ///< file order (append order)
    std::size_t dropped = 0;          ///< torn/unparseable lines skipped

    [[nodiscard]] const ItemRecord* find(const std::string& key) const;
};

/// Read `path` without modifying it.  std::nullopt with `*error` set
/// when the file is missing/unreadable or its header is not a store
/// header.  Torn or malformed record lines are counted in `dropped`
/// and skipped, mirroring the ResultStore recovery rules.
[[nodiscard]] std::optional<StorePeek> peek_store(const std::string& path,
                                                  std::string* error);

/// Rewrite `path` from scratch: header for `fingerprint`, then
/// `records` in order.  Used by `stc::kill` to publish raised fates;
/// byte-deterministic for identical inputs.  Throws stc::Error when the
/// file cannot be written.
void rewrite_store(const std::string& path, const std::string& fingerprint,
                   const std::vector<ItemRecord>& records);

/// Append-only, thread-safe store of completed items.
class ResultStore {
public:
    /// Open `path` for campaign `fingerprint`.  When the file already
    /// exists with a matching header, its records are loaded (resume);
    /// on a fingerprint mismatch or corrupt header the file is started
    /// over.  A torn tail — the final line cut short by the very
    /// interruption that makes resume necessary (SIGKILL mid-append) —
    /// is detected (missing trailing newline or an unparseable line),
    /// dropped, and the file is rewritten from the surviving records
    /// before appending resumes, so the partial line can never fuse
    /// with the next record.
    ResultStore(const std::string& path, const std::string& fingerprint);

    [[nodiscard]] const std::string& fingerprint() const noexcept {
        return fingerprint_;
    }

    /// Records recovered from a previous run.
    [[nodiscard]] std::size_t loaded() const noexcept { return loaded_; }

    /// Torn or malformed lines dropped (and purged from the file) while
    /// loading — 0 for a cleanly written store.
    [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }

    [[nodiscard]] const ItemRecord* find(const std::string& key) const;

    /// Append one completed item and flush it to disk.  Thread-safe.
    void append(const ItemRecord& record);

private:
    void start_fresh(const std::string& path);

    std::string fingerprint_;
    std::map<std::string, ItemRecord> records_;
    std::size_t loaded_ = 0;
    std::size_t dropped_ = 0;
    std::mutex mutex_;
    std::ofstream out_;
};

}  // namespace stc::campaign
